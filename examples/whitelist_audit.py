#!/usr/bin/env python3
"""Audit the Acceptable Ads whitelist the way Sections 4, 7 and 8 do.

Reconstructs the 989-revision whitelist history, then runs the paper's
list-side analyses: yearly activity (Table 1), the growth curve
(Figure 3), scope classification (Figure 4 / Table 2 inputs),
undocumented A-filter mining (Section 7), and the hygiene audit
(Section 8) — finishing with the transparency report.

Run:  python examples/whitelist_audit.py        (full 512-bit keys)
      python examples/whitelist_audit.py --fast (small demo keys)

Observability (see docs/OBSERVABILITY.md):

      python examples/whitelist_audit.py --fast --metrics-out audit.jsonl
      python examples/whitelist_audit.py --fast --trace audit-trace.jsonl
"""

import sys

from repro.filters import audit, classify_whitelist
from repro.history import (
    generate_history,
    growth_series,
    mine_a_filters,
    update_cadence,
    yearly_activity,
)
from repro.obs import JsonLinesExporter, observe, summary_table
from repro.reporting import render_table, sparkline


def _flag_value(name: str) -> str | None:
    if name not in sys.argv:
        return None
    index = sys.argv.index(name)
    if index + 1 >= len(sys.argv):
        raise SystemExit(f"{name} requires a PATH argument")
    return sys.argv[index + 1]


def _audit(key_bits: int) -> None:
    print(f"Reconstructing whitelist history (key_bits={key_bits})...")
    history = generate_history(seed=2015, key_bits=key_bits)
    repo = history.repository

    # --- Table 1 ---------------------------------------------------------
    rows = yearly_activity(repo)
    print("\n" + render_table(
        ("year", "revisions", "filters+", "filters-", "domains+",
         "domains-"),
        [(r.year, r.revisions, r.filters_added, r.filters_removed,
          r.domains_added, r.domains_removed) for r in rows],
        title="Table 1 — yearly whitelist activity"))

    cadence = update_cadence(repo)
    print(f"\nOne update every {cadence.days_per_update:.2f} days, "
          f"{cadence.changes_per_update:.1f} filter changes per update.")

    # --- Figure 3 ----------------------------------------------------------
    series = growth_series(repo)
    counts = [p.filters for p in series]
    print(f"\nFigure 3 — growth to {counts[-1]:,} filters:")
    print("  " + sparkline(counts, width=70))
    jump = max(range(1, len(counts)),
               key=lambda i: counts[i] - counts[i - 1])
    print(f"  largest jump: Rev {jump} "
          f"(+{counts[jump] - counts[jump - 1]} filters, "
          f"{series[jump].when.isoformat()}) — Google's introduction")

    # --- Scope (Figure 4) ---------------------------------------------------
    whitelist = history.tip_filter_list()
    scope = classify_whitelist(whitelist)
    print(f"\nScope at Rev {len(repo) - 1}:")
    print(f"  restricted filters:    {scope.restricted:,} "
          f"({scope.restricted_fraction:.1%})")
    print(f"  unrestricted filters:  {scope.unrestricted}")
    print(f"  sitekey filters:       {scope.sitekey_filters} "
          f"({len(scope.sitekeys)} distinct keys)")
    print(f"  explicit FQ domains:   {len(scope.fq_domains):,}")
    print(f"  effective 2LDs:        "
          f"{len(scope.effective_second_level_domains):,}")
    print(f"  about.com subdomains:  "
          f"{scope.subdomain_count('about.com'):,}")

    # --- Section 7 -----------------------------------------------------------
    a_report = mine_a_filters(repo)
    print(f"\nUndocumented A-filter groups: {a_report.total_added} added, "
          f"{len(a_report.removed)} removed, "
          f"{len(a_report.active)} active at tip")
    for group in a_report.readded:
        print(f"  A{group.number} was re-added as A{group.readded_as}")
    sample = a_report.groups[6]
    print(f"  example — A6 ({sample.commit_message!r}):")
    for text in sample.filters:
        print(f"    {text}")

    # --- Section 8 -------------------------------------------------------------
    hygiene = audit(whitelist)
    print(f"\nHygiene: {hygiene.duplicate_filter_count} duplicate "
          f"filters, {hygiene.malformed_count} malformed "
          f"({hygiene.truncated_count} truncated at 4,095 chars)")


def main() -> None:
    key_bits = 128 if "--fast" in sys.argv else 512
    metrics_out = _flag_value("--metrics-out")
    trace_out = _flag_value("--trace")
    if not metrics_out and not trace_out:
        _audit(key_bits)
        return
    with observe() as (registry, tracer):
        with tracer.span("whitelist_audit.run", key_bits=key_bits):
            _audit(key_bits)
        if metrics_out:
            JsonLinesExporter(metrics_out).export(registry=registry)
        if trace_out:
            JsonLinesExporter(trace_out).export(tracer=tracer)
        print("\n" + summary_table(registry, tracer))


if __name__ == "__main__":
    main()
