#!/usr/bin/env python3
"""A publisher's pre-application compliance check (Section 3.1).

Joining the Acceptable Ads program means passing Eyeo's *application*
step: the site's advertising must satisfy the criteria before an
exception is negotiated.  This script plays the publisher's side:

1. build the site's page and see what Adblock Plus currently blocks
   (the revenue at stake);
2. check each ad placement against the Acceptable Ads criteria using
   the perception model's population (would users call it
   attention-grabbing / indistinguishable / obscuring?);
3. propose the restricted exception filters an application would ask
   Eyeo to add, and verify they actually un-block the site.

Run:  python examples/publisher_compliance.py
"""

from repro.filters import AdblockEngine, parse_filter_list
from repro.measurement import build_easylist
from repro.perception import STATEMENTS, ad_by_label, run_perception_survey
from repro.web import InstrumentedBrowser, SiteProfile
from repro.web.devtools import render_blockable_items


PUBLISHER = SiteProfile(
    domain="our-news-site.com", rank=7_214, category="news",
    networks=["doubleclick-pagead", "googlesyndication",
              "generic-banner"],
    first_party_ads=(
        ("div", "class", "banner-ad", "house-banner"),
    ),
)

#: The exception filters the publisher would request (Section 4.2.1
#: shapes: one request exception per network path, one element
#: exception for the house banner).
PROPOSED_FILTERS = """
@@||g.doubleclick.net/pagead/$subdocument,domain=our-news-site.com
@@||pagead2.googlesyndication.com^$script,domain=our-news-site.com
@@||cdn.bannerfarm.net^$image,domain=our-news-site.com
our-news-site.com#@#.banner-ad
"""


def engine(with_exceptions: bool) -> AdblockEngine:
    instance = AdblockEngine()
    instance.subscribe(build_easylist())
    if with_exceptions:
        instance.subscribe(parse_filter_list(PROPOSED_FILTERS,
                                             name="exceptionrules"))
    return instance


def main() -> None:
    # --- 1. what blocking costs us today ------------------------------
    before = InstrumentedBrowser(engine(False)).visit(PUBLISHER)
    print("Current state (EasyList only):")
    print(f"  {before.blocked_count} ad requests blocked, "
          f"{len(before.hidden)} elements hidden")
    print(render_blockable_items(before))

    # --- 2. would users find our placements acceptable? -----------------
    # Benchmark our placements against the survey's measured classes:
    # our banner resembles "Walmart #2" (top banner), our DFP slots
    # resemble "Imgur #1" (sidebar display).
    result = run_perception_survey(respondents=120, seed=42)
    print("\nAcceptability check against the user-perception model:")
    for proxy in ("Walmart #2", "Imgur #1"):
        ad = ad_by_label(proxy)
        verdicts = []
        for statement in STATEMENTS:
            dist = result.distribution(ad.label, statement.key)
            verdicts.append(f"{statement.key}: "
                            f"{dist.agree_fraction:.0%} agree")
        print(f"  placement like {proxy} ({ad.placement}): "
              + "; ".join(verdicts))
    grid = result.distribution("ViralNova #1", "distinguished")
    print(f"  (avoid content-grid ads: {grid.disagree_fraction:.0%} of "
          "users cannot distinguish them — they fail criterion 3)")

    # --- 3. verify the proposed exceptions un-block the site ------------
    after = InstrumentedBrowser(engine(True)).visit(PUBLISHER)
    print("\nWith the proposed exception filters:")
    print(f"  {after.blocked_count} ad requests blocked, "
          f"{len(after.hidden)} elements hidden")
    assert after.blocked_count == 0 and not after.hidden, \
        "proposed filters do not fully cover the ad stack"
    print("  application-ready: every placement is allowed.")


if __name__ == "__main__":
    main()
