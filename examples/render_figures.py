#!/usr/bin/env python3
"""Render the paper's figures as standalone SVG files.

Regenerates Figure 3 (whitelist growth), Figure 7 (ECDFs of whitelist
matches), a Figure 6 excerpt (per-site matches in both engine
configurations), and Figure 9(a) (Likert distributions per ad) and
writes them under ``figures/``.

Run:  python examples/render_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro.history import generate_history, growth_series
from repro.measurement import (
    SurveyConfig,
    figure6_site_matches,
    figure7_ecdf,
    run_survey,
)
from repro.perception import Likert, SURVEY_ADS, run_perception_survey
from repro.reporting.svg import grouped_bars, line_chart, stacked_bars


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "figures")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("Reconstructing history...")
    history = generate_history(seed=2015, key_bits=128)

    # --- Figure 3 ------------------------------------------------------
    points = growth_series(history.repository)
    svg = line_chart(
        {"whitelist filters": ([p.rev for p in points],
                               [p.filters for p in points])},
        title="Figure 3 — growth of the Acceptable Ads whitelist",
        x_label="revision", y_label="filters")
    (out_dir / "fig3_growth.svg").write_text(svg)

    # --- Figures 6 and 7 (scaled survey) --------------------------------
    print("Running a scaled survey...")
    survey = run_survey(history, SurveyConfig(top_n=600, stratum_size=50))

    fig7 = figure7_ecdf(survey.top5k)
    svg = line_chart(
        {
            "total matches": (list(fig7.total_matches.values),
                              list(fig7.total_matches.fractions)),
            "distinct filters": (list(fig7.distinct_filters.values),
                                 list(fig7.distinct_filters.fractions)),
        },
        title="Figure 7 — ECDF of whitelist matches per domain",
        x_label="matches", y_label="cumulative fraction")
    (out_dir / "fig7_ecdf.svg").write_text(svg)

    bars = figure6_site_matches(survey, top=25)
    svg = grouped_bars(
        [f"{b.domain} ({b.rank})" for b in bars],
        {
            "whitelist matches": [b.whitelist_matches for b in bars],
            "easylist (WL on)": [b.easylist_matches_with for b in bars],
            "easylist (WL off)": [b.easylist_matches_without
                                  for b in bars],
        },
        title="Figure 6 — matches with/without the whitelist (top 25)",
        bold=[b.explicitly_whitelisted for b in bars])
    (out_dir / "fig6_matches.svg").write_text(svg)

    # --- Figure 9(a): S1 distributions ------------------------------------
    result = run_perception_survey(seed=2015)
    labels = [ad.label for ad in SURVEY_ADS]
    segments = {
        level.label: [
            result.distribution(label, "attention").fraction(level)
            for label in labels
        ]
        for level in (Likert.STRONGLY_DISAGREE, Likert.DISAGREE,
                      Likert.NEUTRAL, Likert.AGREE,
                      Likert.STRONGLY_AGREE)
    }
    svg = stacked_bars(
        labels, segments,
        title="Figure 9(a) — 'eye catching / grabs my attention'")
    (out_dir / "fig9a_attention.svg").write_text(svg)

    for name in ("fig3_growth", "fig7_ecdf", "fig6_matches",
                 "fig9a_attention"):
        print(f"wrote {out_dir / name}.svg")


if __name__ == "__main__":
    main()
