#!/usr/bin/env python3
"""Quickstart: the filter engine on the paper's Reddit example.

Section 2 of the paper walks through how Adblock Plus handles
reddit.com: EasyList would block the Adzerk ad frame and hide the
sponsored link, but the Acceptable Ads whitelist overrides both.  This
script rebuilds that scenario from individual filters.

Run:  python examples/quickstart.py
"""

from repro.filters import AdblockEngine, ContentType, parse_filter_list
from repro.web import Document, parse_url


def main() -> None:
    # EasyList-style blocking filters (Section 2.1).
    easylist = parse_filter_list(
        """
        ||adzerk.net^$third-party
        reddit.com###siteTable_organic
        """,
        name="easylist",
    )

    # The whitelist's restricted exceptions for reddit.com (Section 4.2.1).
    whitelist = parse_filter_list(
        """
        @@||adzerk.net/reddit/$subdocument,document,domain=reddit.com
        reddit.com#@##siteTable_organic
        """,
        name="exceptionrules",
    )

    engine = AdblockEngine(record=True)
    engine.subscribe(easylist)
    engine.subscribe(whitelist)

    # --- Web request matching -----------------------------------------
    ad_url = ("http://static.adzerk.net/reddit/ads.html"
              "?sr=-reddit.com,loggedout")
    request_host = parse_url(ad_url).host

    decision = engine.check_request(
        ad_url, ContentType.SUBDOCUMENT,
        page_host="www.reddit.com", request_host=request_host)
    print(f"Adzerk ad frame on reddit.com   -> {decision.verdict.value}")
    print(f"  blocking filters matched:  "
          f"{[f.text for f in decision.blocking]}")
    print(f"  exception filters matched: "
          f"{[f.text for f in decision.exceptions]}")

    decision_elsewhere = engine.check_request(
        ad_url, ContentType.SUBDOCUMENT,
        page_host="www.example.com", request_host=request_host)
    print(f"Same ad frame on example.com    -> "
          f"{decision_elsewhere.verdict.value}")

    # --- Element hiding -------------------------------------------------
    page = Document(url="http://www.reddit.com/")
    sponsored = page.body.new_child("div", id="siteTable_organic")
    sponsored.ad_label = "reddit-sponsored-link"

    hidden = engine.hidden_elements(page.all_elements(),
                                    page_host="www.reddit.com")
    verb = "hidden" if sponsored in hidden else "shown"
    print(f"Sponsored link on reddit.com    -> {verb} "
          "(the element exception wins)")

    other_page = Document(url="http://www.reddit.com.evil-mirror.com/")
    other_page.body.new_child("div", id="siteTable_organic")
    hidden = engine.hidden_elements(other_page.all_elements(),
                                    page_host="evil-mirror.com")
    print(f"Same element on another domain  -> "
          f"{'hidden' if hidden else 'shown'}")

    # --- What the instrumentation saw ------------------------------------
    print("\nRecorded filter activations:")
    for activation in engine.activations:
        flavour = "exception" if activation.is_exception else "blocking"
        print(f"  [{activation.list_name:>14}] {flavour:<9} "
              f"{activation.filter_text}")


if __name__ == "__main__":
    main()
