#!/usr/bin/env python3
"""Replicate the Section 6 user-perception survey.

Runs the 305-respondent Mechanical Turk simulation against the 15
whitelisted advertisements on 8 popular sites, then prints the
demographics, each statement's most polarising ads, and the
Figure 9(d) per-class summary — including the paper's core finding:
broad dissension, except on content ads being indistinguishable.

Run:  python examples/perception_study.py [respondents]
"""

import sys

from repro.perception import (
    AdClass,
    Likert,
    STATEMENTS,
    SURVEY_ADS,
    run_perception_survey,
)
from repro.reporting import render_table


def bar(fraction: float, width: int = 24) -> str:
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    respondents = int(sys.argv[1]) if len(sys.argv) > 1 else 305
    result = run_perception_survey(respondents=respondents, seed=2015)

    demo = result.demographics
    print(f"{demo.total} respondents; "
          f"{demo.adblock_fraction:.0%} had used an ad blocker")
    shares = ", ".join(f"{name} {frac:.0%}" for name, frac in
                       sorted(demo.browser_fractions.items(),
                              key=lambda kv: -kv[1]))
    print(f"browsers: {shares}")

    for statement in STATEMENTS:
        print(f"\nS: {statement.text}")
        scored = sorted(
            ((ad, result.distribution(ad.label, statement.key))
             for ad in SURVEY_ADS),
            key=lambda pair: -pair[1].agree_fraction)
        for ad, dist in scored[:3]:
            print(f"  most agree   {ad.label:<14} "
                  f"{bar(dist.agree_fraction)} "
                  f"{dist.agree_fraction:.0%}")
        ad, dist = scored[-1]
        print(f"  least agree  {ad.label:<14} "
              f"{bar(dist.agree_fraction)} {dist.agree_fraction:.0%}")

    # Figure 9(d)
    table = result.figure9d()
    rows = []
    for ad_class in AdClass:
        row = [ad_class.value]
        for statement in STATEMENTS:
            mean, var = table[ad_class][statement.key]
            row.append(f"{mean:+.3f} (var {var:.2f})")
        rows.append(tuple(row))
    print("\n" + render_table(
        ("class", "attention", "distinguished", "obscuring"),
        rows, title="Figure 9(d) — mean (variance) per class"))

    grid = result.distribution("ViralNova #1", "distinguished")
    print(f"\nGrid/content ads: "
          f"{grid.disagree_fraction:.0%} of respondents say they are "
          f"NOT distinguishable from content "
          f"(strongly: {grid.fraction(Likert.STRONGLY_DISAGREE):.0%}) — "
          "the one point of broad agreement.")


if __name__ == "__main__":
    main()
