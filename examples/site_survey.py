#!/usr/bin/env python3
"""Run a scaled-down version of the Section 5 site survey.

Crawls a slice of the synthetic Alexa population with the instrumented
browser in both engine configurations (EasyList+whitelist and
EasyList-only) and prints the Section 5 statistics: the headline
activation rates, the most common whitelist filters (Table 4), and the
top sites by matches (Figure 6's data).

Run:  python examples/site_survey.py [top_n] [stratum_size]
      python examples/site_survey.py 1000 200
"""

import sys

from repro.history import generate_history
from repro.measurement import (
    SurveyConfig,
    figure6_site_matches,
    figure7_ecdf,
    run_survey,
    section51_headline,
    table4_top_filters,
)
from repro.reporting import render_table


def main() -> None:
    top_n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    stratum = int(sys.argv[2]) if len(sys.argv) > 2 else 150

    print("Reconstructing whitelist history...")
    history = generate_history(seed=2015, key_bits=128)

    print(f"Crawling top-{top_n} plus 3 x {stratum}-domain strata "
          "(two engine configurations)...")
    survey = run_survey(history, SurveyConfig(top_n=top_n,
                                              stratum_size=stratum))

    head = section51_headline(survey.top5k)
    n = head.surveyed
    print(f"\nOf {n:,} surveyed top-group domains:")
    print(f"  {head.any_activation:,} ({head.any_activation / n:.1%}) "
          "activated at least one filter (paper: 79.1%)")
    print(f"  {head.whitelist_activation:,} "
          f"({head.whitelist_activation / n:.1%}) activated a whitelist "
          "filter (paper: 58.7%)")
    print(f"  mean distinct whitelist filters per activating site: "
          f"{head.mean_distinct_filters:.2f} (paper: 2.6)")
    print(f"  busiest site: {head.max_domain} with "
          f"{head.max_total_matches} matches over "
          f"{head.max_distinct_filters} distinct filters "
          "(paper: toyota.com, 83 over 8)")

    fig7 = figure7_ecdf(survey.top5k)
    print(f"  95th percentile of total whitelist matches: "
          f"{fig7.total_matches.quantile(0.95)} (paper: >= 12)")

    print("\n" + render_table(
        ("rank", "domains", "%", "filter"),
        [(r.rank, r.domains, f"{r.fraction_of_group:.1%}",
          r.filter_text[:56])
         for r in table4_top_filters(survey.top5k, top=10)],
        title="Table 4 (top 10) — most common whitelist filters"))

    bars = figure6_site_matches(survey, top=12)
    print("\n" + render_table(
        ("site", "rank", "whitelist", "easylist (WL on)",
         "easylist (WL off)"),
        [(("* " if b.explicitly_whitelisted else "  ") + b.domain,
          b.rank, b.whitelist_matches, b.easylist_matches_with,
          b.easylist_matches_without) for b in bars],
        title="Figure 6 data (top 12, * = explicitly whitelisted)"))


if __name__ == "__main__":
    main()
