"""Section 7: undocumented A-filter groups.

Mines the full history for the ``!A<n>`` groups added without community
vetting and checks the paper's findings: 61 groups, none disclosed on
the forum, 5 removed, A7 re-added as A28, the named corporate groups
(ask.com, comcast, kayak, twcc), and A59's unrestricted AdSense filter.
"""

from repro.history.afilters import mine_a_filters
from repro.reporting.tables import render_comparison

from benchmarks.conftest import print_block


def test_sec7_a_filters(benchmark, paper_study):
    repo = paper_study.history.repository

    report = benchmark(mine_a_filters, repo)

    readded = {(g.number, g.readded_as) for g in report.readded}
    print_block(render_comparison(
        "Section 7 — undocumented A-filter groups",
        [
            ("A-groups added", 61, report.total_added),
            ("groups removed", 5, len(report.removed)),
            ("groups active at tip", 56, len(report.active)),
            ("publicly disclosed", 0,
             report.total_added - len(report.undisclosed)),
        ]) + f"\nre-added groups: {sorted(readded)} (paper: A7 -> A28)")

    assert report.total_added == 61
    assert len(report.removed) == 5
    assert len(report.active) == 56
    assert len(report.undisclosed) == 61
    assert (7, 28) in readded

    # The named corporate groups of Figure 11.
    assert any("ask.com" in f for f in report.groups[6].filters)
    assert any("comcast" in f for f in report.groups[29].filters)
    assert any("kayak.com.au" in f for f in report.groups[46].filters)
    assert any("twcc.com" in f for f in report.groups[50].filters)

    # A59 includes the unrestricted AdSense-for-search exception.
    assert "@@||google.com/adsense/search/ads.js$script" in \
        report.groups[59].filters

    # The commit-message fingerprint: "Updated whitelists." everywhere,
    # "Added new whitelists." once (Rev 304).
    messages = [g.commit_message for g in report.groups.values()]
    assert messages.count("Added new whitelists.") == 1
    assert messages.count("Updated whitelists.") == 60
