"""Table 4: the 20 most common whitelist filters in the top-5K survey.

Ranks whitelist filters by distinct activating domains and checks the
paper's reported rows: the Google conversion/AdSense/gstatic trio at
the top (1,559 / 1,535 / 1,282 domains), the undocumented AdSense-for-
search filter at rank 9 (78 domains), and the influads element
exception near 30 domains.
"""

from repro.measurement.stats import table4_top_filters
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block

PAPER_ROWS = {
    "@@||stats.g.doubleclick.net^$script,image": (1, 1_559),
    "@@||googleadservices.com^$third-party": (2, 1_535),
    "@@||gstatic.com^$third-party": (3, 1_282),
    "@@||google.com/adsense/search/ads.js$script": (9, 78),
}


def test_table4_top_filters(benchmark, survey):
    rows = benchmark(table4_top_filters, survey.top5k, 20)

    print_block(render_table(
        ("rank", "domains", "% of 5k", "filter"),
        [(r.rank, r.domains, f"{r.fraction_of_group:.1%}",
          r.filter_text[:58]) for r in rows],
        title="Table 4 — most common whitelist filters"))

    assert len(rows) == 20
    by_text = {r.filter_text: r for r in rows}

    # The top-3 ordering is exact; counts within a tolerance band.
    top3 = [r.filter_text for r in rows[:3]]
    assert top3 == [
        "@@||stats.g.doubleclick.net^$script,image",
        "@@||googleadservices.com^$third-party",
        "@@||gstatic.com^$third-party",
    ]
    for text, (paper_rank, paper_domains) in PAPER_ROWS.items():
        row = by_text[text]
        assert abs(row.domains - paper_domains) / paper_domains < 0.20, \
            text
        assert abs(row.rank - paper_rank) <= 2, text

    # All of Table 4's rows are unrestricted filters ("as expected").
    from repro.filters.classify import ScopeClass, classify_filter
    from repro.filters.parser import parse_filter

    for row in rows:
        scope = classify_filter(parse_filter(row.filter_text))
        assert scope is ScopeClass.UNRESTRICTED, row.filter_text

    # The unrestricted element exception activates on ~30 domains.
    influads = table4_top_filters(survey.top5k, top=40)
    influads_row = next(
        (r for r in influads if r.filter_text == "#@##influads_block"),
        None)
    assert influads_row is not None
    assert abs(influads_row.domains - 30) <= 12
