"""Table 2: whitelisted domains per Alexa partition.

Intersects the whitelist's effective second-level domains with the
ranking and reports the count (and percentage) inside each Alexa
partition, matching the paper's 33%-of-top-100 gradient.
"""

from repro.measurement.stats import table2_partitions
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block

PAPER_TABLE2 = {
    None: 1_990,
    1_000_000: 1_286,
    5_000: 316,
    1_000: 167,
    500: 112,
    100: 33,
}


def test_table2_partitions(benchmark, paper_study):
    whitelist = paper_study.whitelist
    ranking = paper_study.history.population.ranking

    rows = benchmark(table2_partitions, whitelist, ranking)

    table = []
    for row in rows:
        label = "All" if row.partition is None else f"Top {row.partition:,}"
        pct = "" if row.fraction is None else f"{row.fraction:.2%}"
        table.append((label, row.count, PAPER_TABLE2[row.partition], pct))
    print_block(render_table(
        ("partition", "measured", "paper", "measured %"),
        table, title="Table 2 — whitelisted e2LDs per Alexa partition"))

    by_partition = {r.partition: r.count for r in rows}
    # Whitelist churn (removed A-groups, never-readded domains) can cost
    # a handful of designated publishers; everything else is exact.
    for partition, paper in PAPER_TABLE2.items():
        measured = by_partition[partition]
        assert abs(measured - paper) <= max(2, round(paper * 0.01)), \
            (partition, measured, paper)

    # The popularity gradient: denser whitelisting among popular sites.
    fractions = [r.fraction for r in rows if r.fraction is not None]
    assert fractions == sorted(fractions)  # largest partition first
