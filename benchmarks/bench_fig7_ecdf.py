"""Figure 7 / Section 5.1: ECDF of whitelist filter matches per domain.

Computes both curves (total matches, distinct filters) over the
top-5,000 survey and checks the prose numbers around them: 3,956 sites
with any activation, 2,934 with whitelist activations, toyota.com's 83
matches over 8 distinct filters, a mean of 2.6 distinct filters, and
the 5%-of-sites-at-12+ tail.
"""

from repro.measurement.stats import figure7_ecdf, section51_headline
from repro.reporting.series import Series
from repro.reporting.tables import render_comparison

from benchmarks.conftest import print_block


def test_fig7_ecdf(benchmark, survey):
    fig = benchmark(figure7_ecdf, survey.top5k)
    head = section51_headline(survey.top5k)

    total_curve = Series(
        "total matches ECDF",
        x=tuple(float(v) for v in fig.total_matches.values),
        y=fig.total_matches.fractions,
    )
    distinct_curve = Series(
        "distinct filters ECDF",
        x=tuple(float(v) for v in fig.distinct_filters.values),
        y=fig.distinct_filters.fractions,
    )
    print_block(
        "Figure 7 — ECDF of whitelist matches per activating domain\n"
        + total_curve.render() + "\n" + distinct_curve.render())

    print_block(render_comparison(
        "Section 5.1 headline numbers",
        [
            ("surveyed domains", 5_000, head.surveyed),
            ("domains with any activation", 3_956, head.any_activation),
            ("domains with whitelist activation", 2_934,
             head.whitelist_activation),
            ("max total matches (toyota.com)", 83,
             head.max_total_matches),
            ("max distinct filters", 8, head.max_distinct_filters),
            ("mean distinct filters", 2.6, head.mean_distinct_filters),
            ("95th-pct total matches", 12, head.p95_total_matches),
        ]))

    assert head.surveyed == 5_000
    assert abs(head.any_activation - 3_956) / 3_956 < 0.05
    assert abs(head.whitelist_activation - 2_934) / 2_934 < 0.05
    assert head.max_domain == "toyota.com"
    assert abs(head.max_total_matches - 83) <= 12
    assert head.max_distinct_filters == 8
    assert abs(head.mean_distinct_filters - 2.6) < 0.35
    assert head.p95_total_matches >= 10

    # ECDF sanity: monotone, totals dominate distinct counts.
    assert list(fig.total_matches.fractions) == \
        sorted(fig.total_matches.fractions)
    assert fig.total_matches.values[-1] >= fig.distinct_filters.values[-1]
    assert fig.activating_domains == head.whitelist_activation
