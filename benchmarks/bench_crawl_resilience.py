"""Micro-benchmark: overhead of the resilient crawl pipeline.

The retry/backoff/breaker machinery wraps *every* survey visit, so on a
clean run (no injected faults) it must be close to free — the whole
point of threading resilience through the crawler is that scaling PRs
can rely on it unconditionally.  This benchmark crawls the same targets
through a bare ``InstrumentedBrowser.visit`` loop (the pre-resilience
crawler) and through ``Crawler.survey``, and asserts the resilient path
costs less than 10% extra wall-clock.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_crawl_resilience.py -s

A tiny smoke invocation is wired into the tier-1 suite
(``tests/integration/test_crawl_resilience.py``), so regressions that
break the harness itself surface on every test run.
"""

from __future__ import annotations

import time

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.web.browser import InstrumentedBrowser
from repro.web.crawler import Crawler, CrawlRecord, CrawlTarget
from repro.web.sites import profile_for_domain

#: A small but non-trivial engine so per-visit work is realistic.
_FILTERS = "\n".join([
    "||adzerk.net^$third-party",
    "||doubleclick.net^",
    "||googlesyndication.com^",
    "@@||taboola.com^$document",
])


def make_engine() -> AdblockEngine:
    engine = AdblockEngine()
    engine.subscribe(parse_filter_list(_FILTERS, name="easylist"))
    return engine


def make_targets(n: int) -> list[CrawlTarget]:
    return [CrawlTarget(domain=f"bench{i}.example-site.com", rank=i + 1,
                        group_index=i % 4)
            for i in range(n)]


def bare_crawl(targets: list[CrawlTarget]) -> list[CrawlRecord]:
    """The pre-resilience survey: a bare visit loop, no policy."""
    browser = InstrumentedBrowser(make_engine())
    records = []
    for target in targets:
        profile = profile_for_domain(target.domain, target.rank,
                                     group_index=target.group_index)
        visit = browser.visit(profile)
        records.append(CrawlRecord(target=target, visit=visit,
                                   profile=profile))
    return records


def resilient_crawl(targets: list[CrawlTarget]):
    """The production path: Crawler.survey with zero injected faults."""
    return Crawler(make_engine()).survey(targets)


def _best_of(fn, targets, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(targets)
        best = min(best, time.perf_counter() - start)
    return best


def compare_overhead(n: int = 400, repeats: int = 3) -> dict:
    """Time both paths over ``n`` targets; return timings and ratio."""
    targets = make_targets(n)
    # Warm both paths once (imports, caches) before timing.
    bare_crawl(targets[:10])
    resilient_crawl(targets[:10])
    bare = _best_of(bare_crawl, targets, repeats)
    resilient = _best_of(resilient_crawl, targets, repeats)
    return {
        "targets": n,
        "bare_s": bare,
        "resilient_s": resilient,
        "ratio": resilient / bare if bare else float("inf"),
    }


def test_resilient_pipeline_overhead_under_10_percent():
    result = compare_overhead(n=400, repeats=5)
    print(f"\nbare: {result['bare_s'] * 1e3:.1f} ms, "
          f"resilient: {result['resilient_s'] * 1e3:.1f} ms, "
          f"overhead: {(result['ratio'] - 1) * 100:+.1f}% "
          f"({result['targets']} targets)")
    assert result["ratio"] < 1.10, (
        f"resilient crawl overhead {result['ratio']:.3f}x exceeds 1.10x")
