"""Extension: deeper whitelist-behaviour characterisation.

Section 5 leaves "more complex analysis techniques to fully
characterize the whitelist's behavior" to future work; this benchmark
runs ours over the paper-scale survey: needless-activation rates (the
gstatic case), tracking-only vs visible-ad filters, and declared-scope
utilisation of restricted filters.
"""

from repro.measurement.behavior import (
    characterize_filters,
    scope_utilisation,
)
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block


def test_ext_filter_behavior(benchmark, survey):
    report = benchmark(characterize_filters, survey.top5k)

    top = sorted(report.filters.values(), key=lambda b: -b.activations)
    print_block(render_table(
        ("filter", "activations", "needless", "visible ads"),
        [(b.filter_text[:48], b.activations,
          f"{b.needless_fraction:.0%}",
          "yes" if not b.tracking_only else "no")
         for b in top[:10]],
        title="Extension — per-filter behaviour (top 10 by activations)")
        + f"\nsurvey-wide needless activation rate: "
          f"{report.needless_activation_rate():.1%}")

    gstatic = report.filters["@@||gstatic.com^$third-party"]
    assert gstatic.needless_fraction == 1.0
    assert gstatic.tracking_only

    dc = report.filters["@@||stats.g.doubleclick.net^$script,image"]
    assert dc.needless_fraction < 0.05

    # Conversion trackers never render ads; content networks do.
    tracking = {b.filter_text for b in report.tracking_only_filters}
    assert "@@||gstatic.com^$third-party" in tracking
    visible = {b.filter_text for b in report.visible_ad_filters}
    assert "@@||pagead2.googlesyndication.com^$third-party" in visible

    # A substantial minority of whitelist activity changes nothing the
    # user would have seen — the transparency argument, quantified.
    assert 0.05 < report.needless_activation_rate() < 0.5


def test_ext_scope_utilisation(benchmark, survey):
    utilisation = benchmark(scope_utilisation, survey)

    under_used = [text for text, value in utilisation.items()
                  if value < 0.5]
    print_block(
        f"Extension — declared-scope utilisation: "
        f"{len(utilisation)} restricted filters observed, "
        f"{len(under_used)} use under half their declared domains")

    assert utilisation
    assert all(0.0 <= v <= 1.0 for v in utilisation.values())
    # Single-domain publisher filters are fully utilised by definition
    # of having activated.
    fully = sum(1 for v in utilisation.values() if v == 1.0)
    assert fully >= len(utilisation) * 0.5
