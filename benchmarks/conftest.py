"""Benchmark fixtures: one paper-scale study shared by every benchmark.

The heavy artifacts (989-revision history, 8,000-domain crawl in two
engine configurations, zone scan, perception survey) are built once per
benchmark session; each benchmark then times its analysis stage and
prints the paper-vs-measured comparison for its table or figure.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the printed
comparisons.

Set ``BENCH_QUICK=1`` for the CI smoke mode: the shared study shrinks
to a fraction of paper scale, so every benchmark still runs end to end
(and still emits its JSON artifacts) in a couple of minutes, at the
price of paper-comparable numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.core.study import AcceptableAdsStudy, StudyConfig
from repro.measurement.survey import SurveyConfig

#: CI smoke mode: scaled-down artifacts, same code paths.
BENCH_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Zone scale used by benchmarks (results are scaled back up).
BENCH_ZONE_DIVISOR = 20_000 if BENCH_QUICK else 2_000


@pytest.fixture(scope="session")
def paper_study() -> AcceptableAdsStudy:
    """The full paper-scale study (minutes to build, built once)."""
    config = StudyConfig(
        seed=2015,
        key_bits=128 if BENCH_QUICK else 512,
        survey=(SurveyConfig(top_n=500, stratum_size=100) if BENCH_QUICK
                else SurveyConfig(top_n=5_000, stratum_size=1_000)),
        zone_scale_divisor=BENCH_ZONE_DIVISOR,
        zone_noise_domains=200 if BENCH_QUICK else 2_000,
        perception_respondents=305,
    )
    return AcceptableAdsStudy(config)


@pytest.fixture(scope="session")
def survey(paper_study):
    return paper_study.site_survey


def print_block(text: str) -> None:
    """Print a benchmark's comparison block, set off from pytest noise."""
    print("\n" + text + "\n")
