"""Figure 4 / Section 4.2: whitelist scope classes at Rev 988.

Classifies every exception filter of the tip whitelist into the
restricted / unrestricted / sitekey hierarchy and compares the class
sizes, sitekey count, and domain totals with the paper.
"""

from repro.filters.classify import classify_whitelist
from repro.reporting.tables import render_comparison

from benchmarks.conftest import print_block


def test_fig4_scope_classes(benchmark, paper_study):
    whitelist = paper_study.whitelist

    report = benchmark(classify_whitelist, whitelist)

    print_block(render_comparison(
        "Figure 4 / Section 4.2 — whitelist scope",
        [
            ("unrestricted filters", 156, report.unrestricted),
            ("sitekey filters", 25, report.sitekey_filters),
            ("distinct sitekeys", 4, len(report.sitekeys)),
            ("unrestricted element exceptions", 1,
             report.unrestricted_element_filters),
            ("explicit FQ domains", 3_545, len(report.fq_domains)),
            ("effective 2LDs", 1_990,
             len(report.effective_second_level_domains)),
            ("about.com subdomains", 1_044,
             report.subdomain_count("about.com")),
        ]))

    assert report.unrestricted == 156
    assert report.sitekey_filters == 25
    assert len(report.sitekeys) == 4
    assert report.unrestricted_element_filters == 1
    # Table 1 arithmetic vs the prose count disagree in the paper
    # itself; we must land between those bounds.
    assert 3_132 <= len(report.fq_domains) <= 3_545
    assert 1_960 <= len(report.effective_second_level_domains) <= 1_990
    assert report.subdomain_count("about.com") >= 1_044
    # Restricted filters dominate the whitelist.
    assert report.restricted_fraction >= 0.89
