"""Section 8: whitelist hygiene audit.

Audits the Rev-988 whitelist for the paper's defect classes: 35
duplicate filters and 8 malformed filters truncated at exactly 4,095
characters (the Rev-326 bug), and assembles the transparency report.
"""

from repro.core.transparency import collect_findings
from repro.filters.hygiene import TRUNCATION_LENGTH, audit
from repro.reporting.tables import render_comparison

from benchmarks.conftest import print_block


def test_sec8_hygiene_audit(benchmark, paper_study):
    whitelist = paper_study.whitelist

    report = benchmark(audit, whitelist)

    print_block(render_comparison(
        "Section 8 — whitelist hygiene",
        [
            ("duplicate filters", 35, report.duplicate_filter_count),
            ("malformed filters", 8, report.malformed_count),
            ("truncated filters", 8, report.truncated_count),
        ]))

    assert report.duplicate_filter_count == 35
    assert report.malformed_count == 8
    assert report.truncated_count == 8
    assert all(len(text) == TRUNCATION_LENGTH
               for text in report.truncated)
    # Every truncated filter is one of the malformed ones.
    malformed_texts = {f.text for f in report.malformed}
    assert set(report.truncated) <= malformed_texts


def test_sec8_transparency_findings(benchmark, paper_study):
    findings = benchmark.pedantic(collect_findings, args=(paper_study,),
                                  rounds=1, iterations=1)

    print_block(paper_study.transparency_report())

    assert findings.undocumented_groups == 61
    assert findings.unrestricted_filters == 156
    assert findings.sitekey_filters == 25
    assert findings.opaque_scope_filters == 181
    assert findings.duplicate_filters == 35
    assert findings.sitekey_domains_lower_bound > 2_400_000
    assert len(findings.large_whitelisted_publishers) >= 160
