"""Figure 6: filter matches with and without the whitelist enabled.

Plots (as data) the top-50 sites by matches in the default
configuration against the EasyList-only run, reproducing the paper's
observations: bold (explicitly whitelisted) and unbold sites mix,
12-ish unbold sites still trigger whitelist filters, and sina.com.cn
is elided.
"""

from repro.measurement.stats import figure6_site_matches
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block


def test_fig6_top50_sites(benchmark, survey):
    bars = benchmark(figure6_site_matches, survey, top=50)

    rows = [
        (("* " if bar.explicitly_whitelisted else "  ") + bar.domain,
         bar.rank, bar.whitelist_matches, bar.easylist_matches_with,
         bar.easylist_matches_without)
        for bar in bars[:20]
    ]
    print_block(render_table(
        ("site (* = whitelisted)", "rank", "WL matches",
         "EL matches (WL on)", "EL matches (WL off)"),
        rows, title="Figure 6 — top sites by filter matches (first 20)"))

    assert len(bars) == 50
    assert all(bar.domain != "sina.com.cn" for bar in bars)
    # Figure 6 orders sites by Alexa rank.
    assert [b.rank for b in bars] == sorted(b.rank for b in bars)
    # Every plotted site matched at least one filter somewhere.
    assert all(b.whitelist_matches + b.easylist_matches_with
               + b.easylist_matches_without > 0 for b in bars)

    # Bold (explicitly whitelisted) sites the paper shows: google,
    # reddit, ask, about et al. fall in the plotted rank range.
    bold = {b.domain for b in bars if b.explicitly_whitelisted}
    for expected in ("google.com", "reddit.com", "ask.com", "about.com",
                     "walmart.com", "imgur.com"):
        assert expected in bold, expected

    # Paper: domains not explicitly whitelisted nevertheless activate
    # whitelist filters (youtube.com et al.).
    implicit = [b for b in bars
                if not b.explicitly_whitelisted
                and b.whitelist_matches > 0]
    assert len(implicit) >= 8
    assert "youtube.com" in {b.domain for b in implicit}

    # Disabling the whitelist can only increase EasyList blocking.
    regressions = [
        b for b in bars
        if b.easylist_matches_without < b.easylist_matches_with
    ]
    # Browser-state-dependent sites (ask.com's cookies, imgur's adblock
    # detection) may differ slightly; the bulk must be monotone.
    assert len(regressions) <= 3

    # ask.com's state-dependent behaviour: extra ads for cookie-less
    # first visits make it one of the heavier whitelisted sites shown.
    ask = next(b for b in bars if b.domain == "ask.com")
    assert ask.whitelist_matches >= 1
