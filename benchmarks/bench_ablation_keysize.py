"""Ablation: factoring cost versus sitekey strength.

The paper's security argument hinges on 512-bit keys being weak.  This
benchmark measures factoring time across key sizes within laptop reach
and verifies the exponential wall, supporting the paper's implicit
recommendation (and Section 8's spirit): larger sitekeys would have
neutralised the Figure 5 attack.
"""

import time

import pytest

from repro.reporting.tables import render_table
from repro.sitekey.factoring import FactoringError, factor_sitekey
from repro.sitekey.rsa import generate_keypair

from benchmarks.conftest import print_block

SIZES = (32, 40, 48, 56, 64, 72)


@pytest.mark.parametrize("bits", SIZES)
def test_factoring_scales_with_key_size(benchmark, bits):
    key = generate_keypair(bits, seed=bits)
    factored = benchmark.pedantic(factor_sitekey, args=(key.public,),
                                  rounds=1, iterations=1)
    assert {factored.p, factored.q} == {key.p, key.q}


def test_factoring_wall_summary():
    rows = []
    timings = {}
    for bits in SIZES:
        key = generate_keypair(bits, seed=bits)
        start = time.perf_counter()
        factor_sitekey(key.public, time_budget=120.0)
        elapsed = time.perf_counter() - start
        timings[bits] = elapsed
        rows.append((bits, f"{elapsed * 1000:.2f} ms"))
    print_block(render_table(
        ("modulus bits", "factoring time"), rows,
        title="Ablation — factoring cost vs sitekey strength "
              "(paper: 512-bit ≈ 1 week on 8 nodes)"))

    # The qualitative wall: the largest size costs meaningfully more
    # than the smallest (rho is ~exponential in bit length).
    assert timings[SIZES[-1]] > timings[SIZES[0]]


def test_strong_key_resists_within_budget():
    strong = generate_keypair(192, seed=1)
    with pytest.raises(FactoringError):
        factor_sitekey(strong.public, time_budget=2.0)
