"""Benchmark: the supervised work-stealing scheduler.

Three questions, answered in one JSON artifact
(``BENCH_steal_scheduler.json`` at the repo root):

1. **How well does stealing parallelise?**  The same survey runs under
   ``--scheduler steal`` at 1/2/4/8 workers; real wall-clock is
   recorded per count, and the assertion rides on the *simulated
   makespan* speedup from
   :func:`repro.parallel.scheduler.simulate_steal_makespan` — a pure
   event model of leases on N free cores, which is what wall-clock
   converges to on an unloaded machine.  Demand-driven leases beat the
   round-robin pool's static deal (whose speedup is bounded by its
   slowest pre-dealt shard), so the 8-worker target here is 7x where
   the round-robin baseline measures ~6.4x.

2. **What does losing a worker cost?**  The makespan model kills 1 of
   8 workers at the no-kill midpoint (lease requeued, no replacement —
   the pessimistic case); the recovered makespan must stay within 1.3x
   of the undisturbed one.

3. **Does a kill schedule change results?**  A real steal run under an
   injected kill schedule is diffed byte-for-byte against the
   round-robin reference — the fault-tolerance contract is that it
   never does.

A lease-size sweep backs the trade-off table in
``docs/PERFORMANCE.md``.  Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_steal_scheduler.py -s

Set ``BENCH_QUICK=1`` (the CI smoke job does) for a scaled-down run
that still emits the JSON and keeps every assertion — the makespan
model is deterministic, so shared-runner weather cannot break it.
"""

from __future__ import annotations

import json
import os
import time

from repro.history.generator import generate_history
from repro.measurement.survey import SurveyConfig, run_survey
from repro.parallel.caches import reset_process_caches
from repro.parallel.pool import shard_round_robin
from repro.parallel.scheduler import simulate_steal_makespan
from repro.parallel.supervisor import WorkerCrashInjector
from repro.web.crawlstate import snapshot_outcome

from benchmarks.conftest import BENCH_QUICK, print_block

_KEY_BITS = 128

#: Same workload shape as bench_parallel_survey: the Figure 6 crawl
#: under a 30% injected-fault retry/backoff mix.
_CONFIG = dict(
    top_n=60 if BENCH_QUICK else 600,
    stratum_size=15 if BENCH_QUICK else 150,
    fault_rate=0.3,
    fault_seed=7,
)

_LEASE_SIZE = 4
_WORKER_COUNTS = (1, 2, 4, 8)
_LEASE_SWEEP = (1, 2, 4, 8, 16)

_RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_steal_scheduler_quick.json" if BENCH_QUICK
    else "BENCH_steal_scheduler.json")


def _survey(history, *, scheduler="steal", workers=1, injector=None):
    reset_process_caches()
    start = time.perf_counter()
    result = run_survey(history, SurveyConfig(
        **_CONFIG, workers=workers, scheduler=scheduler,
        lease_size=_LEASE_SIZE, steal_crash_injector=injector))
    return result, time.perf_counter() - start


def _unit_latencies(result) -> list[float]:
    """Per-unit simulated latencies, in global unit order."""
    latencies = []
    for outcomes in (result.outcomes, result.outcomes_easylist_only):
        for group in outcomes.values():
            latencies.extend(outcome.latency_ms for outcome in group)
    return latencies


def _canonical(result) -> str:
    return json.dumps(
        {group: [snapshot_outcome(o) for o in outcomes]
         for group, outcomes in result.outcomes.items()},
        sort_keys=True)


def measure_steal(history) -> tuple[dict, dict]:
    """(steal metrics, fault-tolerance metrics) for the JSON artifact."""
    wall: dict[str, float] = {}
    latencies: list[float] = []
    reference = ""
    for workers in _WORKER_COUNTS:
        result, elapsed = _survey(history, workers=workers)
        wall[str(workers)] = round(elapsed, 4)
        if workers == 1:
            latencies = _unit_latencies(result)
            reference = _canonical(result)

    total = sum(latencies)

    def speedup(makespan: float) -> float:
        return total / makespan if makespan else float("inf")

    steal_speedup = {
        str(workers): round(speedup(simulate_steal_makespan(
            latencies, workers, _LEASE_SIZE)), 3)
        for workers in _WORKER_COUNTS}
    roundrobin_speedup = {
        str(workers): round(speedup(max(
            sum(shard) for shard in shard_round_robin(latencies, workers))),
            3)
        for workers in _WORKER_COUNTS}
    sweep = {
        str(lease_size): round(speedup(simulate_steal_makespan(
            latencies, 8, lease_size)), 3)
        for lease_size in _LEASE_SWEEP}

    no_kill = simulate_steal_makespan(latencies, 8, _LEASE_SIZE)
    killed = simulate_steal_makespan(latencies, 8, _LEASE_SIZE,
                                     kill=(0, no_kill / 2.0))

    # The contract run: a real steal survey under a deterministic kill
    # schedule must be byte-identical to the undisturbed reference.
    injector = WorkerCrashInjector(kill_after={0: 2, 1: 5})
    survived, kill_wall = _survey(history, workers=4, injector=injector)
    shards, _ = _survey(history, scheduler="shards", workers=4)
    assert _canonical(survived) == reference, \
        "kill schedule changed steal results"
    assert _canonical(shards) == reference, \
        "steal and round-robin results diverge"

    steal = {
        "units": len(latencies),
        "lease_size": _LEASE_SIZE,
        "wall_clock_s": wall,
        "simulated_latency_total_ms": round(total, 3),
        "simulated_speedup": steal_speedup,
        "roundrobin_speedup": roundrobin_speedup,
        "lease_size_speedup_w8": sweep,
    }
    faults = {
        "kill_recovery_ratio": round(killed / no_kill, 4) if no_kill
        else 1.0,
        "killed_run_wall_clock_s": round(kill_wall, 4),
    }
    return steal, faults


def test_steal_scheduler_benchmark():
    history = generate_history(seed=2015, key_bits=_KEY_BITS)
    steal, faults = measure_steal(history)
    payload = {
        "benchmark": "steal_scheduler",
        "quick": BENCH_QUICK,
        "config": dict(_CONFIG),
        "steal": steal,
        "faults": faults,
    }
    with open(_RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    sim = steal["simulated_speedup"]
    print_block(
        f"steal scheduler ({steal['units']} units, lease={_LEASE_SIZE}): "
        "wall-clock "
        + ", ".join(f"{w}w={steal['wall_clock_s'][w]:.2f}s"
                    for w in sorted(steal['wall_clock_s'], key=int))
        + f"\nsimulated speedup 2w={sim['2']}x 4w={sim['4']}x "
        f"8w={sim['8']}x (round-robin 8w="
        f"{steal['roundrobin_speedup']['8']}x)\n"
        f"kill 1-of-8 at midpoint: {faults['kill_recovery_ratio']}x "
        f"no-kill makespan\n"
        f"results -> {_RESULT_PATH}")

    # The 7x target needs the full workload's unit count: quick mode's
    # 210 units cap the 8-worker makespan on lease granularity and the
    # single slowest unit (full-scale measures 7.59x at lease=4).
    target = 5.0 if BENCH_QUICK else 7.0
    assert sim["8"] >= target, (
        f"simulated 8-worker steal speedup {sim['8']}x below the "
        f"{target}x target")
    assert float(sim["8"]) >= float(steal["roundrobin_speedup"]["8"]), (
        "stealing must not balance worse than the static deal")
    assert faults["kill_recovery_ratio"] <= 1.3, (
        f"kill recovery ratio {faults['kill_recovery_ratio']}x exceeds "
        f"the 1.3x budget")
