"""Table 3: parked .com domains per sitekey parking service.

Runs the two-step zone scan (nameserver attribution, then a visit that
must yield a verifying sitekey signature) over the scaled synthetic
zone and extrapolates back to the paper's per-service counts.
"""

from repro.reporting.tables import render_table
from repro.sitekey.parking import PARKING_SERVICES

from benchmarks.conftest import BENCH_ZONE_DIVISOR, print_block

PAPER_TABLE3 = {
    "Sedo": 1_060_129,
    "ParkingCrew": 368_703,
    "RookMedia": 949,
    "Uniregistry": 1_246_359,
    "Digimedia": 25,
}


def test_table3_parking_scan(benchmark, paper_study):
    # The scan itself is the measured stage (network + crypto): one
    # round, real signatures verified for every confirmed domain.
    results = benchmark.pedantic(
        lambda: paper_study.parking_scan, rounds=1, iterations=1)

    rows = []
    for service in PARKING_SERVICES:
        result = results[service.name]
        scaled = result.scaled_confirmed(BENCH_ZONE_DIVISOR)
        rows.append((
            service.name,
            service.whitelisted.isoformat(),
            result.confirmed,
            scaled,
            PAPER_TABLE3[service.name],
        ))
    total_scaled = sum(r[3] for r in rows)
    print_block(render_table(
        ("service", "whitelisted", "confirmed (scaled zone)",
         "extrapolated", "paper"),
        rows, title=(f"Table 3 — parked domains "
                     f"(zone divisor {BENCH_ZONE_DIVISOR})"))
        + f"\ntotal extrapolated: {total_scaled:,} (paper 2,676,165)")

    for service in PARKING_SERVICES:
        result = results[service.name]
        # Every suspected domain must have presented a valid signature.
        assert result.confirmed == result.suspected, service.name
        expected = max(1, PAPER_TABLE3[service.name]
                       // BENCH_ZONE_DIVISOR)
        # Sedo also hosts the typo-domain corpus (reddit.cm analogue).
        slack = 10 if service.name == "Sedo" else 1
        assert abs(result.confirmed - expected) <= slack, service.name

    assert abs(total_scaled - 2_676_165) / 2_676_165 < 0.05
