"""Figure 8: filter matches per popularity group.

Builds the per-group activation-frequency matrix over all four sample
groups and checks the paper's structural findings: the five most
activated filters are whitelist (Google-related) filters, whitelist
activity skews toward popular/shopping sites, and exactly one
conversion-tracking filter peaks in the 100K–1M stratum.
"""

from repro.measurement.stats import figure8_group_matrix
from repro.measurement.survey import WHITELIST_NAME
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block


def test_fig8_group_matrix(benchmark, survey):
    matrix = benchmark(figure8_group_matrix, survey, 50)

    rows = []
    for text in matrix.filters[:12]:
        rows.append((text[:44],) + tuple(
            f"{matrix.rate(group, text):.1%}" for group in matrix.groups))
    print_block(render_table(
        ("filter", "top-5k", "5k-50k", "50k-100k", "100k-1m"),
        rows, title="Figure 8 — activation frequency per group (top 12)"))

    assert matrix.groups == ["top-5k", "5k-50k", "50k-100k", "100k-1m"]
    assert len(matrix.filters) == 50

    # The five most activated filters are all whitelist filters.
    top5 = matrix.filters[:5]
    whitelist_texts = {
        f.text for f in survey.whitelist.filters} if survey.whitelist \
        else set()
    assert all(text in whitelist_texts for text in top5), top5

    # Most top filters peak in the most popular group...
    peaks = [matrix.peak_group(text) for text in matrix.filters[:20]]
    assert peaks.count("top-5k") >= 14

    # ...but the google-analytics conversion tracker peaks in 100K–1M
    # (the paper's single outlier).
    outlier = "@@||google-analytics.com/conversion/^$image"
    assert outlier in matrix.filters
    assert matrix.peak_group(outlier) == "100k-1m"

    # Shopping-site skew: whitelist filters fire more often on shopping
    # sites than the group average.
    top5k = survey.records["top-5k"]
    shopping = [r for r in top5k if r.profile.category == "shopping"]
    others = [r for r in top5k if r.profile.category != "shopping"]

    def whitelist_rate(records):
        hits = sum(
            1 for r in records
            if any(a.list_name == WHITELIST_NAME
                   for a in r.visit.whitelist_activations))
        return hits / max(1, len(records))

    assert whitelist_rate(shopping) > whitelist_rate(others)
