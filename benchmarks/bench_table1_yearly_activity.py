"""Table 1: yearly activity for the Acceptable Ads whitelist.

Regenerates the year / revisions / filters-added / filters-removed /
domains-added / domains-removed table from the full 989-revision
history and compares every cell against the paper.
"""

from repro.history.analysis import update_cadence, yearly_activity
from repro.history.generator import YEARLY_TARGETS
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block

#: Table 1 as printed in the paper (the printed removed/domain columns
#: are internally inconsistent by a few units; YEARLY_TARGETS holds the
#: canonicalised cells used for exact checks).
PAPER_TABLE1 = {
    2011: (26, 25, 0, 5, 0),
    2012: (47, 225, 30, 59, 5),
    2013: (311, 5152, 1555, 2248, 73),
    2014: (386, 2179, 775, 859, 125),
    2015: (219, 1227, 495, 371, 207),
}


def test_table1_yearly_activity(benchmark, paper_study):
    repo = paper_study.history.repository

    rows = benchmark(yearly_activity, repo)

    table_rows = []
    for row in rows:
        paper = PAPER_TABLE1[row.year]
        table_rows.append((
            row.year,
            f"{row.revisions} ({paper[0]})",
            f"{row.filters_added} ({paper[1]})",
            f"{row.filters_removed} ({paper[2]})",
            f"{row.domains_added} ({paper[3]})",
            f"{row.domains_removed} ({paper[4]})",
        ))
    print_block(render_table(
        ("year", "revisions", "filters+", "filters-", "domains+",
         "domains-"),
        table_rows,
        title="Table 1 — measured (paper)"))

    by_year = {row.year: row for row in rows}
    for year, target in YEARLY_TARGETS.items():
        row = by_year[year]
        assert row.revisions == target.revisions
        assert row.filters_added == target.filters_added
        assert row.filters_removed == target.filters_removed
        assert row.domains_added == target.domains_added
        assert row.domains_removed == target.domains_removed

    cadence = update_cadence(repo)
    print_block(f"update cadence: every {cadence.days_per_update:.2f} "
                f"days (paper 1.5), {cadence.changes_per_update:.1f} "
                f"filters per update (paper 11.4)")
    assert 1.0 <= cadence.days_per_update <= 2.0
    assert 9.0 <= cadence.changes_per_update <= 14.0
