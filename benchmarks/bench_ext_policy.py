"""Extension: personalised acceptability policies.

The paper concludes that "any single policy of whitelisting is unlikely
to serve the needs of a large and diverse user community well."  This
benchmark quantifies that claim over the 305-respondent population and
exercises the flexible-policy machinery it calls for.
"""

from collections import Counter

from repro.core.policy import (
    derive_policy,
    policy_disagreement,
    policy_filter_list,
)
from repro.perception.ads import AdClass
from repro.perception.survey import run_perception_survey
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block


def test_ext_policy_disagreement(benchmark):
    result = run_perception_survey(respondents=305, seed=2015)

    fraction = benchmark.pedantic(policy_disagreement, args=(result,),
                                  rounds=1, iterations=1)

    acceptance = Counter()
    for respondent in result.population:
        policy = derive_policy(result, respondent.respondent_id)
        for ad_class in AdClass:
            if policy.accepts(ad_class):
                acceptance[ad_class] += 1

    n = len(result.population)
    print_block(render_table(
        ("ad class", "respondents accepting", "%"),
        [(c.value, acceptance[c], f"{acceptance[c] / n:.0%}")
         for c in AdClass],
        title="Extension — per-class acceptance across the population")
        + f"\nrespondents whose personal policy disagrees with the "
          f"global whitelist: {fraction:.0%}")

    # The paper's thesis, quantified: a single policy fits few users.
    assert fraction > 0.7

    # Class ordering mirrors Figure 9(d): banners most acceptable,
    # content ads least.
    assert acceptance[AdClass.BANNER] > acceptance[AdClass.SEM]
    assert acceptance[AdClass.SEM] > acceptance[AdClass.CONTENT]

    # Compiled personal lists actually re-block the rejected classes.
    rejecting = next(
        r.respondent_id for r in result.population
        if not derive_policy(result, r.respondent_id).accepts(
            AdClass.CONTENT))
    flist = policy_filter_list(derive_policy(result, rejecting))
    assert any("taboola" in text for text in flist.filter_texts())
