"""Extension: the user experience across whitelist revisions.

Connects Figure 3 (whitelist content over time) with Section 5's
impact measurement by rerunning the top-group survey under one
whitelist snapshot per program year: the fraction of popular sites
showing whitelisted advertising grows from ~0 under 2011's nine
filters to the paper's ~59% under Rev 988.
"""

from repro.measurement.temporal import temporal_survey
from repro.reporting.tables import render_table

from benchmarks.conftest import print_block


def test_ext_temporal_survey(benchmark, paper_study):
    points = benchmark.pedantic(
        temporal_survey, args=(paper_study.history,),
        kwargs={"top_n": 600}, rounds=1, iterations=1)

    print_block(render_table(
        ("snapshot", "rev", "filters", "sites w/ whitelist ads",
         "mean allowed reqs"),
        [(p.when.isoformat(), p.rev, p.whitelist_filters,
          f"{p.whitelist_activation_fraction:.1%}",
          f"{p.mean_allowed_requests:.2f}") for p in points],
        title="Extension — survey under historical whitelists"))

    fractions = [p.whitelist_activation_fraction for p in points]
    filters = [p.whitelist_filters for p in points]

    # Monotone growth in both list size and impact, ending at the
    # paper's headline.
    assert filters == sorted(filters)
    assert filters[-1] == 5_936
    assert fractions[0] < 0.10
    assert fractions[-1] > 0.50
    assert all(b >= a - 0.02 for a, b in zip(fractions, fractions[1:]))

    # The Google jump (mid-2013) is visible as the largest year-over-
    # year impact increase ending 2013.
    deltas = [b - a for a, b in zip(fractions, fractions[1:])]
    assert max(deltas) == deltas[1]  # 2012 -> 2013
