"""Figure 3: growth of the Acceptable Ads whitelist.

Regenerates the filters-over-revisions curve, locates the two jumps the
paper describes (Google at Rev 200, ask.com/about.com later in 2013),
and checks the endpoints (9 filters in 2011 → 5,936 at Rev 988).
"""

from datetime import date

from repro.history.analysis import growth_series
from repro.reporting.series import Series, find_jumps

from benchmarks.conftest import print_block


def test_fig3_growth_curve(benchmark, paper_study):
    repo = paper_study.history.repository

    series = benchmark(growth_series, repo)

    curve = Series(
        label="whitelist filters",
        x=tuple(float(p.rev) for p in series),
        y=tuple(float(p.filters) for p in series),
    )
    jumps = find_jumps([p.filters for p in series], top=2)
    print_block(
        "Figure 3 — whitelist growth (Rev 0 .. Rev 988)\n"
        + curve.render(width=72) + "\n"
        + "\n".join(
            f"jump at Rev {rev}: +{delta} filters "
            f"({series[rev].when.isoformat()})"
            for rev, delta in jumps))

    # Endpoints: "grew from 9 filters in 2011 to over 5,900".
    assert series[0].filters == 9
    assert series[-1].filters == 5_936

    # The largest jump is Google's Rev-200 addition of 1,262 filters,
    # dated mid-2013 (paper: June 21, 2013).
    biggest_rev, biggest_delta = jumps[0]
    assert biggest_rev == 200
    assert biggest_delta >= 1_262
    assert date(2013, 4, 1) <= series[200].when <= date(2013, 8, 31)

    # The second jump (ask.com / about.com) lands later in 2013.
    second_rev, second_delta = jumps[1]
    assert second_rev > 200
    assert series[second_rev].when.year == 2013
    assert second_delta >= 400

    # Growth is cumulative and never dips below zero.
    assert all(p.filters >= 0 for p in series)
