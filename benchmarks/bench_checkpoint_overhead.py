"""Micro-benchmark: overhead of journaled (checkpointed) survey runs.

The run journal records every crawled target (outcome projection plus
mutated crawler state) with a flushed, checksummed append, so a
checkpointed survey must stay close to free — crash safety is only
worth threading through the pipeline if enabling it unconditionally is
cheap.  This benchmark runs the same survey plain and with a
``Checkpoint`` and asserts the journaled path costs less than 10%
extra wall-clock.  It then kills a checkpointed run halfway through
(via the seeded crash injector) and times the resumed completion,
reporting how much of the run a crash no longer costs.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_checkpoint_overhead.py -s

A tiny smoke invocation is wired into the tier-1 suite
(``tests/integration/test_crash_resume.py``), so regressions that
break the harness itself surface on every test run.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.history.generator import generate_history
from repro.measurement.survey import SurveyConfig, run_survey
from repro.state import Checkpoint
from repro.state.crashpoints import CrashInjector, SimulatedCrash, crashing

#: Small sitekeys: key strength is irrelevant to journaling cost.
_KEY_BITS = 128

_CONFIG = SurveyConfig(top_n=200, stratum_size=50, fault_rate=0.2,
                       fault_seed=7)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def compare_overhead(config: SurveyConfig = _CONFIG,
                     repeats: int = 3) -> dict:
    """Time the survey plain and checkpointed; return timings and ratio."""
    history = generate_history(seed=2015, key_bits=_KEY_BITS)

    def plain():
        run_survey(history, config)

    def journaled():
        with tempfile.TemporaryDirectory() as tmp:
            checkpoint = Checkpoint.start(os.path.join(tmp, "run.ckpt"))
            try:
                run_survey(history, config, checkpoint=checkpoint)
            finally:
                checkpoint.close()

    plain()  # warm caches (site profiles, engine construction)
    plain_s = _best_of(plain, repeats)
    journaled_s = _best_of(journaled, repeats)
    return {
        "targets": config.top_n + 3 * config.stratum_size,
        "plain_s": plain_s,
        "journaled_s": journaled_s,
        "ratio": journaled_s / plain_s if plain_s else float("inf"),
    }


def resume_savings(config: SurveyConfig = _CONFIG) -> dict:
    """Crash a checkpointed run at ~50% and time the resumed half.

    Returns the full-run time, the resumed-completion time, and the
    fraction of a full run that the resume saved.
    """
    history = generate_history(seed=2015, key_bits=_KEY_BITS)

    with tempfile.TemporaryDirectory() as tmp:
        # A complete run, counted, to find the halfway append.
        path = os.path.join(tmp, "full.ckpt")
        checkpoint = Checkpoint.start(path)
        start = time.perf_counter()
        try:
            run_survey(history, config, checkpoint=checkpoint)
        finally:
            checkpoint.close()
        full_s = time.perf_counter() - start
        with open(path, "rb") as handle:
            appends = sum(1 for _ in handle) - 1  # minus the header

        # Crash a fresh run at the midpoint, then resume it.
        path = os.path.join(tmp, "crashed.ckpt")
        checkpoint = Checkpoint.start(path)
        try:
            with crashing(CrashInjector(at_step=appends // 2)):
                run_survey(history, config, checkpoint=checkpoint)
            raise AssertionError("crash injector never fired")
        except SimulatedCrash:
            pass
        finally:
            checkpoint.close()

        checkpoint = Checkpoint.resume(path)
        assert checkpoint.resumed
        start = time.perf_counter()
        try:
            run_survey(history, config, checkpoint=checkpoint)
        finally:
            checkpoint.close()
        resume_s = time.perf_counter() - start

    return {
        "appends": appends,
        "full_s": full_s,
        "resume_s": resume_s,
        "saved": 1.0 - resume_s / full_s if full_s else 0.0,
    }


def test_checkpoint_overhead_under_10_percent():
    result = compare_overhead(repeats=3)
    print(f"\nplain: {result['plain_s'] * 1e3:.1f} ms, "
          f"journaled: {result['journaled_s'] * 1e3:.1f} ms, "
          f"overhead: {(result['ratio'] - 1) * 100:+.1f}% "
          f"({result['targets']} targets x 2 configs)")
    assert result["ratio"] < 1.10, (
        f"journaled survey overhead {result['ratio']:.3f}x exceeds 1.10x")


def test_resume_after_midpoint_crash_saves_work():
    result = resume_savings()
    print(f"\nfull run: {result['full_s'] * 1e3:.1f} ms, "
          f"resume after crash at append {result['appends'] // 2}"
          f"/{result['appends']}: {result['resume_s'] * 1e3:.1f} ms "
          f"({result['saved'] * 100:.0f}% of the run saved)")
    # Replaying journal records must beat re-crawling: a crash at ~50%
    # should cost clearly less than a full rerun.
    assert result["resume_s"] < result["full_s"] * 0.8, (
        f"resume took {result['resume_s']:.3f}s vs full "
        f"{result['full_s']:.3f}s — journal replay saved too little")
