"""Benchmark: the shared-nothing parallel survey and the engine hot path.

Two questions, answered in one JSON artifact
(``BENCH_parallel_survey.json`` at the repo root):

1. **How well does the survey parallelise?**  The Section 5 crawl is
   embarrassingly parallel per target, and its cost on real hardware is
   the simulated per-target crawl latency (retries, backoff, breaker
   waits).  We run the same survey at 1/2/4/8 workers, record real
   wall-clock per count, and compute the *simulated makespan* speedup —
   total per-unit latency over the slowest round-robin shard's latency
   — which is what wall-clock converges to on a machine with that many
   free cores.  (CI runners and this container often pin us to one or
   two cores, so real wall-clock is recorded but the makespan carries
   the assertion.)

2. **What did the engine hot-path pass buy serially?**  We time the
   survey with the optimisations live, then again with each one
   neutralised — eager pattern compilation through the uncached
   ``compile_pattern``, per-insertion keyword re-extraction, per-probe
   URL re-tokenisation, and a cleared privilege memo — which is the
   code the pass replaced.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_survey.py -s

Set ``BENCH_QUICK=1`` (the CI smoke job does) for a scaled-down run
that still emits the JSON but relaxes the speedup assertions, which
shared CI runners cannot honour reliably.
"""

from __future__ import annotations

import json
import os
import time

from repro.history.generator import generate_history
from repro.measurement.survey import SurveyConfig, run_survey
from repro.parallel.caches import reset_process_caches
from repro.parallel.pool import shard_round_robin

from benchmarks.conftest import BENCH_QUICK, print_block

_KEY_BITS = 128

#: The Figure 6 workload shape: the top-group crawl dominated by the
#: 30%-fault retry/backoff mix the resilience layer absorbs.
_CONFIG = SurveyConfig(
    top_n=60 if BENCH_QUICK else 600,
    stratum_size=15 if BENCH_QUICK else 150,
    fault_rate=0.3,
    fault_seed=7,
)

_WORKER_COUNTS = (1, 2, 4, 8)

# Quick mode writes its own artifact: its scaled-down workload is a
# different benchmark, and the CI perf gate diffs it against the
# committed quick baseline (BENCH_parallel_survey_quick.json) rather
# than against the full run's numbers.
_RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel_survey_quick.json" if BENCH_QUICK
    else "BENCH_parallel_survey.json")


def _unit_latencies(result) -> list[float]:
    """Per-unit simulated latencies, in global unit order."""
    latencies = []
    for outcomes in (result.outcomes, result.outcomes_easylist_only):
        for group in outcomes.values():
            latencies.extend(outcome.latency_ms for outcome in group)
    return latencies


def _simulated_speedup(latencies: list[float], workers: int) -> float:
    """Serial latency total over the slowest round-robin shard's total."""
    shards = shard_round_robin(latencies, workers)
    makespan = max(sum(shard) for shard in shards)
    return sum(latencies) / makespan if makespan else float("inf")


def _timed_survey(history, workers: int | None):
    reset_process_caches()
    start = time.perf_counter()
    result = run_survey(history, SurveyConfig(
        top_n=_CONFIG.top_n, stratum_size=_CONFIG.stratum_size,
        fault_rate=_CONFIG.fault_rate, fault_seed=_CONFIG.fault_seed,
        workers=workers))
    return result, time.perf_counter() - start


def measure_parallel(history) -> dict:
    """Wall-clock per worker count plus the simulated makespan model."""
    wall: dict[str, float] = {}
    latencies: list[float] = []
    for workers in _WORKER_COUNTS:
        result, elapsed = _timed_survey(history, workers)
        wall[str(workers)] = round(elapsed, 4)
        if workers == 1:
            latencies = _unit_latencies(result)
    return {
        "targets": _CONFIG.top_n + 3 * _CONFIG.stratum_size,
        "units": len(latencies),
        "wall_clock_s": wall,
        "simulated_latency_total_ms": round(sum(latencies), 3),
        "simulated_speedup": {
            str(workers): round(_simulated_speedup(latencies, workers), 3)
            for workers in _WORKER_COUNTS
        },
    }


def _legacy_engine_emulation():
    """Monkeypatch the hot-path optimisations back out; return an undo.

    Restores the code shapes the optimisation passes replaced: every
    pattern compiles its regex eagerly through the uncached
    ``compile_pattern``, keyword candidates are re-extracted per
    ``FilterIndex.add``, every compiled-index probe re-tokenises the
    URL with the regex tokeniser and yields filter-by-filter through a
    generator (the pre-compiled-index shape), and the
    document-privilege memo never retains an entry.
    """
    from repro.filters import engine as engine_mod
    from repro.filters import index as index_mod
    from repro.filters import parser as parser_mod
    from repro.filters import pattern as pattern_mod
    from repro.filters.compiled.index import CompiledFilterIndex

    saved = (parser_mod.compile_pattern, parser_mod.keyword_candidates,
             CompiledFilterIndex.candidates,
             engine_mod.AdblockEngine.document_privileges)

    def eager_uncached_compile(source, match_case=False):
        compiled = pattern_mod.compile_pattern.__wrapped__(source, match_case)
        compiled.regex  # force the eager re.compile the old code paid
        return compiled

    def legacy_candidates(self, url):
        # The pre-compiled probe: regex tokenisation per call, dedup
        # via a per-probe seen-set, one generator resumption per
        # candidate filter.
        seen = set()
        raw = self._raw
        for word in index_mod._URL_KEYWORD_RE.findall(url.lower()):
            if word in seen:
                continue
            seen.add(word)
            bucket = raw.get(word.encode("ascii"))
            if bucket is not None:
                yield from bucket
        yield from self._fallback

    privileged = engine_mod.AdblockEngine.document_privileges

    def uncached_privileges(self, *args, **kwargs):
        self._privilege_cache.clear()
        return privileged(self, *args, **kwargs)

    parser_mod.compile_pattern = eager_uncached_compile
    parser_mod.keyword_candidates = pattern_mod.keyword_candidates.__wrapped__
    CompiledFilterIndex.candidates = legacy_candidates
    engine_mod.AdblockEngine.document_privileges = uncached_privileges

    def undo():
        (parser_mod.compile_pattern, parser_mod.keyword_candidates,
         CompiledFilterIndex.candidates,
         engine_mod.AdblockEngine.document_privileges) = saved

    return undo


def measure_engine(history, repeats: int = 2) -> dict:
    """Serial survey time, optimised vs legacy-emulated engine."""
    def best_of(fn) -> float:
        return min(fn() for _ in range(repeats))

    def optimised() -> float:
        return _timed_survey(history, None)[1]

    _timed_survey(history, None)  # warm site profiles etc. for both modes
    optimised_s = best_of(optimised)
    undo = _legacy_engine_emulation()
    try:
        legacy_s = best_of(optimised)
    finally:
        undo()
    return {
        "optimised_s": round(optimised_s, 4),
        "legacy_s": round(legacy_s, 4),
        "speedup": round(legacy_s / optimised_s, 3) if optimised_s else 0.0,
    }


def test_parallel_survey_benchmark():
    history = generate_history(seed=2015, key_bits=_KEY_BITS)
    parallel = measure_parallel(history)
    engine = measure_engine(history)
    payload = {
        "benchmark": "parallel_survey",
        "quick": BENCH_QUICK,
        "config": {
            "top_n": _CONFIG.top_n,
            "stratum_size": _CONFIG.stratum_size,
            "fault_rate": _CONFIG.fault_rate,
            "fault_seed": _CONFIG.fault_seed,
        },
        "parallel": parallel,
        "engine": engine,
    }
    with open(_RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    sim = parallel["simulated_speedup"]
    print_block(
        f"parallel survey ({parallel['units']} units): wall-clock "
        + ", ".join(f"{w}w={parallel['wall_clock_s'][w]:.2f}s"
                    for w in sorted(parallel['wall_clock_s'], key=int))
        + f"; simulated speedup 2w={sim['2']}x 4w={sim['4']}x "
        f"8w={sim['8']}x\n"
        f"engine hot path: optimised {engine['optimised_s']:.2f}s vs "
        f"legacy {engine['legacy_s']:.2f}s = {engine['speedup']}x\n"
        f"results -> {_RESULT_PATH}")

    assert sim["8"] >= 3.0, (
        f"simulated 8-worker speedup {sim['8']}x below the 3x target")
    if not BENCH_QUICK:
        assert engine["speedup"] >= 1.2, (
            f"engine hot-path speedup {engine['speedup']}x below the "
            f"1.2x target")
