"""Figure 9: user perception survey results.

Runs the 305-respondent survey and reproduces the demographics, the
per-ad headline agreements (Google #2 at 73%, Utopia #2 at 45%, grid
ads ~90% NOT distinguished, sidebar/top-bar/first-result ~1/3
obscuring), and the Figure 9(d) per-class mean/variance table.
"""

from repro.perception.ads import AdClass
from repro.perception.survey import run_perception_survey
from repro.reporting.tables import render_comparison, render_table

from benchmarks.conftest import print_block

PAPER_9D = {
    (AdClass.SEM, "attention"): 0.217,
    (AdClass.SEM, "distinguished"): 0.597,
    (AdClass.SEM, "obscuring"): -0.260,
    (AdClass.BANNER, "attention"): 0.152,
    (AdClass.BANNER, "distinguished"): 0.755,
    (AdClass.BANNER, "obscuring"): -0.613,
    (AdClass.CONTENT, "attention"): -0.247,
    (AdClass.CONTENT, "distinguished"): -0.935,
    (AdClass.CONTENT, "obscuring"): 0.125,
}


def test_fig9_perception_survey(benchmark):
    result = benchmark.pedantic(
        run_perception_survey, kwargs={"respondents": 305, "seed": 2015},
        rounds=1, iterations=1)

    demo = result.demographics
    print_block(render_comparison(
        "Section 6 — respondent demographics",
        [
            ("respondents", 305, demo.total),
            ("ad-blocker users", 0.50, demo.adblock_fraction),
            ("chrome share", 0.61, demo.browser_fractions["chrome"]),
            ("firefox share", 0.28, demo.browser_fractions["firefox"]),
            ("safari share", 0.09, demo.browser_fractions["safari"]),
        ]))

    headline = [
        ("Google #2 attention agree", 0.73,
         result.distribution("Google #2", "attention").agree_fraction),
        ("Utopia #2 attention agree", 0.45,
         result.distribution("Utopia #2", "attention").agree_fraction),
        ("ViralNova #1 NOT distinguished", 0.90,
         result.distribution("ViralNova #1",
                             "distinguished").disagree_fraction),
        ("Reddit #1 obscuring agree", 0.33,
         result.distribution("Reddit #1", "obscuring").agree_fraction),
        ("Google #1 obscuring agree", 0.33,
         result.distribution("Google #1", "obscuring").agree_fraction),
        ("Cracked #1 obscuring agree", 0.33,
         result.distribution("Cracked #1", "obscuring").agree_fraction),
    ]
    print_block(render_comparison("Figure 9(a-c) headline agreements",
                                  headline))

    table9d = result.figure9d()
    rows = []
    for ad_class in AdClass:
        for statement in ("attention", "distinguished", "obscuring"):
            mean, variance = table9d[ad_class][statement]
            rows.append((ad_class.value, statement,
                         f"{mean:+.3f}",
                         f"{PAPER_9D[(ad_class, statement)]:+.3f}",
                         f"{variance:.3f}"))
    print_block(render_table(
        ("class", "statement", "measured mean", "paper mean",
         "measured var"),
        rows, title="Figure 9(d) — per-class mean and variance"))

    assert demo.total == 305
    assert abs(demo.adblock_fraction - 0.5) < 0.01
    assert abs(demo.browser_fractions["chrome"] - 0.61) < 0.02

    for (name, paper, measured) in headline:
        assert abs(measured - paper) < 0.08, name

    for (ad_class, statement), paper_mean in PAPER_9D.items():
        mean, variance = table9d[ad_class][statement]
        assert abs(mean - paper_mean) < 0.15, (ad_class, statement)
        # The dissension finding: high variance throughout.
        assert variance > 0.8, (ad_class, statement)
