"""Micro-benchmark: the observability layer must be close to free.

Three bounds, all on the Figure 6/7 pipeline (``run_survey`` plus the
figure/table statistics):

* **enabled < 10%** — measured directly: the pipeline under a live
  registry + tracer vs the pipeline with observability off;
* **telemetry < 5% on top of enabled** — the PR-10 plane (time-series
  sampler streaming rotated JSONL segments + flight recorder ring)
  measured against the metrics/trace-only enabled run;
* **disabled ≈ 0** — the disabled cost is one attribute check per
  instrumentation site (``OBS.enabled``, ``OBS.timeseries.enabled``,
  ``OBS.flight.enabled``), which is far below timer noise for a
  pipeline of seconds.  We bound it by *projection*: time the guard
  checks in a tight loop, count how often the pipeline evaluates
  guards (every enabled-run counter increment implies at least one
  guard evaluation, so the enabled run's total event count is a
  conservative over-estimate), and divide by the disabled pipeline
  time.

A further assertion checks the other half of the contract: enabled and
disabled runs produce *identical* analysis results (docs/OBSERVABILITY.md).

The deterministic section of the emitted artifact
(``BENCH_obs_overhead_quick.json`` under ``BENCH_QUICK=1``) — event
count and simulated-clock sample count, pure functions of the workload
— is diffed against the committed baseline by the CI perf gate.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from benchmarks.conftest import BENCH_QUICK, print_block
from repro.history.generator import generate_history
from repro.measurement.stats import (
    figure6_site_matches,
    figure7_ecdf,
    table4_top_filters,
)
from repro.measurement.survey import SurveyConfig, run_survey
from repro.obs import (
    OBS,
    FlightRecorder,
    RotatingJsonlExporter,
    TimeSeriesSampler,
    observe,
)

#: Scaled Figure 6/7 pipeline: big enough that per-visit and per-match
#: work dominates, small enough to repeat a few times.
_CONFIG = (SurveyConfig(top_n=60, stratum_size=15) if BENCH_QUICK
           else SurveyConfig(top_n=200, stratum_size=40))

#: The telemetry stage's workload adds fault injection: without it no
#: retry backoff accrues, the simulated clock never advances, no ticks
#: cross, and the telemetry bound would be measured against an idle
#: sampler.  The enabled/disabled bounds keep the fault-free pipeline.
_TELEMETRY_CONFIG = (
    SurveyConfig(top_n=60, stratum_size=15,
                 fault_rate=0.3, fault_seed=7) if BENCH_QUICK
    else SurveyConfig(top_n=200, stratum_size=40,
                      fault_rate=0.3, fault_seed=7))

_RESULT_PATH = (
    "BENCH_obs_overhead_quick.json" if BENCH_QUICK
    else "BENCH_obs_overhead.json")

_HISTORY = None


def get_history():
    """The 989-revision history, built once outside all timings."""
    global _HISTORY
    if _HISTORY is None:
        _HISTORY = generate_history(seed=2015, key_bits=128)
    return _HISTORY


def pipeline(config: SurveyConfig = _CONFIG):
    """run_survey -> Figure 6 / Figure 7 / Table 4, returning results."""
    result = run_survey(get_history(), config)
    return {
        "figure6": figure6_site_matches(result),
        "figure7": figure7_ecdf(result.top5k),
        "table4": table4_top_filters(result.top5k, top=10),
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _guard_check_cost(iterations: int = 2_000_000) -> float:
    """Seconds per disabled-guard check, measured in a tight loop.

    Each iteration evaluates all three guard flavours an
    instrumentation site may hit — the registry flag, the null
    sampler's flag, and the null flight recorder's flag — and the cost
    is averaged per check.
    """
    obs = OBS
    counted = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if obs.enabled:
            counted += 1  # pragma: no cover - observability is off here
        if obs.timeseries.enabled:
            counted += 1  # pragma: no cover
        if obs.flight.enabled:
            counted += 1  # pragma: no cover
    elapsed = time.perf_counter() - start
    assert counted == 0
    # Subtract the cost of the bare loop itself so we charge only the
    # attribute checks.
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    bare = time.perf_counter() - start
    return max(elapsed - bare, elapsed / 10) / (iterations * 3)


def _enabled_event_count() -> int:
    """Counter increments in one enabled pipeline run (>= guard evals)."""
    with observe() as (registry, _):
        pipeline()
        counters = sum(int(m.value) for m in registry.samples()
                       if m.kind == "counter")
        histograms = sum(m.count for m in registry.samples()
                         if m.kind == "histogram")
    return counters + histograms


def _telemetry_run(directory: str) -> tuple[float, int, int]:
    """One faulted pipeline run with the full telemetry plane live.

    Returns ``(seconds, timeseries_samples, flight_events)``.  The
    sampler streams real rotated segments to disk — the cost being
    bounded is the production configuration, not an in-memory stand-in.
    """
    sampler = TimeSeriesSampler(
        RotatingJsonlExporter(os.path.join(directory, "ts.jsonl"),
                              run_id="bench"))
    flight = FlightRecorder(
        path=os.path.join(directory, "flight.jsonl"), run_id="bench")
    with observe(timeseries=sampler, flight=flight):
        start = time.perf_counter()
        pipeline(_TELEMETRY_CONFIG)
        elapsed = time.perf_counter() - start
        # The final seal + flight dump are once-per-run teardown
        # (fsync-bound), not hot-path cost — they run outside the
        # stopwatch but still inside the run, so the artifacts stay
        # complete and verifiable.
        samples = sampler.samples_emitted
        events = len(flight.events()) + flight.dropped
        sampler.close()
        flight.dump(reason="exit")
    return elapsed, samples, events


def _telemetry_stage(repeats: int) -> tuple[float, float, float, int, int]:
    """Interleaved baseline-vs-telemetry timing on the faulted workload.

    Returns ``(baseline_s, telemetry_s, ratio, samples,
    flight_events)``.  The two configurations alternate within each
    round so machine-state drift (cache pressure, CPU frequency) lands
    on both sides instead of biasing whichever block ran second, and
    the asserted ratio is the best *per-round pair* rather than a
    quotient of independent minima.
    """
    baseline, telemetry = float("inf"), float("inf")
    ratio = float("inf")
    samples, events = 0, 0
    for _ in range(repeats):
        start = time.perf_counter()
        with observe():
            pipeline(_TELEMETRY_CONFIG)
        round_baseline = time.perf_counter() - start
        with tempfile.TemporaryDirectory() as directory:
            elapsed, samples, events = _telemetry_run(directory)
        baseline = min(baseline, round_baseline)
        telemetry = min(telemetry, elapsed)
        # Pair within the round: best-of on each side independently
        # still fails when a slow stretch covers every round of one
        # side, but back-to-back runs share machine state.
        ratio = min(ratio, elapsed / round_baseline)
    return baseline, telemetry, ratio, samples, events


def run_benchmark(repeats: int = 3) -> dict:
    get_history()
    pipeline()  # warm imports and caches before timing

    def observed_pipeline():
        with observe():
            pipeline()

    # Interleave disabled/enabled rounds and take the best *per-round
    # pair*: sequential blocks let machine-state drift bias whichever
    # block runs second, and even interleaved best-of fails when a
    # slow stretch covers every round of one side.  Back-to-back runs
    # inside a round share machine state, so their quotient is the
    # honest overhead estimate.
    disabled, enabled = float("inf"), float("inf")
    enabled_ratio = float("inf")
    for _ in range(repeats):
        round_disabled = _best_of(pipeline, 1)
        round_enabled = _best_of(observed_pipeline, 1)
        disabled = min(disabled, round_disabled)
        enabled = min(enabled, round_enabled)
        enabled_ratio = min(enabled_ratio, round_enabled / round_disabled)
    # The telemetry bound (5%) is tighter than the enabled bound
    # (10%), so its stage takes more rounds to push best-of noise
    # below the margin being asserted.
    _baseline, telemetry, telemetry_ratio, samples, flight_events = \
        _telemetry_stage(repeats * 2)
    events = _enabled_event_count()
    guard_cost = _guard_check_cost()
    projected_disabled = guard_cost * events / disabled
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "enabled_ratio": enabled_ratio,
        "telemetry_s": telemetry,
        "telemetry_ratio": telemetry_ratio,
        "timeseries_samples": samples,
        "flight_events": flight_events,
        "events": events,
        "guard_ns": guard_cost * 1e9,
        "projected_disabled_overhead": projected_disabled,
    }


def test_obs_overhead_bounds():
    # Best-of-5: the quick pipeline runs ~2s and shared-runner timer
    # noise is several percent, which a 5% bound cannot absorb at
    # best-of-3.
    result = run_benchmark(repeats=5)
    payload = {
        "benchmark": "obs_overhead",
        "quick": BENCH_QUICK,
        "config": {
            "top_n": _CONFIG.top_n,
            "stratum_size": _CONFIG.stratum_size,
        },
        "overhead": {
            "enabled_ratio": round(result["enabled_ratio"], 4),
            "telemetry_ratio": round(result["telemetry_ratio"], 4),
            "guard_ns": round(result["guard_ns"], 2),
            "projected_disabled_overhead": round(
                result["projected_disabled_overhead"], 6),
        },
        # Pure functions of the workload — the CI perf gate diffs
        # these against the committed baseline with zero tolerance.
        "determinism": {
            "events": result["events"],
            "timeseries_samples": result["timeseries_samples"],
            "flight_events": result["flight_events"],
        },
    }
    with open(_RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print_block(
        f"disabled: {result['disabled_s'] * 1e3:.0f} ms, "
        f"enabled: {result['enabled_s'] * 1e3:.0f} ms "
        f"(ratio {result['enabled_ratio']:.3f}x), "
        f"telemetry+flight: {result['telemetry_s'] * 1e3:.0f} ms "
        f"(ratio {result['telemetry_ratio']:.3f}x over enabled, "
        f"{result['timeseries_samples']} samples, "
        f"{result['flight_events']} flight events); "
        f"{result['events']:,} instrumentation events, "
        f"guard check {result['guard_ns']:.1f} ns, "
        f"projected disabled overhead "
        f"{result['projected_disabled_overhead']:.2%}\n"
        f"results -> {_RESULT_PATH}")
    assert result["enabled_ratio"] < 1.10, (
        f"enabled observability costs {result['enabled_ratio']:.3f}x "
        "(bound: 1.10x)")
    assert result["telemetry_ratio"] < 1.05, (
        f"telemetry plane costs {result['telemetry_ratio']:.3f}x over "
        "the enabled baseline (bound: 1.05x)")
    assert result["projected_disabled_overhead"] < 0.03, (
        f"disabled guards project to "
        f"{result['projected_disabled_overhead']:.2%} (bound: 3%)")


def test_results_identical_with_and_without_observability():
    plain = pipeline()
    with observe():
        observed = pipeline()
    assert plain == observed
