"""Micro-benchmark: the observability layer must be close to free.

Two bounds, both on the Figure 6/7 pipeline (``run_survey`` plus the
figure/table statistics):

* **enabled < 10%** — measured directly: the pipeline under a live
  registry + tracer vs the pipeline with observability off;
* **disabled < 3%** — the disabled cost is one ``OBS.enabled``
  attribute check per instrumentation site, which is far below timer
  noise for a pipeline of seconds.  We bound it by *projection*: time a
  guard check in a tight loop, count how often the pipeline evaluates
  guards (every enabled-run counter increment implies at least one
  guard evaluation, so the enabled run's total event count is a
  conservative over-estimate), and divide by the disabled pipeline
  time.

A third assertion checks the other half of the contract: enabled and
disabled runs produce *identical* analysis results (docs/OBSERVABILITY.md).

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import time

from repro.history.generator import generate_history
from repro.measurement.stats import (
    figure6_site_matches,
    figure7_ecdf,
    table4_top_filters,
)
from repro.measurement.survey import SurveyConfig, run_survey
from repro.obs import OBS, observe

#: Scaled Figure 6/7 pipeline: big enough that per-visit and per-match
#: work dominates, small enough to repeat a few times.
_CONFIG = SurveyConfig(top_n=200, stratum_size=40)

_HISTORY = None


def get_history():
    """The 989-revision history, built once outside all timings."""
    global _HISTORY
    if _HISTORY is None:
        _HISTORY = generate_history(seed=2015, key_bits=128)
    return _HISTORY


def pipeline():
    """run_survey -> Figure 6 / Figure 7 / Table 4, returning results."""
    result = run_survey(get_history(), _CONFIG)
    return {
        "figure6": figure6_site_matches(result),
        "figure7": figure7_ecdf(result.top5k),
        "table4": table4_top_filters(result.top5k, top=10),
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _guard_check_cost(iterations: int = 2_000_000) -> float:
    """Seconds per ``if OBS.enabled`` check, measured in a tight loop."""
    obs = OBS
    counted = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if obs.enabled:
            counted += 1  # pragma: no cover - observability is off here
    elapsed = time.perf_counter() - start
    assert counted == 0
    # Subtract the cost of the bare loop itself so we charge only the
    # attribute check.
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    bare = time.perf_counter() - start
    return max(elapsed - bare, elapsed / 10) / iterations


def _enabled_event_count() -> int:
    """Counter increments in one enabled pipeline run (>= guard evals)."""
    with observe() as (registry, _):
        pipeline()
        counters = sum(int(m.value) for m in registry.samples()
                       if m.kind == "counter")
        histograms = sum(m.count for m in registry.samples()
                         if m.kind == "histogram")
    return counters + histograms


def run_benchmark(repeats: int = 3) -> dict:
    get_history()
    pipeline()  # warm imports and caches before timing
    disabled = _best_of(pipeline, repeats)

    def observed_pipeline():
        with observe():
            pipeline()

    enabled = _best_of(observed_pipeline, repeats)
    events = _enabled_event_count()
    guard_cost = _guard_check_cost()
    projected_disabled = guard_cost * events / disabled
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "enabled_ratio": enabled / disabled,
        "events": events,
        "guard_ns": guard_cost * 1e9,
        "projected_disabled_overhead": projected_disabled,
    }


def test_obs_overhead_bounds():
    result = run_benchmark(repeats=3)
    print(f"\ndisabled: {result['disabled_s'] * 1e3:.0f} ms, "
          f"enabled: {result['enabled_s'] * 1e3:.0f} ms "
          f"(ratio {result['enabled_ratio']:.3f}x); "
          f"{result['events']:,} instrumentation events, "
          f"guard check {result['guard_ns']:.1f} ns, "
          f"projected disabled overhead "
          f"{result['projected_disabled_overhead']:.2%}")
    assert result["enabled_ratio"] < 1.10, (
        f"enabled observability costs {result['enabled_ratio']:.3f}x "
        "(bound: 1.10x)")
    assert result["projected_disabled_overhead"] < 0.03, (
        f"disabled guards project to "
        f"{result['projected_disabled_overhead']:.2%} (bound: 3%)")


def test_results_identical_with_and_without_observability():
    plain = pipeline()
    with observe():
        observed = pipeline()
    assert plain == observed
