"""Benchmark: the compiled filter index against the PR-4 legacy probe.

Quantifies the tentpole claim in docs/PERFORMANCE.md: producing a
request's candidate-filter sequence through the ahead-of-time compiled
index (:mod:`repro.filters.compiled`) is >= 10x faster than the legacy
``FilterIndex.candidates`` generator — with byte-identical candidate
sequences and verdicts — because the compiled probe replaces per-call
regex tokenisation with one C-level byte pass and replaces generator
resumption per candidate with prebuilt tuples.

Three sections land in the JSON artifact
(``BENCH_compiled_index.json``, or ``BENCH_compiled_index_quick.json``
under ``BENCH_QUICK=1``):

* ``produce`` — time to *produce* the candidate sequence per probe:
  legacy cold (regex per call, the code as PR 4 shipped it without its
  lru_cache warm), legacy warm (the lru_cache memoised best case,
  reproduced here with a local cache), and compiled.  The headline
  ratio is compiled vs legacy *warm* — the stronger baseline.
* ``iterate`` — the same probes but driving every yielded candidate,
  the match_all consumption shape.
* ``artifact`` — serialize / parse+attach / fresh-build timings for
  the snapshot artifact, plus its size.

``verdict_mismatches`` counts probes where the two paths disagreed on
either the candidate sequence or ``match_all``; the benchmark asserts
it is exactly zero, and CI gates on it at tolerance 0.0.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_compiled_index.py -s
"""

from __future__ import annotations

import functools
import json
import os
import random
import time

from repro.filters.compiled import parse_artifact, serialize_artifact
from repro.filters.compiled.index import CompiledFilterIndex
from repro.filters.engine import AdblockEngine, EngineSnapshot
from repro.filters.index import FilterIndex, _url_tokens
from repro.filters.options import ContentType
from repro.history.generator import generate_history
from repro.measurement.easylist import build_easylist
from repro.web.url import parse_url

from benchmarks.conftest import BENCH_QUICK, print_block

_CORPUS_URLS = 400 if BENCH_QUICK else 2_000
_PROBE_REPEATS = 3 if BENCH_QUICK else 5

_RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_compiled_index_quick.json" if BENCH_QUICK
    else "BENCH_compiled_index.json")


def _build_lists():
    history = generate_history(seed=2015, key_bits=128)
    easylist = build_easylist(name="easylist")
    whitelist = history.tip_filter_list()
    whitelist.name = "exceptionrules"
    return [easylist, whitelist]


def _build_indexes(lists):
    """The legacy mutable index and its compiled twin, same buckets."""
    engine = AdblockEngine()
    for filter_list in lists:
        engine.subscribe(filter_list)
    legacy = engine._blocking            # FilterIndex until freeze
    assert isinstance(legacy, FilterIndex)
    compiled = CompiledFilterIndex.compile(legacy, name="blocking")
    snapshot = engine.freeze()
    return legacy, compiled, snapshot


def _build_corpus(legacy: FilterIndex) -> list[str]:
    """Deterministic URL mix: bucket hits, misses, and multi-hits."""
    rng = random.Random(2015)
    keywords = sorted(legacy._by_keyword)
    hosts = ["adserv.genericnet.com", "static.adzerk.net",
             "cdn.bannerfarm.net", "benign-nothing.org",
             "www.example-page.com", "fonts.gstatic.com"]
    paths = ["ads/unit.js", "img/logo.png", "banner/728x90.gif",
             "app/main.css", "frame.html?sr=example.com", ""]
    corpus = []
    for _ in range(_CORPUS_URLS):
        roll = rng.random()
        host = rng.choice(hosts)
        path = rng.choice(paths)
        if roll < 0.4 and keywords:          # guaranteed bucket hit
            path = rng.choice(keywords) + "/" + path
        elif roll < 0.5 and len(keywords) > 1:   # multi-bucket hit
            path = "/".join(rng.sample(keywords, 2)) + "/" + path
        elif roll < 0.55:
            host = host.upper()
        corpus.append(f"http://{host}/{path}")
    return corpus


def _best_of(fn, repeats: int = _PROBE_REPEATS) -> float:
    return min(fn() for _ in range(repeats))


def _us_per_probe(total_s: float, probes: int) -> float:
    return round(total_s / probes * 1e6, 3)


def measure_produce(legacy, compiled, corpus) -> dict:
    from repro.filters import index as index_mod

    def produce_legacy() -> float:
        start = time.perf_counter()
        for url in corpus:
            list(legacy.candidates(url))
        return time.perf_counter() - start

    def produce_compiled() -> float:
        start = time.perf_counter()
        for url in corpus:
            compiled.candidates(url)
        return time.perf_counter() - start

    cold_s = _best_of(produce_legacy)
    # Reproduce the PR-4 memoised best case: tokenisation through a
    # warm 8192-entry lru_cache, exactly the shape this PR deleted.
    memo = functools.lru_cache(maxsize=8192)(_url_tokens)
    saved = index_mod._url_tokens
    index_mod._url_tokens = memo
    try:
        produce_legacy()                    # warm the memo
        warm_s = _best_of(produce_legacy)
    finally:
        index_mod._url_tokens = saved
    compiled_s = _best_of(produce_compiled)
    probes = len(corpus)
    return {
        "legacy_cold_us": _us_per_probe(cold_s, probes),
        "legacy_warm_us": _us_per_probe(warm_s, probes),
        "compiled_us": _us_per_probe(compiled_s, probes),
        "speedup_vs_warm": round(warm_s / compiled_s, 2),
        "speedup_vs_cold": round(cold_s / compiled_s, 2),
    }


def measure_iterate(legacy, compiled, corpus) -> dict:
    def drive(index) -> float:
        start = time.perf_counter()
        for url in corpus:
            for _ in index.candidates(url):
                pass
        return time.perf_counter() - start

    legacy_s = _best_of(lambda: drive(legacy))
    compiled_s = _best_of(lambda: drive(compiled))
    probes = len(corpus)
    return {
        "legacy_us": _us_per_probe(legacy_s, probes),
        "compiled_us": _us_per_probe(compiled_s, probes),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def count_mismatches(legacy, compiled, corpus) -> int:
    mismatches = 0
    for url in corpus:
        host = parse_url(url).host
        legacy_seq = list(legacy.candidates(url))
        compiled_seq = list(compiled.candidates(url))
        if [f.text for f in legacy_seq] != [f.text for f in compiled_seq]:
            mismatches += 1
            continue
        if (legacy.match_all(url, ContentType.SCRIPT,
                             "www.example-page.com", host)
                != compiled.match_all(url, ContentType.SCRIPT,
                                      "www.example-page.com", host)):
            mismatches += 1
    return mismatches


def measure_artifact(snapshot: EngineSnapshot, lists) -> dict:
    fingerprint = "bench123"

    def save() -> float:
        start = time.perf_counter()
        serialize_artifact(snapshot, fingerprint=fingerprint)
        return time.perf_counter() - start

    blob = serialize_artifact(snapshot, fingerprint=fingerprint)

    def load() -> float:
        start = time.perf_counter()
        parse_artifact(blob).build_snapshot(lists)
        return time.perf_counter() - start

    def fresh() -> float:
        start = time.perf_counter()
        EngineSnapshot.build(lists)
        return time.perf_counter() - start

    save_s = _best_of(save, 3)
    load_s = _best_of(load, 3)
    fresh_s = _best_of(fresh, 3)
    return {
        "bytes": len(blob),
        "save_ms": round(save_s * 1e3, 3),
        "load_ms": round(load_s * 1e3, 3),
        "fresh_build_ms": round(fresh_s * 1e3, 3),
        "load_speedup": round(fresh_s / load_s, 2) if load_s else 0.0,
    }


def test_compiled_index_benchmark():
    lists = _build_lists()
    legacy, compiled, snapshot = _build_indexes(lists)
    corpus = _build_corpus(legacy)

    mismatches = count_mismatches(legacy, compiled, corpus)
    produce = measure_produce(legacy, compiled, corpus)
    iterate = measure_iterate(legacy, compiled, corpus)
    artifact = measure_artifact(snapshot, lists)

    payload = {
        "benchmark": "compiled_index",
        "quick": BENCH_QUICK,
        "corpus": {
            "urls": len(corpus),
            "filters": len(legacy),
            "probe_repeats": _PROBE_REPEATS,
        },
        "automaton": {
            name: getattr(snapshot, name).stats()
            for name in ("blocking", "exceptions")
        },
        "produce": produce,
        "iterate": iterate,
        "verdict_mismatches": mismatches,
        "artifact": artifact,
    }
    with open(_RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print_block(
        f"compiled index ({len(legacy):,} filters, {len(corpus)} URLs): "
        f"produce {produce['legacy_warm_us']}us (warm legacy) -> "
        f"{produce['compiled_us']}us = {produce['speedup_vs_warm']}x "
        f"(cold {produce['legacy_cold_us']}us = "
        f"{produce['speedup_vs_cold']}x)\n"
        f"iterate {iterate['legacy_us']}us -> {iterate['compiled_us']}us "
        f"= {iterate['speedup']}x; verdict mismatches: {mismatches}\n"
        f"artifact {artifact['bytes']:,} B: save {artifact['save_ms']}ms, "
        f"load {artifact['load_ms']}ms vs fresh build "
        f"{artifact['fresh_build_ms']}ms = {artifact['load_speedup']}x\n"
        f"results -> {_RESULT_PATH}")

    assert mismatches == 0, f"{mismatches} verdict mismatches"
    floor = 3.0 if BENCH_QUICK else 10.0
    assert produce["speedup_vs_warm"] >= floor, (
        f"compiled candidates() produce speedup "
        f"{produce['speedup_vs_warm']}x below the {floor}x floor")
    assert iterate["speedup"] >= 1.0, (
        f"iterating compiled candidates regressed: {iterate['speedup']}x")
