"""Benchmark: the filter-match serving daemon under sustained load.

Three questions, answered in one JSON artifact (``BENCH_serve.json``
at the repo root):

1. **What does the daemon sustain?**  A threaded load generator drives
   the full HTTP path (admission → parse → frozen-snapshot match →
   canonical encode) and records QPS plus p50/p95/p99 latency from the
   daemon's own ``serve.latency_ms`` histogram
   (:meth:`repro.obs.metrics.Histogram.percentile`).

2. **What does hot-reload cost the serving path?**  The same load runs
   again while a churn thread swaps snapshots through
   ``POST /admin/reload`` the whole time; the artifact records both
   phases side by side, the number of swaps that landed, and how many
   distinct epochs the clients actually observed mid-flight.

3. **Is the daemon byte-faithful?**  Every corpus payload's HTTP
   response body is compared against
   :func:`repro.serve.protocol.serve_match` over the same snapshot —
   the verdict-parity acceptance.  ``parity.mismatches`` is the CI
   perf-gate metric: it is deterministic (0 or bust), unlike QPS,
   which is shared-runner weather and deliberately not gated.

Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s

Set ``BENCH_QUICK=1`` (the CI serve-smoke job does) for a scaled-down
run that still emits the JSON and keeps every assertion.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

from repro.measurement.easylist import build_easylist
from repro.obs import observe
from repro.serve import (
    Reloader,
    ServeConfig,
    ServeDaemon,
    SnapshotHolder,
    protocol,
)
from repro.serve.protocol import parse_match_payload, serve_match

from benchmarks.conftest import BENCH_QUICK, print_block

_CLIENTS = 4 if BENCH_QUICK else 8
_REQUESTS_PER_CLIENT = 50 if BENCH_QUICK else 250
_CORPUS_SIZE = 48
_WHITELISTED_PAGES = 12

_RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve_quick.json" if BENCH_QUICK else "BENCH_serve.json")

_WORDS = ("banner", "click", "pop", "track")


def _sources() -> list[tuple[str, str]]:
    """The serving lists: the synthetic EasyList + a scoped whitelist."""
    easylist = build_easylist()
    whitelist_lines = [
        f"@@||{_WORDS[i % len(_WORDS)]}server{i * 4}.com^"
        f"$domain=friendly{i}.example"
        for i in range(_WHITELISTED_PAGES)]
    return [
        ("easylist", "\n".join(e.text for e in easylist.entries)),
        ("exceptionrules", "\n".join(whitelist_lines)),
    ]


def _churn_sources(flip: int) -> list[tuple[str, str]]:
    """Alternate list sets so every other reload really changes epoch."""
    base = _sources()
    if flip % 2:
        name, text = base[0]
        return [(name, text + "\nchurn-extra-filter.example/ads/"),
                base[1]]
    return base


def _corpus() -> list[dict]:
    """A deterministic mix: blocked, clean, and whitelisted requests."""
    corpus: list[dict] = []
    for i in range(_CORPUS_SIZE):
        word = _WORDS[i % len(_WORDS)]
        kind = i % 3
        if kind == 0:       # hits a ||{word}server{n}.com^$third-party rule
            corpus.append({
                "url": f"http://{word}server{(i * 4) % 96}.com/ad.js",
                "content_type": "script",
                "page_host": f"news{i}.example",
                "request_host": f"{word}server{(i * 4) % 96}.com"})
        elif kind == 1:     # clean
            corpus.append({
                "url": f"http://cdn{i}.site.example/asset{i}.png",
                "content_type": "image",
                "page_host": f"news{i}.example",
                "request_host": f"cdn{i}.site.example"})
        else:               # whitelisted page context
            page = i % _WHITELISTED_PAGES
            corpus.append({
                "url": f"http://{word}server{page * 4}.com/ad.js",
                "content_type": "script",
                "page_host": f"friendly{page}.example",
                "page_url": f"http://friendly{page}.example/",
                "request_host": f"{word}server{page * 4}.com"})
    return corpus


def _start_daemon() -> ServeDaemon:
    holder = SnapshotHolder.from_sources(_sources())
    daemon = ServeDaemon(
        holder,
        ServeConfig(port=0, max_inflight=max(_CLIENTS, 2),
                    max_queue=256, default_deadline_ms=10_000.0),
        reloader=Reloader(holder))
    daemon.start()
    return daemon


def _run_load(daemon: ServeDaemon, corpus: list[dict]) -> dict:
    """One load phase; returns outcome counts, QPS, and epochs seen."""
    host, port = daemon.address
    outcomes = {"served": 0, "degraded": 0, "shed": 0, "error": 0}
    epochs: set[int] = set()
    lock = threading.Lock()

    def client(index: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60.0)
        local = {"served": 0, "degraded": 0, "shed": 0, "error": 0}
        seen: set[int] = set()
        try:
            for number in range(_REQUESTS_PER_CLIENT):
                payload = corpus[(index + number) % len(corpus)]
                connection.request(
                    "POST", "/v1/match", body=json.dumps(payload),
                    headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                body = json.loads(response.read())
                outcome = body.get("outcome", "error")
                local[outcome if outcome in local else "error"] += 1
                if "epoch" in body:
                    seen.add(body["epoch"])
        finally:
            connection.close()
        with lock:
            for key, value in local.items():
                outcomes[key] += value
            epochs.update(seen)

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    sent = _CLIENTS * _REQUESTS_PER_CLIENT
    return {
        "requests": sent,
        "outcomes": outcomes,
        "epochs_observed": len(epochs),
        "wall_clock_s": round(elapsed, 4),
        "qps": round(sent / elapsed, 1) if elapsed else 0.0,
    }


def _phase(daemon: ServeDaemon, corpus: list[dict]) -> dict:
    """Run one load phase under its own registry; attach percentiles."""
    with observe() as (registry, _tracer):
        stats = _run_load(daemon, corpus)
        histogram = registry.histogram("serve.latency_ms")
        stats["latency_ms"] = {
            "mean": round(histogram.mean, 3),
            "p50": round(histogram.percentile(50), 3),
            "p95": round(histogram.percentile(95), 3),
            "p99": round(histogram.percentile(99), 3),
        }
    return stats


def _parity(daemon: ServeDaemon, corpus: list[dict]) -> dict:
    """Daemon bytes vs direct engine bytes over the whole corpus."""
    host, port = daemon.address
    snapshot = daemon.holder.current()
    mismatches = 0
    connection = http.client.HTTPConnection(host, port, timeout=60.0)
    try:
        for payload in corpus:
            body = json.dumps(payload).encode()
            connection.request("POST", "/v1/match", body=body)
            daemon_bytes = connection.getresponse().read()
            _, direct = serve_match(snapshot, parse_match_payload(body))
            if daemon_bytes != protocol.encode(direct):
                mismatches += 1
    finally:
        connection.close()
    return {"requests": len(corpus), "mismatches": mismatches}


def test_serve_benchmark():
    daemon = _start_daemon()
    corpus = _corpus()
    filter_count = daemon.holder.current().filter_count
    try:
        parity = _parity(daemon, corpus)
        steady = _phase(daemon, corpus)

        # Phase 2: identical load with a reload churning underneath.
        stop = threading.Event()
        reloads = {"swapped": 0, "rejected": 0}

        def churn() -> None:
            flip = 0
            while not stop.is_set():
                flip += 1
                result = daemon.reloader.reload(_churn_sources(flip))
                reloads[result.status] = reloads.get(result.status, 0) + 1
                stop.wait(0.02)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            reloaded = _phase(daemon, corpus)
        finally:
            stop.set()
            churner.join(timeout=30.0)
        reloaded["reloads"] = dict(reloads)
    finally:
        daemon.stop()

    payload = {
        "benchmark": "serve",
        "quick": BENCH_QUICK,
        "config": {
            "clients": _CLIENTS,
            "requests_per_client": _REQUESTS_PER_CLIENT,
            "corpus": len(corpus),
            "filters": filter_count,
        },
        "parity": parity,
        "steady": steady,
        "reload_churn": reloaded,
    }
    with open(_RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print_block(
        f"serve ({payload['config']['filters']:,} filters, "
        f"{_CLIENTS} clients x {_REQUESTS_PER_CLIENT} requests):\n"
        f"steady      {steady['qps']:,} qps  "
        f"p50={steady['latency_ms']['p50']}ms "
        f"p95={steady['latency_ms']['p95']}ms "
        f"p99={steady['latency_ms']['p99']}ms\n"
        f"reload churn {reloaded['qps']:,} qps  "
        f"p50={reloaded['latency_ms']['p50']}ms "
        f"p99={reloaded['latency_ms']['p99']}ms  "
        f"({reloaded['reloads']['swapped']} swaps, "
        f"{reloaded['epochs_observed']} epochs observed)\n"
        f"parity: {parity['mismatches']}/{parity['requests']} mismatches\n"
        f"results -> {_RESULT_PATH}")

    assert parity["mismatches"] == 0, "daemon diverged from the engine"
    assert steady["outcomes"]["served"] == steady["requests"], (
        f"steady load shed or errored: {steady['outcomes']}")
    assert reloaded["outcomes"]["served"] == reloaded["requests"], (
        f"reload churn dropped requests: {reloaded['outcomes']}")
    assert reloaded["reloads"]["swapped"] >= 1, \
        "no reload landed during the churn phase"
    assert reloaded["epochs_observed"] >= 2, \
        "clients never observed an epoch change mid-flight"
