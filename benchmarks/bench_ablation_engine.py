"""Ablation: the keyword index against a naive linear scan.

DESIGN.md calls out the keyword-bucketed filter index as the design
choice that keeps the 16,000-visit survey tractable; this benchmark
quantifies it by matching a realistic request mix against the full
EasyList+whitelist filter set both ways.
"""

import pytest

from repro.filters.index import FilterIndex
from repro.filters.options import ContentType
from repro.web.url import parse_url

from benchmarks.conftest import print_block

REQUEST_MIX = [
    ("http://stats.g.doubleclick.net/dc.js", ContentType.SCRIPT),
    ("http://www.googleadservices.com/pagead/conversion.js",
     ContentType.SCRIPT),
    ("http://fonts.gstatic.com/s/roboto/v15/font.woff",
     ContentType.OTHER),
    ("http://static.adzerk.net/ads.html?sr=reddit.com",
     ContentType.SUBDOCUMENT),
    ("http://www.example-page.com/static/app.js", ContentType.SCRIPT),
    ("http://cdn.bannerfarm.net/ad-frame/banner.gif", ContentType.IMAGE),
    ("http://adserv.genericnet.com/slot/somesite.com/unit.js",
     ContentType.SCRIPT),
    ("http://benign-nothing.org/images/logo.png", ContentType.IMAGE),
]


@pytest.fixture(scope="module")
def all_filters(paper_study):
    filters = list(paper_study.whitelist.request_filters)
    from repro.measurement.easylist import build_easylist

    filters.extend(build_easylist().request_filters)
    return filters


def _run_indexed(index: FilterIndex) -> int:
    hits = 0
    for url, content_type in REQUEST_MIX:
        host = parse_url(url).host
        hits += len(index.match_all(url, content_type,
                                    "www.example-page.com", host))
    return hits


def _run_linear(filters) -> int:
    hits = 0
    for url, content_type in REQUEST_MIX:
        host = parse_url(url).host
        hits += sum(
            1 for flt in filters
            if flt.matches(url, content_type, "www.example-page.com",
                           host))
    return hits


def test_ablation_indexed_matching(benchmark, all_filters):
    index = FilterIndex(all_filters)
    hits = benchmark(_run_indexed, index)
    print_block(f"indexed matching: {hits} filter hits over "
                f"{len(REQUEST_MIX)} requests, "
                f"{len(all_filters):,} filters loaded")
    assert hits > 0


def test_ablation_linear_matching(benchmark, all_filters):
    hits = benchmark.pedantic(_run_linear, args=(all_filters,),
                              rounds=3, iterations=1)
    print_block(f"linear matching: {hits} filter hits (same request mix)")
    assert hits > 0


def test_index_and_linear_agree(all_filters):
    index = FilterIndex(all_filters)
    assert _run_indexed(index) == _run_linear(all_filters)
