"""repro — a reproduction of *Measuring the Impact and Perception of
Acceptable Advertisements* (IMC 2015).

The package rebuilds the paper's entire apparatus in pure Python: an
Adblock Plus filter engine, a synthetic web and instrumented browser,
the whitelist's 989-revision history, the sitekey cryptography and
parked-domain scan, the Alexa site survey, and the Mechanical Turk
perception study.

Quick start::

    from repro import AcceptableAdsStudy
    study = AcceptableAdsStudy()
    for row in study.table1():
        print(row.year, row.filters_added, row.filters_removed)
"""

from repro.core.study import AcceptableAdsStudy, StudyConfig

__version__ = "1.0.0"

__all__ = ["AcceptableAdsStudy", "StudyConfig", "__version__"]
