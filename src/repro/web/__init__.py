"""Synthetic web substrate: URLs, HTTP, DOM, sites, browser, crawler.

This subpackage replaces the live Internet the paper crawled.  Sites are
generated deterministically from their domain names; ad stacks come from
the shared network catalog; the instrumented browser plays the role of
Selenium driving a patched Adblock Plus.
"""

from repro.web.adnetworks import (
    AdNetwork,
    AdResource,
    NETWORK_CATALOG,
    blocking_networks,
    network,
    whitelisted_networks,
)
from repro.web.browser import InstrumentedBrowser, PageVisit
from repro.web.crawler import Crawler, CrawlRecord, CrawlTarget, crawl
from repro.web.devtools import (
    BlockableItem,
    Disposition,
    blockable_items,
    render_blockable_items,
)
from repro.web.dom import Document, Element
from repro.web.http import (
    CURL_USER_AGENT,
    DEFAULT_USER_AGENT,
    CookieJar,
    Headers,
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    TooManyRedirects,
)
from repro.web.sites import (
    BuiltPage,
    PageRequest,
    PINNED_PROFILES,
    SiteProfile,
    build_page,
    pinned_profile,
    profile_for_domain,
)
from repro.web.url import (
    URL,
    URLError,
    is_subdomain_of,
    is_third_party,
    parse_url,
    public_suffix,
    registered_domain,
)

__all__ = [
    "AdNetwork",
    "BlockableItem",
    "Disposition",
    "blockable_items",
    "render_blockable_items",
    "AdResource",
    "BuiltPage",
    "CURL_USER_AGENT",
    "CookieJar",
    "CrawlRecord",
    "CrawlTarget",
    "Crawler",
    "DEFAULT_USER_AGENT",
    "Document",
    "Element",
    "Headers",
    "HttpClient",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "InstrumentedBrowser",
    "NETWORK_CATALOG",
    "PINNED_PROFILES",
    "PageRequest",
    "PageVisit",
    "SiteProfile",
    "TooManyRedirects",
    "URL",
    "URLError",
    "blocking_networks",
    "build_page",
    "crawl",
    "is_subdomain_of",
    "is_third_party",
    "network",
    "parse_url",
    "pinned_profile",
    "profile_for_domain",
    "public_suffix",
    "registered_domain",
    "whitelisted_networks",
]
