"""Survey crawler: drive the instrumented browser across domain samples.

The paper's methodology (Section 5): visit only the landing page of each
sampled domain with an instrumented Adblock Plus, recording filter
activations.  The crawler here does that for any iterable of
``(domain, rank, group_index)`` triples, producing one
:class:`CrawlRecord` per domain — the raw material for every Section 5
table and figure.

Two engine configurations matter (Figure 6 compares them):

* ``easylist+whitelist`` — ABP's default: EasyList plus Acceptable Ads;
* ``easylist-only`` — the whitelist disabled.

:func:`crawl` accepts any engine, so callers run it twice to produce the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.filters.engine import AdblockEngine
from repro.web.browser import InstrumentedBrowser, PageVisit
from repro.web.sites import SiteProfile, profile_for_domain

__all__ = ["CrawlTarget", "CrawlRecord", "crawl", "Crawler"]


@dataclass(frozen=True, slots=True)
class CrawlTarget:
    """One domain to survey."""

    domain: str
    rank: int
    group_index: int = 0  # 0: top-5K, 1: 5K–50K, 2: 50K–100K, 3: 100K–1M
    category: str | None = None


@dataclass(slots=True)
class CrawlRecord:
    """Survey result for one domain."""

    target: CrawlTarget
    visit: PageVisit
    profile: SiteProfile

    @property
    def domain(self) -> str:
        return self.target.domain

    @property
    def rank(self) -> int:
        return self.target.rank

    @property
    def total_matches(self) -> int:
        return len(self.visit.activations)

    @property
    def whitelist_matches(self) -> int:
        return len(self.visit.whitelist_activations)

    @property
    def distinct_whitelist_filters(self) -> set[str]:
        return self.visit.distinct_whitelist_filters

    @property
    def any_activation(self) -> bool:
        return bool(self.visit.activations)


class Crawler:
    """A reusable crawler bound to one engine configuration.

    ``profile_factory`` lets callers control how a target becomes a
    :class:`SiteProfile` — the survey uses this to wire explicitly
    whitelisted publishers to their restricted filters.  The default
    factory is :func:`repro.web.sites.profile_for_domain`.
    """

    def __init__(self, engine: AdblockEngine, *,
                 profile_factory=None, **browser_kwargs) -> None:
        self.browser = InstrumentedBrowser(engine, **browser_kwargs)
        self._profile_factory = profile_factory or (
            lambda target: profile_for_domain(
                target.domain, target.rank,
                group_index=target.group_index,
                category=target.category,
            ))

    def survey(self, targets: Iterable[CrawlTarget]) -> list[CrawlRecord]:
        records = []
        for target in targets:
            profile = self._profile_factory(target)
            visit = self.browser.visit(profile)
            records.append(CrawlRecord(target=target, visit=visit,
                                       profile=profile))
        return records


def crawl(engine: AdblockEngine,
          targets: Sequence[CrawlTarget],
          **browser_kwargs) -> list[CrawlRecord]:
    """One-shot convenience: survey ``targets`` with ``engine``."""
    return Crawler(engine, **browser_kwargs).survey(targets)
