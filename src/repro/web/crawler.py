"""Survey crawler: drive the instrumented browser across domain samples.

The paper's methodology (Section 5): visit only the landing page of each
sampled domain with an instrumented Adblock Plus, recording filter
activations.  The crawler here does that for any iterable of
``(domain, rank, group_index)`` triples, producing one
:class:`CrawlOutcome` per domain — success, degraded (succeeded after
retries), or a failed tombstone — so downstream Figure 6–8 aggregations
always know their denominator.  Successful outcomes carry a
:class:`CrawlRecord`, the raw material for every Section 5 table and
figure.

Every visit routes through the resilience layer
(:mod:`repro.web.resilience`): a :class:`~repro.web.resilience.RetryPolicy`
with seeded backoff jitter, a per-registered-domain circuit breaker,
and an optional :class:`~repro.web.faults.FaultInjector` that injects
the failure modes a live crawl sees.  With no injector the pipeline is
a clean pass-through — a zero-fault crawl produces records identical to
the bare visit loop.

Two engine configurations matter (Figure 6 compares them):

* ``easylist+whitelist`` — ABP's default: EasyList plus Acceptable Ads;
* ``easylist-only`` — the whitelist disabled.

:func:`crawl` accepts any engine, so callers run it twice to produce the
comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.filters.engine import AdblockEngine
from repro.obs import OBS
from repro.web.browser import InstrumentedBrowser, PageVisit
from repro.web.faults import FaultInjector
from repro.web.resilience import (
    BreakerRegistry,
    OutcomeStatus,
    RetryPolicy,
    SimulatedClock,
    execute_with_policy,
)
from repro.web.sites import SiteProfile, profile_for_domain

__all__ = [
    "CrawlTarget",
    "CrawlRecord",
    "CrawlStatus",
    "CrawlOutcome",
    "CrawlHealth",
    "crawl_health",
    "crawl",
    "Crawler",
]

#: A crawl outcome's status is the generic resilience outcome status.
CrawlStatus = OutcomeStatus


@dataclass(frozen=True, slots=True)
class CrawlTarget:
    """One domain to survey."""

    domain: str
    rank: int
    group_index: int = 0  # 0: top-5K, 1: 5K–50K, 2: 50K–100K, 3: 100K–1M
    category: str | None = None


@dataclass(slots=True)
class CrawlRecord:
    """Survey result for one domain."""

    target: CrawlTarget
    visit: PageVisit
    profile: SiteProfile

    @property
    def domain(self) -> str:
        return self.target.domain

    @property
    def rank(self) -> int:
        return self.target.rank

    @property
    def total_matches(self) -> int:
        return len(self.visit.activations)

    @property
    def whitelist_matches(self) -> int:
        return len(self.visit.whitelist_activations)

    @property
    def distinct_whitelist_filters(self) -> set[str]:
        return self.visit.distinct_whitelist_filters

    @property
    def any_activation(self) -> bool:
        return bool(self.visit.activations)


@dataclass(slots=True)
class CrawlOutcome:
    """One target's fate: a record, or a tombstone explaining the loss."""

    target: CrawlTarget
    status: CrawlStatus
    record: CrawlRecord | None = None
    error_class: str | None = None
    attempts: int = 1
    latency_ms: float = 0.0
    breaker_open: bool = False

    @property
    def domain(self) -> str:
        return self.target.domain

    @property
    def ok(self) -> bool:
        return self.record is not None

    @property
    def is_tombstone(self) -> bool:
        return self.record is None


@dataclass(slots=True)
class CrawlHealth:
    """Aggregate crawl telemetry for the crawl-health table."""

    total: int = 0
    succeeded: int = 0
    degraded: int = 0
    failed: int = 0
    total_attempts: int = 0
    retried: int = 0                      # outcomes needing >1 attempt
    breaker_skips: int = 0                # visits refused by open circuits
    total_latency_ms: float = 0.0
    #: Final error class -> tombstone count.
    failure_counts: dict[str, int] = field(default_factory=dict)
    #: Error class recovered from -> degraded-outcome count.
    recovered_counts: dict[str, int] = field(default_factory=dict)
    #: Flat observability snapshot (``repro.obs``) taken when the health
    #: summary was built with an enabled registry; empty otherwise, so
    #: un-instrumented runs render byte-identically to pre-obs output.
    metrics: dict[str, int | float] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return self.succeeded + self.degraded

    @property
    def success_fraction(self) -> float:
        return self.completed / self.total if self.total else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.total_latency_ms / self.total if self.total else 0.0


def crawl_health(outcomes: Iterable[CrawlOutcome]) -> CrawlHealth:
    """Summarise a sequence of outcomes (possibly across groups/configs)."""
    health = CrawlHealth()
    for outcome in outcomes:
        health.total += 1
        health.total_attempts += outcome.attempts
        health.total_latency_ms += outcome.latency_ms
        if outcome.attempts > 1:
            health.retried += 1
        if outcome.breaker_open:
            health.breaker_skips += 1
        if outcome.status is CrawlStatus.SUCCESS:
            health.succeeded += 1
        elif outcome.status is CrawlStatus.DEGRADED:
            health.degraded += 1
            label = outcome.error_class or "unknown"
            health.recovered_counts[label] = (
                health.recovered_counts.get(label, 0) + 1)
        else:
            health.failed += 1
            label = outcome.error_class or "unknown"
            health.failure_counts[label] = (
                health.failure_counts.get(label, 0) + 1)
    if OBS.enabled:
        health.metrics = OBS.registry.flat()
    return health


def _validate_target(target: CrawlTarget) -> None:
    domain = target.domain
    if not isinstance(domain, str) or not domain.strip():
        raise ValueError(
            f"invalid crawl target: empty domain (rank={target.rank!r})")
    if domain != domain.strip():
        raise ValueError(
            f"invalid crawl target: domain {domain!r} has stray whitespace")
    if target.rank < 0:
        raise ValueError(
            f"invalid crawl target {domain!r}: negative rank "
            f"{target.rank}")


class Crawler:
    """A reusable crawler bound to one engine configuration.

    ``profile_factory`` lets callers control how a target becomes a
    :class:`SiteProfile` — the survey uses this to wire explicitly
    whitelisted publishers to their restricted filters.  The default
    factory is :func:`repro.web.sites.profile_for_domain`.

    ``fault_injector`` (optional) subjects every visit to a
    :class:`~repro.web.faults.FaultPlan`; ``retry_policy`` governs how
    hard each target is retried; ``rng`` seeds the backoff jitter (all
    crawl randomness flows from this one ``random.Random``).  The
    crawler shares the injector's simulated clock when one is present
    so latencies and breaker cooldowns agree.
    """

    def __init__(self, engine: AdblockEngine, *,
                 profile_factory=None,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 rng: random.Random | None = None,
                 clock: SimulatedClock | None = None,
                 breakers: BreakerRegistry | None = None,
                 **browser_kwargs) -> None:
        self.browser = InstrumentedBrowser(engine, **browser_kwargs)
        self._profile_factory = profile_factory or (
            lambda target: profile_for_domain(
                target.domain, target.rank,
                group_index=target.group_index,
                category=target.category,
            ))
        self.policy = retry_policy or RetryPolicy()
        self.injector = fault_injector
        if clock is not None:
            self.clock = clock
        elif fault_injector is not None:
            self.clock = fault_injector.clock
        else:
            self.clock = SimulatedClock()
        self.rng = rng if rng is not None else random.Random(0)
        self.breakers = breakers or BreakerRegistry()

    def visit_target(self, target: CrawlTarget, *,
                     rng: random.Random | None = None,
                     breaker=None,
                     unit: int | None = None) -> CrawlOutcome:
        """Visit one (validated) target through the resilience pipeline.

        ``rng`` and ``breaker`` override the crawler's shared backoff
        rng and per-registered-domain breaker for this one visit.  The
        shared-nothing executor (:mod:`repro.parallel.survey`) passes a
        per-target derived rng and a fresh breaker so the visit's
        result is independent of every other target's execution, plus
        the unit's global index as ``unit`` — recorded as a span
        attribute so a stitched cross-worker trace names every visit by
        its position in the global unit order.
        """
        _validate_target(target)
        profile = self._profile_factory(target)
        if breaker is None:
            breaker = self.breakers.get(target.domain)
        if rng is None:
            rng = self.rng

        def attempt(_n: int) -> PageVisit:
            if self.injector is not None:
                return self.injector.run(
                    target.domain,
                    lambda: self.browser.visit(profile),
                    group_index=target.group_index)
            return self.browser.visit(profile)

        if OBS.enabled:
            attrs: dict[str, object] = {"domain": target.domain,
                                        "group": target.group_index}
            if unit is not None:
                attrs["unit"] = unit
            with OBS.tracer.span("web.crawl.visit", **attrs):
                call = execute_with_policy(
                    attempt, policy=self.policy, clock=self.clock,
                    rng=rng, breaker=breaker)
            reg = OBS.registry
            reg.counter("web.crawl.outcomes",
                        status=call.status.value).inc()
            reg.counter("web.crawl.attempts").inc(call.attempts)
            if call.attempts > 1:
                reg.counter("web.crawl.retries").inc(call.attempts - 1)
            if call.breaker_open:
                reg.counter("web.crawl.breaker_skips").inc()
            reg.histogram("web.crawl.latency_ms").observe(
                call.elapsed * 1000.0)
        else:
            call = execute_with_policy(
                attempt, policy=self.policy, clock=self.clock,
                rng=rng, breaker=breaker)
        record = None
        if call.value is not None:
            record = CrawlRecord(target=target, visit=call.value,
                                 profile=profile)
        return CrawlOutcome(target=target, status=call.status,
                            record=record, error_class=call.error_class,
                            attempts=call.attempts,
                            latency_ms=call.elapsed * 1000.0,
                            breaker_open=call.breaker_open)

    def survey(self, targets: Iterable[CrawlTarget]) -> list[CrawlOutcome]:
        """Survey ``targets``, one :class:`CrawlOutcome` each.

        Never raises for network-shaped trouble — failed domains become
        tombstones.  Malformed targets (empty domain, negative rank)
        raise :class:`ValueError`: they are caller bugs, not weather.
        """
        return [self.visit_target(target) for target in targets]

    def survey_records(self,
                       targets: Iterable[CrawlTarget]) -> list[CrawlRecord]:
        """Like :meth:`survey`, keeping only the successful records."""
        return [outcome.record for outcome in self.survey(targets)
                if outcome.record is not None]

    def health(self, outcomes: Iterable[CrawlOutcome]) -> CrawlHealth:
        return crawl_health(outcomes)


def crawl(engine: AdblockEngine,
          targets: Sequence[CrawlTarget],
          **browser_kwargs) -> list[CrawlRecord]:
    """One-shot convenience: survey ``targets`` with ``engine``.

    Returns only the successful records (without an injector every
    target succeeds, so this is the happy-path crawl).
    """
    return Crawler(engine, **browser_kwargs).survey_records(targets)
