"""Deterministic fault injection for the synthetic web.

A production-scale crawl (Section 5 visits ~8,000 domains; the Table 3
zone scan visits millions) sees every failure mode a network has:
resolver loss, connect/read timeouts, 5xx pages, short reads, redirect
loops, tarpit-slow servers, and flaky hosts that succeed only on a
retry.  The paper itself fought hostile servers (Section 4.2.3 —
ParkingCrew's anti-curl 403s, Uniregistry's cookie-redirect dance), and
follow-up crawl studies report large failure tails.

This module injects those failures *deterministically* so the
resilience layer (:mod:`repro.web.resilience`) can be exercised at
scale and every run is reproducible:

* :class:`FaultPlan` decides, per domain, which fault (if any) that
  domain exhibits.  Decisions are pure functions of ``(seed, domain)``
  — independent of visit order — so two runs with the same seed see
  identical fault sequences no matter how the crawl is scheduled.
* :class:`FaultInjector` applies a plan to live traffic: it wraps a
  server :data:`~repro.web.http.Handler` (or a whole resolver) for the
  HTTP path, and wraps browser visits via :meth:`FaultInjector.run`.
  It owns the only mutable state — per-domain flaky countdowns — and a
  :class:`~repro.web.resilience.SimulatedClock` it advances by each
  attempt's latency.

All randomness flows from one injectable ``random.Random`` (or a seed
that creates one): the plan draws a 64-bit salt from it at construction
and derives every per-domain decision by hashing that salt with the
domain name.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, TypeVar

from repro.web.http import (
    ConnectTimeout,
    DnsFailure,
    Handler,
    HttpRequest,
    HttpResponse,
    ReadTimeout,
    ServerFault,
    TooManyRedirects,
    TruncatedBody,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "DEFAULT_FAULT_MIX",
]

_T = TypeVar("_T")


class FaultKind(str, Enum):
    """The failure modes a live crawl sees, per the motivating studies."""

    DNS_FAILURE = "dns"
    CONNECT_TIMEOUT = "connect-timeout"
    READ_TIMEOUT = "read-timeout"
    SERVER_ERROR = "server-error"
    TRUNCATED_BODY = "truncated-body"
    REDIRECT_LOOP = "redirect-loop"
    SLOW_RESPONSE = "slow-response"
    FLAKY = "flaky"


#: Relative weights used by :meth:`FaultPlan.uniform` to split an
#: overall fault rate across kinds (roughly the mix crawl studies
#: report: timeouts and DNS dominate, loops are rare).
DEFAULT_FAULT_MIX: tuple[tuple[FaultKind, float], ...] = (
    (FaultKind.DNS_FAILURE, 3.0),
    (FaultKind.CONNECT_TIMEOUT, 3.0),
    (FaultKind.READ_TIMEOUT, 2.0),
    (FaultKind.SERVER_ERROR, 2.0),
    (FaultKind.TRUNCATED_BODY, 1.0),
    (FaultKind.REDIRECT_LOOP, 0.5),
    (FaultKind.SLOW_RESPONSE, 1.5),
    (FaultKind.FLAKY, 3.0),
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One rule of a fault plan.

    ``rate`` is the probability a matching domain exhibits ``kind``.
    ``domains`` (exact FQD match) and ``group_index`` (the survey's
    sample group) narrow the rule; ``None`` matches everything —
    together they give the per-domain and per-group rates the survey
    needs.  ``flaky_failures`` is how many attempts a FLAKY domain
    fails before succeeding; ``slow_factor`` multiplies base latency
    for SLOW_RESPONSE.
    """

    kind: FaultKind
    rate: float
    domains: frozenset[str] | None = None
    group_index: int | None = None
    flaky_failures: int = 2
    slow_factor: float = 25.0

    def matches(self, domain: str, group_index: int) -> bool:
        if self.domains is not None and domain not in self.domains:
            return False
        if self.group_index is not None and group_index != self.group_index:
            return False
        return True


@dataclass(frozen=True, slots=True)
class Fault:
    """The fault assigned to one domain (resolved from a spec)."""

    kind: FaultKind
    flaky_failures: int = 2
    slow_factor: float = 25.0


#: Base latency band for a simulated visit, seconds.
_LATENCY_FLOOR = 0.05
_LATENCY_SPAN = 0.30

#: Simulated cost of the failure modes, seconds (what a real client
#: would burn before giving up).
_CONNECT_TIMEOUT_S = 3.0
_READ_TIMEOUT_S = 10.0
_DNS_FAILURE_S = 0.02


class FaultPlan:
    """A seeded, order-independent assignment of faults to domains.

    >>> plan = FaultPlan.uniform(0.2, seed=7)
    >>> plan.fault_for("example.com") == plan.fault_for("example.com")
    True
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *,
                 seed: int = 0, rng: random.Random | None = None) -> None:
        rng = rng if rng is not None else random.Random(seed)
        self._salt = rng.getrandbits(64)
        self.specs = tuple(specs)
        for spec in self.specs:
            if not 0.0 <= spec.rate <= 1.0:
                raise ValueError(f"fault rate out of range: {spec.rate}")

    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0,
                rng: random.Random | None = None,
                mix: tuple[tuple[FaultKind, float], ...] = DEFAULT_FAULT_MIX,
                flaky_failures: int = 2,
                slow_factor: float = 25.0) -> "FaultPlan":
        """Spread one overall fault ``rate`` across ``mix``'s kinds."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate out of range: {rate}")
        total = sum(weight for _, weight in mix)
        specs = [FaultSpec(kind=kind, rate=rate * weight / total,
                           flaky_failures=flaky_failures,
                           slow_factor=slow_factor)
                 for kind, weight in mix]
        return cls(specs, seed=seed, rng=rng)

    def _roll(self, domain: str, label: str) -> float:
        """A deterministic uniform [0, 1) draw for (salt, label, domain)."""
        digest = hashlib.sha256(
            f"{self._salt}:{label}:{domain}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def fault_for(self, domain: str, group_index: int = 0) -> Fault | None:
        """The fault ``domain`` exhibits under this plan, if any.

        One deterministic roll per domain is walked through the
        matching specs' rates as cumulative bands, so rates of
        mutually applicable specs are *additive*: a domain matched by
        specs at 0.1 + 0.1 has exactly a 0.2 chance of some fault, and
        a plan whose matching rates sum to 1.0 faults every domain.
        Specs are evaluated in order; if rates sum past 1.0 the later
        ones are shadowed.
        """
        roll = self._roll(domain, "assign")
        for spec in self.specs:
            if not spec.matches(domain, group_index):
                continue
            if roll < spec.rate:
                return Fault(kind=spec.kind,
                             flaky_failures=spec.flaky_failures,
                             slow_factor=spec.slow_factor)
            roll -= spec.rate
        return None

    def latency_for(self, domain: str) -> float:
        """Deterministic base latency (seconds) for one visit attempt."""
        return _LATENCY_FLOOR + _LATENCY_SPAN * self._roll(domain, "latency")


class FaultInjector:
    """Applies a :class:`FaultPlan` to server handlers and browser visits.

    The injector is the only stateful piece: it counts attempts per
    domain so FLAKY faults fail their first ``flaky_failures`` attempts
    and then succeed, and it advances ``clock`` by each attempt's
    simulated latency.  :meth:`reset` restores a fresh crawl.
    """

    def __init__(self, plan: FaultPlan, clock=None) -> None:
        from repro.web.resilience import SimulatedClock

        self.plan = plan
        self.clock = clock if clock is not None else SimulatedClock()
        self._flaky_left: dict[str, int] = {}

    def reset(self) -> None:
        self._flaky_left.clear()

    def fault_for_attempt(self, domain: str,
                          group_index: int = 0) -> Fault | None:
        """The fault (if any) to apply to *this* attempt at ``domain``."""
        fault = self.plan.fault_for(domain, group_index)
        if fault is None:
            return None
        if fault.kind is FaultKind.FLAKY:
            left = self._flaky_left.setdefault(domain,
                                               fault.flaky_failures)
            if left <= 0:
                return None
            self._flaky_left[domain] = left - 1
        return fault

    # -- browser-visit path ---------------------------------------------

    def run(self, domain: str, fn: Callable[[], _T], *,
            group_index: int = 0) -> _T:
        """Run one visit attempt under the plan.

        Raises the taxonomy exception for the domain's fault, or calls
        ``fn`` (possibly slowed).  Failing attempts never call ``fn``,
        so browser state (cookie history) stays identical to a clean
        run once the fault clears — a flaky domain's first *successful*
        visit is still its first visit.
        """
        fault = self.fault_for_attempt(domain, group_index=group_index)
        latency = self.plan.latency_for(domain)
        if fault is None:
            self.clock.advance(latency)
            return fn()
        kind = fault.kind
        if kind is FaultKind.DNS_FAILURE:
            self.clock.advance(_DNS_FAILURE_S)
            raise DnsFailure(f"injected NXDOMAIN for {domain!r}")
        if kind in (FaultKind.CONNECT_TIMEOUT, FaultKind.FLAKY):
            self.clock.advance(_CONNECT_TIMEOUT_S)
            raise ConnectTimeout(f"injected connect timeout for {domain!r}")
        if kind is FaultKind.READ_TIMEOUT:
            self.clock.advance(_READ_TIMEOUT_S)
            raise ReadTimeout(f"injected read timeout for {domain!r}")
        if kind is FaultKind.SERVER_ERROR:
            self.clock.advance(latency)
            raise ServerFault(f"injected HTTP 503 from {domain!r}")
        if kind is FaultKind.TRUNCATED_BODY:
            self.clock.advance(latency)
            raise TruncatedBody(f"injected short read from {domain!r}")
        if kind is FaultKind.REDIRECT_LOOP:
            self.clock.advance(latency)
            url = f"http://{domain}/"
            raise TooManyRedirects(
                f"injected redirect loop at {url}", chain=(url, url))
        # SLOW_RESPONSE: the visit succeeds, just slowly.
        self.clock.advance(latency * fault.slow_factor)
        return fn()

    # -- HTTP path -------------------------------------------------------

    def wrap_handler(self, handler: Handler, domain: str, *,
                     group_index: int = 0) -> Handler:
        """Wrap one server handler so it misbehaves per the plan.

        HTTP-level faults differ from the visit path where a status
        line exists: SERVER_ERROR returns a real 503 response and
        REDIRECT_LOOP returns a self-redirect (which the hardened
        client cuts short), instead of raising synthetically.
        """

        def faulty(request: HttpRequest) -> HttpResponse:
            fault = self.fault_for_attempt(domain,
                                           group_index=group_index)
            latency = self.plan.latency_for(domain)
            if fault is None:
                self.clock.advance(latency)
                return handler(request)
            kind = fault.kind
            if kind is FaultKind.DNS_FAILURE:
                self.clock.advance(_DNS_FAILURE_S)
                raise DnsFailure(f"injected NXDOMAIN for {domain!r}")
            if kind in (FaultKind.CONNECT_TIMEOUT, FaultKind.FLAKY):
                self.clock.advance(_CONNECT_TIMEOUT_S)
                raise ConnectTimeout(
                    f"injected connect timeout for {domain!r}")
            if kind is FaultKind.READ_TIMEOUT:
                self.clock.advance(_READ_TIMEOUT_S)
                raise ReadTimeout(f"injected read timeout for {domain!r}")
            if kind is FaultKind.SERVER_ERROR:
                self.clock.advance(latency)
                return HttpResponse(status=503,
                                    body="injected server error")
            if kind is FaultKind.TRUNCATED_BODY:
                self.clock.advance(latency)
                raise TruncatedBody(
                    f"injected short read from {domain!r}")
            if kind is FaultKind.REDIRECT_LOOP:
                self.clock.advance(latency)
                return HttpResponse(status=302,
                                    redirect_to=str(request.url))
            self.clock.advance(latency * fault.slow_factor)
            return handler(request)

        return faulty

    def wrap_resolver(
        self,
        resolver: Callable[[str], Handler | None],
    ) -> Callable[[str], Handler | None]:
        """Wrap a whole resolver: every resolved host gets a faulty
        handler keyed by its own hostname."""

        def resolve(host: str) -> Handler | None:
            handler = resolver(host)
            if handler is None:
                return None
            return self.wrap_handler(handler, host)

        return resolve
