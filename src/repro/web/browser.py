"""The instrumented browser — our stand-in for Selenium + patched ABP.

The paper instruments Adblock Plus inside a real browser and drives it
with Selenium, recording every filter activation per visited landing
page.  :class:`InstrumentedBrowser` does the same against the synthetic
web: it loads a site's landing page, consults the engine for document
privileges, every subresource request, and element hiding, and returns a
:class:`PageVisit` carrying the full activation log.

Browser state matters (Section 5): cookies change what ask.com serves,
and some sites detect ad blocking.  The browser carries a cookie jar and
models both effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.filters.engine import (
    Activation,
    AdblockEngine,
    RequestDecision,
    Verdict,
)
from repro.web.dom import Element
from repro.web.sites import BuiltPage, SiteProfile, build_page
from repro.web.url import parse_url

__all__ = ["PageVisit", "InstrumentedBrowser"]


@dataclass(slots=True)
class PageVisit:
    """Everything recorded while loading one landing page."""

    domain: str
    page_url: str
    decisions: list[RequestDecision] = field(default_factory=list)
    hidden: list[Element] = field(default_factory=list)
    activations: list[Activation] = field(default_factory=list)

    @property
    def blocked_count(self) -> int:
        return sum(1 for d in self.decisions if d.verdict is Verdict.BLOCK)

    @property
    def allowed_count(self) -> int:
        return sum(1 for d in self.decisions if d.verdict is Verdict.ALLOW)

    def activations_from(self, list_name: str) -> list[Activation]:
        return [a for a in self.activations if a.list_name == list_name]

    @property
    def whitelist_activations(self) -> list[Activation]:
        return [a for a in self.activations if a.is_exception]

    @property
    def distinct_filters(self) -> set[str]:
        return {a.filter_text for a in self.activations}

    @property
    def distinct_whitelist_filters(self) -> set[str]:
        return {a.filter_text for a in self.whitelist_activations}


class InstrumentedBrowser:
    """A browser bound to an :class:`AdblockEngine` and a page source.

    ``page_source`` maps a :class:`SiteProfile` (plus browser state) to a
    :class:`BuiltPage`; the default is :func:`repro.web.sites.build_page`.
    ``sitekey_provider`` optionally supplies the *verified* sitekey a
    page's server presented (the verification itself lives in
    :mod:`repro.sitekey.protocol`; by the time the engine sees a key the
    signature has been checked).
    """

    def __init__(
        self,
        engine: AdblockEngine,
        *,
        page_source: Callable[..., BuiltPage] | None = None,
        sitekey_provider: Callable[[str], str | None] | None = None,
    ) -> None:
        self.engine = engine
        self._page_source = page_source or build_page
        self._sitekey_provider = sitekey_provider
        self._visited_domains: set[str] = set()
        self.engine.recording = True

    def visit(self, profile: SiteProfile) -> PageVisit:
        """Load ``profile``'s landing page and record all activations."""
        has_cookies = profile.domain in self._visited_domains
        self._visited_domains.add(profile.domain)

        page = self._page_source(
            profile,
            has_cookies=has_cookies,
            adblock_visible=profile.adblock_detecting,
        )
        page_url = page.document.url
        page_host = parse_url(page_url).host

        self.engine.clear_activations()
        sitekey = None
        if self._sitekey_provider is not None:
            sitekey = self._sitekey_provider(profile.domain)

        privileges = self.engine.document_privileges(
            page_url, page_host, sitekey=sitekey)

        visit = PageVisit(domain=profile.domain, page_url=page_url)
        for request in page.requests:
            request_host = parse_url(request.url).host
            decision = self.engine.check_request(
                request.url,
                request.content_type,
                page_host,
                request_host,
                privileges=privileges,
                sitekey=sitekey,
            )
            visit.decisions.append(decision)

        visit.hidden = self.engine.hidden_elements(
            page.document.all_elements(), page_host, privileges=privileges)
        visit.activations = list(self.engine.activations)
        self.engine.clear_activations()
        return visit

    def reset_state(self) -> None:
        """Forget cookies/visit history (a fresh browser profile)."""
        self._visited_domains.clear()
