"""A minimal DOM for the synthetic web substrate.

Element-hiding filters match page elements by tag, id, class, and
attributes (Section 2.1.2), so the DOM model carries exactly those,
plus parent links for combinator matching and an ``ad_label`` marker the
site generator uses to tag which elements are advertisements (ground
truth for the perception study and for "did the ad actually render"
checks in the survey).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Element", "Document"]


@dataclass(eq=False)
class Element:
    """One DOM element.

    ``attributes`` maps attribute name to value; ``class`` and ``id`` are
    stored there too (``classes`` and convenience accessors derive from
    it).  Equality is identity — two structurally identical elements in
    different spots of the tree are different nodes.
    """

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["Element"] = field(default_factory=list)
    parent: "Element | None" = None
    text: str = ""
    ad_label: str | None = None  # ground-truth: which ad this element renders

    @property
    def classes(self) -> frozenset[str]:
        return frozenset(self.attributes.get("class", "").split())

    @property
    def element_id(self) -> str | None:
        return self.attributes.get("id")

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.attributes.get(name, default)

    def append(self, child: "Element") -> "Element":
        """Attach ``child`` and return it (builder convenience)."""
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, tag: str, **attributes: str) -> "Element":
        """Create, attach, and return a child element."""
        attrs = {k.rstrip("_").replace("_", "-"): v
                 for k, v in attributes.items()}
        return self.append(Element(tag=tag, attributes=attrs))

    def iter(self) -> Iterator["Element"]:
        """Depth-first traversal including self."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find_by_id(self, element_id: str) -> "Element | None":
        for el in self.iter():
            if el.element_id == element_id:
                return el
        return None

    def find_by_class(self, class_name: str) -> list["Element"]:
        return [el for el in self.iter() if class_name in el.classes]

    def find_by_tag(self, tag: str) -> list["Element"]:
        tag = tag.lower()
        return [el for el in self.iter() if el.tag == tag]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.element_id}" if self.element_id else ""
        cls = "." + ".".join(sorted(self.classes)) if self.classes else ""
        return f"<Element {self.tag}{ident}{cls}>"


@dataclass(eq=False)
class Document:
    """A page's DOM: a root ``html`` element plus the page URL."""

    url: str
    root: Element = field(default_factory=lambda: Element(tag="html"))

    def __post_init__(self) -> None:
        if not self.root.children:
            self.root.new_child("head")
            self.root.new_child("body")

    @property
    def head(self) -> Element:
        return self.root.children[0]

    @property
    def body(self) -> Element:
        return self.root.children[1]

    def all_elements(self) -> list[Element]:
        return list(self.root.iter())

    def ad_elements(self) -> list[Element]:
        """Elements carrying ground-truth ad labels."""
        return [el for el in self.root.iter() if el.ad_label is not None]
