"""Blockable Items — Section 8's fourth recommendation, implemented.

The paper notes that Firefox's Adblock Plus had a "Blockable Items"
toolbar showing every page object with the filters it triggered and the
list each filter came from, and recommends all versions adopt it so
users can see *what was allowed and why*.  This module builds exactly
that report from an instrumented :class:`~repro.web.browser.PageVisit`.

Each item is one page object (request or element) annotated with:

* its final disposition — blocked / allowed-by-exception / untouched /
  hidden / unhidden-by-exception;
* every filter that matched it, with its source list;
* whether an allowing exception was *needless* (nothing would have
  blocked the object anyway — the gstatic case).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.filters.engine import Activation
from repro.web.browser import PageVisit

__all__ = ["Disposition", "BlockableItem", "blockable_items",
           "render_blockable_items"]


class Disposition(enum.Enum):
    """The final fate of one page object."""

    BLOCKED = "blocked"
    ALLOWED = "allowed"        # an exception overrode blocking
    NEEDLESSLY_ALLOWED = "needlessly-allowed"
    HIDDEN = "hidden"
    UNHIDDEN = "unhidden"      # element exception overrode hiding
    UNTOUCHED = "untouched"


@dataclass(frozen=True)
class BlockableItem:
    """One row of the Blockable Items panel."""

    target: str                   # URL or selector
    kind: str                     # "request" | "element" | "document"
    disposition: Disposition
    filters: tuple[tuple[str, str], ...]   # (list name, filter text)

    @property
    def blocking_filters(self) -> list[str]:
        return [text for _, text in self.filters
                if not text.startswith(("@@",))
                and "#@#" not in text]

    @property
    def exception_filters(self) -> list[str]:
        return [text for _, text in self.filters
                if text.startswith("@@") or "#@#" in text]


def _disposition(activations: list[Activation]) -> Disposition:
    exceptions = [a for a in activations if a.is_exception]
    blocking = [a for a in activations if not a.is_exception]
    kind = activations[0].kind
    if kind == "element":
        if exceptions:
            return Disposition.UNHIDDEN
        return Disposition.HIDDEN
    if exceptions:
        if all(a.needless for a in exceptions) and not blocking:
            return Disposition.NEEDLESSLY_ALLOWED
        return Disposition.ALLOWED
    if blocking:
        return Disposition.BLOCKED
    return Disposition.UNTOUCHED


def blockable_items(visit: PageVisit) -> list[BlockableItem]:
    """Build the Blockable Items report for one page visit.

    Objects that matched no filter at all are not listed (the real
    toolbar lists them with no filter; the survey's interesting rows
    are the matched ones, and untouched requests are recoverable from
    ``visit.decisions``).
    """
    grouped: dict[tuple[str, str], list[Activation]] = defaultdict(list)
    for activation in visit.activations:
        grouped[(activation.kind, activation.target)].append(activation)

    items: list[BlockableItem] = []
    for (kind, target), activations in grouped.items():
        filters = tuple(dict.fromkeys(
            (a.list_name, a.filter_text) for a in activations))
        items.append(BlockableItem(
            target=target,
            kind=kind,
            disposition=_disposition(activations),
            filters=filters,
        ))
    items.sort(key=lambda item: (item.kind, item.target))
    return items


def render_blockable_items(visit: PageVisit, *, width: int = 66) -> str:
    """Render the panel as text (the CLI / example surface)."""
    lines = [f"Blockable items — {visit.page_url}"]
    items = blockable_items(visit)
    if not items:
        lines.append("  (no filters matched on this page)")
        return "\n".join(lines)
    for item in items:
        target = (item.target if len(item.target) <= width
                  else item.target[:width - 3] + "...")
        lines.append(f"  [{item.disposition.value:>18}] {target}")
        for list_name, text in item.filters:
            shown = text if len(text) <= width else text[:width - 3] + "..."
            lines.append(f"      {list_name}: {shown}")
    counts = defaultdict(int)
    for item in items:
        counts[item.disposition] += 1
    summary = ", ".join(f"{n} {d.value}" for d, n in sorted(
        counts.items(), key=lambda kv: kv[0].value))
    lines.append(f"  -- {summary}")
    return "\n".join(lines)
