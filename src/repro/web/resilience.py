"""Retry, timeout-budget, and circuit-breaker machinery for the crawl.

The Section 5 survey and the Table 3 zone scan both hammer thousands of
hosts; at that scale failures are the norm, not the exception.  This
module is the composable resilience layer every fetch and browser visit
routes through:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic seeded jitter, gated by an error-class predicate;
* :class:`Deadline` — a per-call simulated-time budget;
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine, one per registered domain (:class:`BreakerRegistry`), so a
  host that keeps failing stops eating retry budget;
* :func:`execute_with_policy` — the retry loop itself, shared by the
  crawler and :class:`ResilientClient`;
* :class:`ResilientClient` — an :class:`~repro.web.http.HttpClient`
  wrapper returning :class:`FetchOutcome` instead of raising.

Time is simulated (:class:`SimulatedClock`): backoff sleeps and injected
latencies advance a deterministic clock, so a million-visit crawl with
ten-second read timeouts still *runs* in milliseconds and two runs with
the same seed produce identical latency figures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generic, TypeVar

from repro.obs import OBS
from repro.web.http import HttpClient, HttpResponse, ServerFault
from repro.web.url import URL, parse_url, registered_domain

__all__ = [
    "SimulatedClock",
    "OutcomeStatus",
    "classify_error",
    "RetryPolicy",
    "Deadline",
    "BreakerState",
    "CircuitBreaker",
    "BreakerRegistry",
    "CallOutcome",
    "execute_with_policy",
    "FetchOutcome",
    "ResilientClient",
    "DEFAULT_RETRYABLE_CLASSES",
]

_T = TypeVar("_T")


class SimulatedClock:
    """A deterministic monotonic clock the whole pipeline shares."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds

    def rewind(self, to: float = 0.0) -> None:
        """Reset the clock to an absolute position.

        Elapsed times are float *differences*, and ``(t + d) - t`` only
        equals ``d`` exactly when ``t`` is the same — so shared-nothing
        execution (:mod:`repro.parallel`) rewinds to zero before every
        unit to make each unit's latencies independent of how much
        simulated time earlier units on the same worker consumed.
        """
        self._now = float(to)

    #: Backoff code calls ``sleep``; on a simulated clock it just advances.
    sleep = advance


class OutcomeStatus(Enum):
    """How one resilient call ended."""

    SUCCESS = "success"     # first attempt succeeded
    DEGRADED = "degraded"   # succeeded, but only after retries
    FAILED = "failed"       # every attempt failed (tombstone)


def classify_error(exc: BaseException) -> str:
    """Map an exception to its error-class label.

    Taxonomy exceptions carry ``error_class`` themselves; anything else
    is bucketed coarsely so the crawl-health table never loses a
    failure to an unlabeled exception.
    """
    label = getattr(exc, "error_class", None)
    if label:
        return label
    if isinstance(exc, ValueError):
        return "invalid-target"
    return "unexpected"


#: Transient classes worth retrying; config errors (redirect loops,
#: invalid targets) fail fast.
DEFAULT_RETRYABLE_CLASSES = frozenset({
    "dns",
    "connect-timeout",
    "read-timeout",
    "server-error",
    "truncated-body",
    "transport",
})


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter."""

    max_attempts: int = 3
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.25
    retryable_classes: frozenset[str] = DEFAULT_RETRYABLE_CLASSES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def is_retryable(self, error_class: str) -> bool:
        return error_class in self.retryable_classes

    def backoff_delay(self, attempt: int,
                      rng: random.Random | None = None) -> float:
        """Delay before attempt ``attempt + 1`` (``attempt`` is 1-based).

        Jitter is a symmetric +/- ``jitter`` fraction drawn from ``rng``
        — pass the pipeline's seeded ``random.Random`` to keep runs
        reproducible.
        """
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(slots=True)
class Deadline:
    """A wall-clock budget for one call, on the simulated clock."""

    clock: SimulatedClock
    expires_at: float

    @classmethod
    def after(cls, clock: SimulatedClock, budget: float) -> "Deadline":
        return cls(clock=clock, expires_at=clock.now() + budget)

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed / open / half-open breaker for one domain.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``cooldown`` simulated seconds one probe is let through
    (half-open).  A successful probe closes the circuit, a failed one
    re-opens it for another cooldown.
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.open_count = 0      # times the circuit tripped (telemetry)

    def allow(self, now: float) -> bool:
        """May a call proceed at simulated time ``now``?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                if OBS.enabled:
                    OBS.registry.counter("web.breaker.transitions",
                                         to="half-open").inc()
                return True
            return False
        # HALF_OPEN: one probe is already in flight per allow() call;
        # further calls wait for its verdict.
        return False

    def record_success(self) -> None:
        if self.state is not BreakerState.CLOSED and OBS.enabled:
            OBS.registry.counter("web.breaker.transitions",
                                 to="closed").inc()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.open_count += 1
        self.consecutive_failures = 0
        if OBS.enabled:
            OBS.registry.counter("web.breaker.transitions",
                                 to="open").inc()


class BreakerRegistry:
    """Per-domain breakers, created lazily with shared parameters."""

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 30.0) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, domain: str) -> CircuitBreaker:
        key = registered_domain(domain)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.failure_threshold, self.cooldown)
            self._breakers[key] = breaker
        return breaker

    def open_count(self) -> int:
        return sum(b.open_count for b in self._breakers.values())

    def states(self) -> dict[str, BreakerState]:
        return {domain: b.state for domain, b in self._breakers.items()}


@dataclass(slots=True)
class CallOutcome(Generic[_T]):
    """Result of :func:`execute_with_policy` — success or tombstone."""

    value: _T | None
    status: OutcomeStatus
    attempts: int
    #: Last failure's class; set even for DEGRADED outcomes (the fault
    #: the call recovered from), ``None`` for clean successes.
    error_class: str | None
    elapsed: float
    breaker_open: bool = False


def execute_with_policy(
    attempt_fn: Callable[[int], _T],
    *,
    policy: RetryPolicy,
    clock: SimulatedClock,
    rng: random.Random | None = None,
    breaker: CircuitBreaker | None = None,
    deadline: Deadline | None = None,
    classify: Callable[[BaseException], str] = classify_error,
) -> CallOutcome[_T]:
    """The shared retry loop: attempts, backoff, breaker, deadline.

    ``attempt_fn`` receives the 1-based attempt number and either
    returns a value or raises.  The loop never re-raises — every path
    ends in a :class:`CallOutcome`, which is what lets the crawler emit
    tombstones instead of dying mid-survey.
    """
    start = clock.now()
    if breaker is not None and not breaker.allow(clock.now()):
        return CallOutcome(value=None, status=OutcomeStatus.FAILED,
                           attempts=0, error_class="circuit-open",
                           elapsed=0.0, breaker_open=True)
    attempts = 0
    last_error: str | None = None
    while True:
        attempts += 1
        try:
            value = attempt_fn(attempts)
        except Exception as exc:
            last_error = classify(exc)
            if breaker is not None:
                breaker.record_failure(clock.now())
            out_of_attempts = attempts >= policy.max_attempts
            if out_of_attempts or not policy.is_retryable(last_error):
                return CallOutcome(value=None,
                                   status=OutcomeStatus.FAILED,
                                   attempts=attempts,
                                   error_class=last_error,
                                   elapsed=clock.now() - start)
            if deadline is not None and deadline.expired:
                return CallOutcome(value=None,
                                   status=OutcomeStatus.FAILED,
                                   attempts=attempts,
                                   error_class="deadline-exceeded",
                                   elapsed=clock.now() - start)
            delay = policy.backoff_delay(attempts, rng)
            if OBS.enabled:
                reg = OBS.registry
                reg.counter("web.retry.backoff_sleeps").inc()
                reg.counter("web.retry.failures",
                            error_class=last_error).inc()
                reg.histogram("web.retry.backoff_delay_ms").observe(
                    delay * 1000.0)
            clock.sleep(delay)
            continue
        if breaker is not None:
            breaker.record_success()
        status = (OutcomeStatus.SUCCESS if attempts == 1
                  else OutcomeStatus.DEGRADED)
        return CallOutcome(value=value, status=status, attempts=attempts,
                           error_class=last_error,
                           elapsed=clock.now() - start)


@dataclass(slots=True)
class FetchOutcome:
    """One resilient HTTP fetch: response or tombstone, never a raise."""

    url: str
    response: HttpResponse | None
    status: OutcomeStatus
    attempts: int
    error_class: str | None
    elapsed: float
    breaker_open: bool = False

    @property
    def ok(self) -> bool:
        return self.response is not None and self.response.ok


class ResilientClient:
    """Retry/backoff/breaker wrapper around :class:`HttpClient`.

    5xx responses count as retryable failures (raised internally as
    :class:`ServerFault`); 4xx responses are returned as-is — they are
    the server's answer, not a transport loss.  ``get`` never raises
    for network-shaped trouble: it returns a :class:`FetchOutcome`
    tombstone so scanners can count what they lost.
    """

    def __init__(
        self,
        client: HttpClient,
        *,
        policy: RetryPolicy | None = None,
        clock: SimulatedClock | None = None,
        rng: random.Random | None = None,
        breakers: BreakerRegistry | None = None,
        deadline_budget: float | None = None,
    ) -> None:
        self.client = client
        self.policy = policy or RetryPolicy()
        self.clock = clock or SimulatedClock()
        self.rng = rng
        self.breakers = breakers or BreakerRegistry()
        self.deadline_budget = deadline_budget

    def get(self, url: str | URL, **kwargs) -> FetchOutcome:
        target = parse_url(url) if isinstance(url, str) else url
        breaker = self.breakers.get(target.host)
        deadline = (Deadline.after(self.clock, self.deadline_budget)
                    if self.deadline_budget is not None else None)

        def attempt(_n: int) -> HttpResponse:
            response = self.client.get(target, **kwargs)
            if 500 <= response.status < 600:
                raise ServerFault(
                    f"HTTP {response.status} from {target.host}")
            return response

        outcome = execute_with_policy(
            attempt, policy=self.policy, clock=self.clock, rng=self.rng,
            breaker=breaker, deadline=deadline)
        return FetchOutcome(url=str(target), response=outcome.value,
                            status=outcome.status,
                            attempts=outcome.attempts,
                            error_class=outcome.error_class,
                            elapsed=outcome.elapsed,
                            breaker_open=outcome.breaker_open)
