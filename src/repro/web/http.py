"""Simulated HTTP layer: requests, responses, and server behaviours.

The site survey and the parked-domain scan both interact with servers
whose behaviour depends on request details the paper calls out
explicitly (Section 4.2.3):

* ParkingCrew domains return **403** when the ``User-Agent`` looks like
  ``curl`` (anti-scraping);
* Uniregistry domains require a cookie round-trip: the first visit sets a
  cookie and redirects; only the second request (carrying the cookie)
  returns the ad page with the sitekey signature;
* sitekey-presenting servers return the key and signature in the
  ``X-Adblock-Key`` response header and the ``data-adblockkey`` page
  attribute.

The classes here model just enough of HTTP for those behaviours: header
multimaps are avoided (single-valued dicts with case-insensitive keys),
cookies are a flat jar per client, and redirects are explicit status
codes the client loop follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.web.url import URL, parse_url

__all__ = [
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "CookieJar",
    "HttpClient",
    "HttpError",
    "TransportError",
    "DnsFailure",
    "ConnectTimeout",
    "ReadTimeout",
    "TruncatedBody",
    "ServerFault",
    "TooManyRedirects",
    "DEFAULT_USER_AGENT",
    "CURL_USER_AGENT",
]

DEFAULT_USER_AGENT = ("Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 "
                      "(KHTML, like Gecko) Chrome/42.0 Safari/537.36")
CURL_USER_AGENT = "curl/7.35.0"

_MAX_REDIRECTS = 10


class HttpError(RuntimeError):
    """Raised for transport-level failures (unknown host, no handler).

    Every subclass carries an ``error_class`` label — the taxonomy the
    resilience layer (:mod:`repro.web.resilience`) keys its retryable
    predicate and the crawl-health tables on.
    """

    error_class = "transport"


class TransportError(HttpError):
    """Base class for the injectable network-level failure modes."""


class DnsFailure(TransportError):
    """The hostname did not resolve (NXDOMAIN / resolver loss)."""

    error_class = "dns"


class ConnectTimeout(TransportError):
    """The TCP connection could not be established in time."""

    error_class = "connect-timeout"


class ReadTimeout(TransportError):
    """The server accepted the connection but never finished the body."""

    error_class = "read-timeout"


class TruncatedBody(TransportError):
    """The connection dropped mid-body (short read)."""

    error_class = "truncated-body"


class ServerFault(TransportError):
    """A 5xx-class server failure surfaced as an exception.

    The simulated HTTP layer returns 5xx as ordinary responses; the
    resilient wrappers (and the browser-visit fault path, which has no
    status codes) raise this instead so retry logic sees one taxonomy.
    """

    error_class = "server-error"


class TooManyRedirects(HttpError):
    """The redirect chain exceeded the client's limit or looped.

    ``chain`` holds every URL visited, in order, ending with the first
    repeated (or limit-exceeding) hop.
    """

    error_class = "redirect-loop"

    def __init__(self, message: str, chain: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.chain = chain


class Headers:
    """A case-insensitive single-valued header map."""

    def __init__(self, items: Iterable[tuple[str, str]] = ()) -> None:
        self._data: dict[str, tuple[str, str]] = {}
        for name, value in items:
            self.set(name, value)

    def set(self, name: str, value: str) -> None:
        self._data[name.lower()] = (name, value)

    def get(self, name: str, default: str | None = None) -> str | None:
        entry = self._data.get(name.lower())
        return entry[1] if entry else default

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._data

    def __iter__(self):
        return iter(value for value in self._data.values())

    def items(self) -> list[tuple[str, str]]:
        return list(self._data.values())

    def copy(self) -> "Headers":
        return Headers(self.items())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Headers({self.items()!r})"


@dataclass(slots=True)
class HttpRequest:
    """One simulated HTTP request."""

    url: URL
    method: str = "GET"
    headers: Headers = field(default_factory=Headers)
    cookies: dict[str, str] = field(default_factory=dict)

    @property
    def user_agent(self) -> str:
        return self.headers.get("User-Agent", "")


@dataclass(slots=True)
class HttpResponse:
    """One simulated HTTP response.

    ``body`` is the page object for document requests (a
    :class:`repro.web.dom.Document`) or an opaque string for subresources;
    ``set_cookies`` is applied to the client jar; ``redirect_to`` (with a
    3xx status) sends the client elsewhere.
    """

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: object = ""
    set_cookies: dict[str, str] = field(default_factory=dict)
    redirect_to: str | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def adblock_key_header(self) -> str | None:
        """The ``X-Adblock-Key`` value: ``<base64 key>_<base64 sig>``."""
        return self.headers.get("X-Adblock-Key")


class CookieJar:
    """Per-client cookie storage, scoped by registered domain."""

    def __init__(self) -> None:
        self._by_domain: dict[str, dict[str, str]] = {}

    def for_host(self, host: str) -> dict[str, str]:
        from repro.web.url import registered_domain

        return dict(self._by_domain.get(registered_domain(host), {}))

    def store(self, host: str, cookies: dict[str, str]) -> None:
        from repro.web.url import registered_domain

        if not cookies:
            return
        self._by_domain.setdefault(registered_domain(host), {}).update(cookies)

    def clear(self) -> None:
        self._by_domain.clear()


#: A server handler: request -> response.
Handler = Callable[[HttpRequest], HttpResponse]


class HttpClient:
    """A simulated HTTP client bound to a resolver of host -> handler.

    ``resolver`` plays DNS + network: given a hostname it returns the
    server handler, or ``None`` for unknown hosts (NXDOMAIN).  The client
    follows redirects (up to ``max_redirects``) and carries cookies —
    both behaviours the parked-domain scan depends on.
    """

    def __init__(
        self,
        resolver: Callable[[str], Handler | None],
        user_agent: str = DEFAULT_USER_AGENT,
        max_redirects: int = _MAX_REDIRECTS,
    ) -> None:
        self._resolver = resolver
        self.user_agent = user_agent
        self.max_redirects = max_redirects
        self.jar = CookieJar()

    def get(self, url: str | URL, *,
            extra_headers: Iterable[tuple[str, str]] = ()) -> HttpResponse:
        """GET ``url``, following redirects, storing cookies.

        Raises :class:`HttpError` when the host does not resolve and
        :class:`TooManyRedirects` when the chain exceeds
        ``max_redirects`` or revisits a URL without any cookie change —
        a self-redirect that sets no new state can never terminate, so
        it is cut short rather than burning the whole redirect budget.
        """
        target = parse_url(url) if isinstance(url, str) else url
        chain: list[str] = [str(target)]
        # States already served: (url, cookie snapshot for its host).
        # A redirect that lands on a previously seen state is a loop —
        # the server will answer identically forever.
        seen_states: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
        for _ in range(self.max_redirects + 1):
            cookies = self.jar.for_host(target.host)
            state = (str(target), tuple(sorted(cookies.items())))
            if state in seen_states:
                raise TooManyRedirects(
                    "redirect loop detected (revisited "
                    f"{target} with unchanged cookies): "
                    + " -> ".join(chain),
                    chain=tuple(chain))
            seen_states.add(state)
            handler = self._resolver(target.host)
            if handler is None:
                raise DnsFailure(f"cannot resolve host {target.host!r}")
            headers = Headers([("User-Agent", self.user_agent),
                               ("Host", target.host)])
            for name, value in extra_headers:
                headers.set(name, value)
            request = HttpRequest(url=target, headers=headers,
                                  cookies=cookies)
            response = handler(request)
            self.jar.store(target.host, response.set_cookies)
            if 300 <= response.status < 400 and response.redirect_to:
                target = parse_url(response.redirect_to)
                chain.append(str(target))
                continue
            return response
        raise TooManyRedirects(
            f"redirect limit ({self.max_redirects}) exceeded: "
            + " -> ".join(chain),
            chain=tuple(chain))
