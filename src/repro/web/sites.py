"""Synthetic site generation: profiles and page synthesis.

Every surveyed domain has a :class:`SiteProfile` describing its ad stack:
which catalog networks it deploys, which first-party ad elements it
embeds, whether it participates in the Acceptable Ads program as an
explicitly whitelisted publisher (and with which *restricted* filters),
and quirky behaviours the paper observed — ask.com showing more ads
without cookies, imgur.com swapping ads when it detects Adblock Plus.

:func:`build_page` turns a profile into a concrete page: a DOM document
plus the list of subresource requests the browser will issue.  The
randomness is a per-domain deterministic stream, so repeated visits to
the same domain yield the same page unless browser state (cookies,
detected-adblock) differs — which is precisely the instability the
paper reports.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.filters.options import ContentType
from repro.web.adnetworks import NETWORK_CATALOG, network
from repro.web.dom import Document

__all__ = [
    "PageRequest",
    "SiteProfile",
    "BuiltPage",
    "build_page",
    "profile_for_domain",
    "PINNED_PROFILES",
    "pinned_profile",
    "INERT_FRACTION",
    "AD_LIGHT_FRACTION",
]

#: Fraction of surveyed sites that trigger no filters at all — the
#: paper's 1,044 of 5,000 (non-English sites outside EasyList's purview,
#: or sites needing interaction before any ad loads).
INERT_FRACTION = 0.2088

#: Fraction of ad-bearing sites that use no whitelisted trackers (only
#: blocked-only networks); calibrates the 59%-of-top-5K headline.
AD_LIGHT_FRACTION = 0.239


@dataclass(frozen=True, slots=True)
class PageRequest:
    """One subresource request a page will issue when loaded."""

    url: str
    content_type: ContentType
    network: str = ""


@dataclass(slots=True)
class SiteProfile:
    """The ad/tracking configuration of one domain."""

    domain: str
    rank: int
    category: str = "general"
    networks: list[str] = field(default_factory=list)
    #: Restricted whitelist filters this publisher negotiated with Eyeo
    #: (empty for non-participants).  These exact texts also appear in
    #: the generated whitelist.
    whitelist_filters: tuple[str, ...] = ()
    #: First-party ad elements: (tag, attr, value, ad_label).
    first_party_ads: tuple[tuple[str, str, str, str], ...] = ()
    #: Extra multiplier on per-resource repeat counts (heavy ad pages).
    ad_intensity: float = 1.0
    inert: bool = False
    cookie_sensitive: bool = False   # more ads without cookies (ask.com)
    adblock_detecting: bool = False  # swaps ads when ABP present (imgur)

    @property
    def is_whitelisted_publisher(self) -> bool:
        return bool(self.whitelist_filters)


@dataclass(slots=True)
class BuiltPage:
    """A synthesised page: the DOM plus its subresource requests."""

    document: Document
    requests: list[PageRequest]
    profile: SiteProfile


# ---------------------------------------------------------------------------
# Pinned publisher profiles — the domains the paper names.  Their
# restricted whitelist filters are included verbatim in the generated
# whitelist (history.generator imports PINNED_PROFILES).
# ---------------------------------------------------------------------------

def _profiles() -> dict[str, SiteProfile]:
    profiles = [
        SiteProfile(
            domain="reddit.com", rank=31, category="social",
            networks=["adzerk", "doubleclick-conversion", "gstatic"],
            whitelist_filters=(
                "reddit.com#@##ad_main",
                "@@||adzerk.net/reddit/$subdocument,document,"
                "domain=reddit.com",
                "@@||static.adzerk.net^$third-party,domain=reddit.com",
            ),
            first_party_ads=(
                ("div", "id", "siteTable_organic", "reddit-sponsored-link"),
            ),
        ),
        SiteProfile(
            domain="google.com", rank=1, category="search",
            networks=["gstatic"],
            whitelist_filters=(
                "@@||google.com/ads/search/module/ads/*/search.js"
                "$script,domain=google.com",
                "@@||google.com/afs/$script,subdocument,domain=google.com",
                "@@||googleadservices.com^$third-party,domain=google.com",
            ),
            first_party_ads=(
                ("div", "class", "ads-ad", "google-search-ad"),
                ("div", "id", "tads", "google-top-ads"),
            ),
        ),
        SiteProfile(
            domain="youtube.com", rank=3, category="video",
            # Not explicitly whitelisted, yet activates unrestricted
            # whitelist filters — one of Figure 6's 12 such domains.
            networks=["doubleclick-conversion", "gstatic",
                      "doubleclick-pagead"],
        ),
        SiteProfile(
            domain="ask.com", rank=38, category="search",
            networks=["adsense-for-search", "gstatic",
                      "google-adservices"],
            whitelist_filters=(
                "@@||ask.com^$elemhide",
                "@@||us.ask.com^$elemhide",
                "@@||uk.ask.com^$elemhide",
                "@@||google.com/adsense/search/ads.js$domain=ask.com",
            ),
            first_party_ads=(
                ("div", "class", "ad-listing", "ask-search-ads"),
            ),
            cookie_sensitive=True,
            ad_intensity=2.0,
        ),
        SiteProfile(
            domain="about.com", rank=49, category="reference",
            networks=["google-adservices", "doubleclick-pagead", "gstatic"],
            whitelist_filters=(
                "@@||about.com^$elemhide",
                "@@||google.com/adsense/search/ads.js$domain=about.com",
                "@@||z.about.com/m/a08.js$script,domain=about.com",
            ),
            ad_intensity=1.6,
        ),
        SiteProfile(
            domain="walmart.com", rank=45, category="shopping",
            networks=["doubleclick-conversion", "google-adservices",
                      "bing-conversion", "criteo"],
            whitelist_filters=(
                "@@||walmart.com/catalog/ad.js$script,domain=walmart.com",
                "@@||i5.walmartimages.com/dfw/ads/$image,domain=walmart.com",
            ),
            first_party_ads=(
                ("div", "class", "wm-sponsored", "walmart-sponsored"),
            ),
        ),
        SiteProfile(
            domain="toyota.com", rank=1916, category="shopping",
            # The survey's most-activating site: 83 total matches across
            # 8 distinct filters (Section 5.1).
            networks=["doubleclick-conversion", "google-adservices",
                      "gstatic", "googlesyndication", "bing-conversion",
                      "facebook-conversion", "criteo", "adroll"],
            ad_intensity=8.6,
        ),
        SiteProfile(
            domain="imgur.com", rank=36, category="viral",
            networks=["doubleclick-conversion", "gstatic"],
            whitelist_filters=(
                "@@||imgur.com/ads.js$script,domain=imgur.com",
            ),
            adblock_detecting=True,
            first_party_ads=(
                ("div", "class", "promoted-hover", "imgur-promoted"),
            ),
        ),
        SiteProfile(
            domain="cracked.com", rank=731, category="humor",
            networks=["doubleclick-pagead", "google-adservices",
                      "outbrain"],
            whitelist_filters=(
                "@@||cracked.com/ads/topbar.js$script,domain=cracked.com",
            ),
            first_party_ads=(
                ("div", "id", "topbar-ad", "cracked-top-bar"),
            ),
        ),
        SiteProfile(
            domain="viralnova.com", rank=882, category="viral",
            networks=["taboola", "outbrain", "doubleclick-conversion"],
            whitelist_filters=(
                "@@||viralnova.com/grid/sponsored/$image,"
                "domain=viralnova.com",
            ),
            first_party_ads=(
                ("div", "class", "grid-item sponsored", "viralnova-grid"),
            ),
            ad_intensity=1.8,
        ),
        SiteProfile(
            domain="utopia-game.com", rank=24813, category="games",
            networks=["generic-banner"],
            whitelist_filters=(
                "@@||utopia-game.com/shared/adbar.gif$image,"
                "domain=utopia-game.com",
            ),
            first_party_ads=(
                ("img", "class", "nav-adbar", "utopia-nav-bar-ad"),
            ),
        ),
        SiteProfile(
            domain="isitup.org", rank=91243, category="webservice",
            networks=[],
            whitelist_filters=(
                "@@||isitup.org/static/sponsor.png$image,domain=isitup.org",
            ),
            first_party_ads=(
                ("img", "id", "sponsor", "isitup-sponsor"),
            ),
        ),
        SiteProfile(
            domain="amazon.com", rank=5, category="shopping",
            networks=["amazon-adsystem", "doubleclick-conversion"],
            whitelist_filters=(
                "@@||amazon.com/gp/product/ads/$subdocument,"
                "domain=amazon.com",
            ),
        ),
        SiteProfile(
            domain="bing.com", rank=22, category="search",
            networks=["bing-conversion", "gstatic"],
            whitelist_filters=(
                "@@||bing.com/sa/ads.js$script,domain=bing.com",
                "@@||bat.bing.com^$domain=bing.com",
            ),
            first_party_ads=(
                ("div", "class", "sb_ad", "bing-search-ad"),
            ),
        ),
        SiteProfile(
            domain="yahoo.com", rank=4, category="search",
            networks=["yahoo-gemini", "doubleclick-conversion", "gstatic"],
            whitelist_filters=(
                "@@||gemini.yahoo.com^$domain=yahoo.com",
            ),
        ),
        SiteProfile(
            domain="sina.com.cn", rank=13, category="news",
            # Elided from Figure 6 "for ease of presentation" because its
            # match count dwarfs the rest.
            networks=["generic-banner", "doubleclick-conversion",
                      "openx", "rubicon", "pubmatic", "zedo"],
            ad_intensity=14.0,
        ),
        SiteProfile(
            domain="comcast.net", rank=212, category="isp",
            networks=["adsense-for-search", "doubleclick-conversion"],
            # Figure 11's A29 group, verbatim shape.
            whitelist_filters=(
                "@@||google.com/adsense/search/ads.js"
                "$domain=search.comcast.net|comcast.net",
                "@@||google.com/ads/search/module/ads/*/search.js"
                "$script,domain=search.comcast.net",
                "@@||google.com/afs/$script,subdocument,document,"
                "domain=search.comcast.net|comcast.net",
            ),
        ),
        SiteProfile(
            domain="twcc.com", rank=9221, category="isp",
            networks=["adsense-for-search"],
            whitelist_filters=(
                "@@||twcc.com^$elemhide",
                "@@||google.com/adsense/search/ads.js$domain=twcc.com",
                "@@||google.com/ads/search/module/ads/*/search.js"
                "$script,domain=twcc.com",
            ),
        ),
        SiteProfile(
            domain="kayak.com", rank=704, category="travel",
            networks=["doubleclick-conversion", "google-adservices"],
            whitelist_filters=(
                "@@||kayak.com^$elemhide",
                "@@||kayak.com/ads/inline.js$script,domain=kayak.com",
            ),
        ),
        SiteProfile(
            domain="golem.de", rank=3428, category="news",
            networks=["adsense-for-search", "doubleclick-pagead"],
            whitelist_filters=(
                "@@||google.com/ads/search/module/ads/*/search.js"
                "$domain=suche.golem.de",
            ),
        ),
        SiteProfile(
            domain="ebay.com", rank=9, category="shopping",
            networks=["doubleclick-conversion", "google-adservices",
                      "bing-conversion"],
            whitelist_filters=(
                "@@||ebay.com/rover/ads/$image,domain=ebay.com",
            ),
        ),
        SiteProfile(
            domain="wikipedia.org", rank=7, category="reference",
            networks=[], inert=True,  # ad-free: never triggers anything
        ),
        SiteProfile(
            domain="craigslist.org", rank=47, category="classifieds",
            networks=[], inert=True,
        ),
    ]
    return {p.domain: p for p in profiles}


PINNED_PROFILES: dict[str, SiteProfile] = _profiles()

_CATEGORIES = (
    "news", "shopping", "social", "video", "games", "reference",
    "viral", "search", "travel", "isp", "humor", "general", "tech",
    "sports", "finance", "adult", "classifieds",
)
_CATEGORY_WEIGHTS = (
    12, 14, 6, 5, 7, 6, 3, 2, 4, 2, 2, 18, 6, 5, 4, 3, 1,
)


def pinned_profile(domain: str) -> SiteProfile | None:
    return PINNED_PROFILES.get(domain)


def _domain_rng(domain: str, salt: str = "") -> random.Random:
    digest = hashlib.sha256(f"{salt}:{domain}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def profile_for_domain(domain: str, rank: int,
                       group_index: int = 0,
                       category: str | None = None) -> SiteProfile:
    """Deterministically derive the profile of an arbitrary domain.

    Pinned (paper-named) domains return their hand-written profiles;
    everything else gets a profile sampled from the calibrated
    distributions, keyed by the domain name alone so the same domain
    always behaves identically.
    """
    pinned = pinned_profile(domain)
    if pinned is not None:
        return pinned

    rng = _domain_rng(domain, salt="profile")
    if category is None:
        category = rng.choices(_CATEGORIES, weights=_CATEGORY_WEIGHTS)[0]

    if rng.random() < INERT_FRACTION:
        return SiteProfile(domain=domain, rank=rank, category=category,
                           inert=True)

    ad_light = rng.random() < AD_LIGHT_FRACTION
    networks: list[str] = []
    for net in NETWORK_CATALOG:
        if ad_light and net.whitelist_filters:
            continue
        rate = net.rate_for_group(group_index)
        rate *= net.category_bias.get(category, 1.0)
        if rng.random() < min(rate, 0.97):
            networks.append(net.name)

    # Heavy-tailed ad intensity: most sites request each resource once
    # or twice; a small tail requests them many times (Figure 7's 5% of
    # sites with >= 12 non-distinct exception matches).
    intensity = 1.0
    roll = rng.random()
    if roll > 0.97:
        intensity = 4.0 + 6.0 * rng.random()
    elif roll > 0.85:
        intensity = 2.0 + 2.0 * rng.random()

    # Every non-inert site triggers *something* — the paper defines the
    # inert 1,044 as exactly the sites with zero activations, so active
    # sites with an otherwise empty stack fall back to a blocked banner.
    if not networks:
        networks.append("generic-banner")

    first_party: tuple[tuple[str, str, str, str], ...] = ()
    if not ad_light and rng.random() < 0.18:
        banner_class = rng.choice(
            ("banner-ad", "ad-banner", "adsbox", "ad-slot"))
        first_party = (("img", "class", banner_class,
                        f"{domain}-house-banner"),)

    return SiteProfile(domain=domain, rank=rank, category=category,
                       networks=networks, ad_intensity=intensity,
                       first_party_ads=first_party)


# ---------------------------------------------------------------------------
# Page synthesis
# ---------------------------------------------------------------------------

def build_page(
    profile: SiteProfile,
    *,
    has_cookies: bool = True,
    adblock_visible: bool = False,
) -> BuiltPage:
    """Synthesise the landing page for ``profile``.

    ``has_cookies`` models repeat visits (ask.com shows *more* ads to
    cookie-less first-time visitors); ``adblock_visible`` models sites
    that detect Adblock Plus and swap in different advertising.
    """
    url = f"http://www.{profile.domain}/"
    doc = Document(url=url)
    requests: list[PageRequest] = []

    if profile.inert:
        _add_content(doc)
        return BuiltPage(document=doc, requests=requests, profile=profile)

    rng = _domain_rng(profile.domain, salt="page")
    _add_content(doc)

    intensity = profile.ad_intensity
    if profile.cookie_sensitive and not has_cookies:
        intensity *= 1.8
    network_names = list(profile.networks)
    if profile.adblock_detecting and adblock_visible:
        # Swap third-party stacks for first-party "sponsored" content.
        network_names = [n for n in network_names
                         if n in ("gstatic", "doubleclick-conversion")]

    for name in network_names:
        net = network(name)
        for resource in net.resources:
            repeat = _scaled_repeat(resource.repeat, intensity, rng)
            variant = (rng.choice(resource.variants)
                       if resource.variants else "")
            for i in range(repeat):
                req_url = resource.url_template.format(
                    host=profile.domain, variant=variant)
                if i > 0:
                    sep = "&" if "?" in req_url else "?"
                    req_url = f"{req_url}{sep}slot={i}"
                requests.append(PageRequest(
                    url=req_url,
                    content_type=resource.content_type,
                    network=net.name,
                ))
                if resource.element is not None:
                    tag, attr, value = resource.element
                    el = doc.body.new_child(tag)
                    el.attributes[attr] = value
                    el.ad_label = f"{net.name}-unit"

    for tag, attr, value, label in profile.first_party_ads:
        el = doc.body.new_child(tag)
        el.attributes[attr] = value
        el.ad_label = label

    # Benign subresources every real page has (never match filters).
    requests.append(PageRequest(
        url=f"http://www.{profile.domain}/static/main.css",
        content_type=ContentType.STYLESHEET))
    requests.append(PageRequest(
        url=f"http://www.{profile.domain}/static/app.js",
        content_type=ContentType.SCRIPT))

    return BuiltPage(document=doc, requests=requests, profile=profile)


def _scaled_repeat(base: int, intensity: float, rng: random.Random) -> int:
    scaled = base * intensity
    floor = int(scaled)
    if rng.random() < (scaled - floor):
        floor += 1
    return max(1, floor)


def _add_content(doc: Document) -> None:
    main = doc.body.new_child("div", id="content")
    main.new_child("h1").text = "Welcome"
    for i in range(3):
        para = main.new_child("p", class_="story")
        para.text = f"Article paragraph {i}."
