"""URL parsing and domain utilities for the synthetic web substrate.

The Adblock Plus filter engine needs three domain-level primitives:

* parsing request URLs into scheme / host / path / query,
* deciding whether a request is *third-party* relative to the page that
  issued it (ABP compares effective second-level domains, not hostnames),
* reducing a fully qualified domain to its *effective second-level domain*
  (e2LD) using public-suffix rules, e.g. ``maps.google.co.uk`` -> and
  ``google.co.uk``.

The paper's Table 2 reports both fully-qualified-domain and e2LD counts, so
the e2LD reduction here is a first-class, tested primitive.  We embed a
compact public-suffix snapshot covering the suffixes that actually occur in
the study (generic TLDs plus the country suffixes used by Google's 919
ccTLD properties) instead of shipping the multi-megabyte PSL.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.parallel.caches import register_process_cache

__all__ = [
    "URL",
    "URLError",
    "parse_url",
    "registered_domain",
    "public_suffix",
    "is_subdomain_of",
    "is_third_party",
    "domain_labels",
]


class URLError(ValueError):
    """Raised when a string cannot be interpreted as a URL."""


#: Multi-label public suffixes (everything else falls back to the last label).
#: This snapshot covers the suffixes exercised by the study's domain corpus:
#: Google ccTLD properties (google.co.uk, google.com.au, ...), commerce and
#: publisher domains, and the synthetic Alexa population.
_MULTI_LABEL_SUFFIXES = frozenset(
    {
        "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
        "com.au", "net.au", "org.au", "id.au",
        "co.nz", "net.nz", "org.nz",
        "co.jp", "ne.jp", "or.jp", "ac.jp",
        "co.kr", "or.kr",
        "com.br", "net.br", "org.br",
        "com.mx", "org.mx",
        "com.ar", "com.co", "com.pe", "com.ve", "com.uy", "com.bo",
        "com.cn", "net.cn", "org.cn",
        "com.tw", "org.tw",
        "com.hk", "org.hk",
        "com.sg", "com.my", "com.ph", "com.vn", "co.th", "co.id",
        "com.tr", "com.sa", "com.eg", "co.il", "com.pk", "com.bd",
        "co.in", "net.in", "org.in", "firm.in",
        "co.za", "org.za", "com.ng", "co.ke",
        "com.ua", "com.ru",
        "co.ve", "co.cr",
    }
)

#: Second-level labels that act as public suffixes under any two-letter
#: country TLD (the PSL's ``co.XX`` / ``com.XX`` family, generalised).
_GENERIC_SECOND_LEVEL = frozenset(
    {"co", "com", "org", "net", "ac", "gov", "edu", "or", "ne"}
)

_SCHEMES = ("http", "https", "ws", "wss", "ftp", "data")


@dataclass(frozen=True, slots=True)
class URL:
    """A parsed URL.

    Attributes mirror the pieces the filter engine consumes.  ``host`` is
    always lower-case; ``path`` always begins with ``/`` (an empty path is
    normalised to ``/``).  ``query`` excludes the leading ``?`` and
    ``fragment`` excludes the leading ``#``.
    """

    scheme: str
    host: str
    port: int | None
    path: str
    query: str
    fragment: str

    @property
    def origin(self) -> str:
        """Scheme+host (+ port when explicit), e.g. ``https://a.com``."""
        if self.port is None:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def full_path(self) -> str:
        """Path plus query string, as matched by request filters."""
        if self.query:
            return f"{self.path}?{self.query}"
        return self.path

    @property
    def registered_domain(self) -> str:
        """The URL host reduced to its effective second-level domain."""
        return registered_domain(self.host)

    def __str__(self) -> str:
        text = f"{self.origin}{self.path}"
        if self.query:
            text += f"?{self.query}"
        if self.fragment:
            text += f"#{self.fragment}"
        return text


def parse_url(text: str) -> URL:
    """Parse ``text`` into a :class:`URL`.

    Accepts scheme-relative URLs (``//host/path``) and bare host/path
    strings (``host/path``), both of which occur in filter-list test
    corpora; a bare string defaults to the ``http`` scheme.

    Raises :class:`URLError` for empty input or hosts containing invalid
    characters.
    """
    if not text or text.isspace():
        raise URLError("empty URL")
    text = text.strip()

    scheme = "http"
    rest = text
    for candidate in _SCHEMES:
        prefix = candidate + "://"
        if text.lower().startswith(prefix):
            scheme = candidate
            rest = text[len(prefix):]
            break
    else:
        if text.startswith("//"):
            rest = text[2:]
        elif "://" in text.split("/", 1)[0]:
            raise URLError(f"unsupported scheme in {text!r}")

    hostport, sep, tail = rest.partition("/")
    path = "/" + tail if sep else "/"

    fragment = ""
    if "#" in path:
        path, _, fragment = path.partition("#")
    query = ""
    if "?" in path:
        path, _, query = path.partition("?")
    if not path:
        path = "/"

    host = hostport
    port: int | None = None
    if ":" in hostport:
        host, _, port_text = hostport.partition(":")
        if not port_text.isdigit():
            raise URLError(f"invalid port in {text!r}")
        port = int(port_text)
        if not 0 < port < 65536:
            raise URLError(f"port out of range in {text!r}")

    host = host.lower().rstrip(".")
    if not host:
        raise URLError(f"missing host in {text!r}")
    if not _valid_host(host):
        raise URLError(f"invalid host {host!r}")
    return URL(scheme=scheme, host=host, port=port, path=path,
               query=query, fragment=fragment)


def _valid_host(host: str) -> bool:
    for label in host.split("."):
        if not label:
            return False
        if not all(ch.isalnum() or ch in "-_" for ch in label):
            return False
    return True


def domain_labels(host: str) -> list[str]:
    """Split a hostname into labels, lower-cased: ``a.B.c`` -> ``[a, b, c]``."""
    return host.lower().rstrip(".").split(".")


@register_process_cache
@lru_cache(maxsize=65536)
def public_suffix(host: str) -> str:
    """Return the public suffix of ``host`` (``co.uk`` for ``bbc.co.uk``).

    Single-label hosts (e.g. ``localhost``) are their own suffix.

    Registered as a process cache: forked survey workers start with it
    cleared, so per-worker memory stays bounded and cache statistics
    describe the worker's own shard (see :mod:`repro.parallel.caches`).
    """
    labels = domain_labels(host)
    if len(labels) == 1:
        return labels[0]
    last_two = ".".join(labels[-2:])
    if last_two in _MULTI_LABEL_SUFFIXES:
        return last_two
    # The generic co.XX rule applies to the bare two-label host too:
    # ``co.zz`` *is* a public suffix, exactly like ``a.co.zz``'s suffix.
    # Making the rule independent of label count keeps the suffix stable
    # under prepending subdomains, which registered_domain relies on.
    if len(labels[-1]) == 2 and labels[-2] in _GENERIC_SECOND_LEVEL:
        return last_two
    return labels[-1]


@register_process_cache
@lru_cache(maxsize=65536)
def registered_domain(host: str) -> str:
    """Reduce ``host`` to its effective second-level domain.

    ``maps.google.com`` -> ``google.com``; ``news.bbc.co.uk`` ->
    ``bbc.co.uk``.  A host that *is* a public suffix (or a single label)
    is returned unchanged.  Cleared across ``fork`` like
    :func:`public_suffix`.
    """
    labels = domain_labels(host)
    suffix = public_suffix(host)
    suffix_len = suffix.count(".") + 1
    if len(labels) <= suffix_len:
        return ".".join(labels)
    return ".".join(labels[-(suffix_len + 1):])


def is_subdomain_of(host: str, domain: str) -> bool:
    """True when ``host`` equals ``domain`` or is one of its subdomains."""
    host = host.lower().rstrip(".")
    domain = domain.lower().rstrip(".")
    return host == domain or host.endswith("." + domain)


def is_third_party(request_host: str, page_host: str) -> bool:
    """ABP's third-party test: differing effective second-level domains."""
    return registered_domain(request_host) != registered_domain(page_host)
