"""Checkpoint (de)serialization for the crawl pipeline.

This module is the bridge between :mod:`repro.web.crawler` and
:mod:`repro.state`: it knows how to flatten one completed
:class:`~repro.web.crawler.CrawlOutcome` — plus the crawler's mutable
cross-visit state — into the JSON payload of a journal record, and how
to rebuild both on ``--resume`` so the continued run is
*byte-identical* to an uninterrupted one.

Two kinds of payload live in a survey journal record:

**The outcome snapshot** captures everything downstream consumers
(Table 4, Figures 6–8, the crawl-health table) read from an outcome.
Request decisions are stored as their verdict alone and hidden
elements as detached ``(tag, attributes, text, ad_label)`` nodes: the
blocking/exception filter objects and DOM tree links they drop are
never consulted after the visit returns, and carrying live filter
references would tie the journal to engine internals.

**The crawler state snapshot** captures what the *next* visit depends
on: the simulated clock, per-domain flaky countdowns, circuit-breaker
states, and the backoff rng.  The rng's Mersenne state is ~6 KB, but
it only advances when a retry actually sleeps, so it is journaled
*on change only* — :func:`merge_states` folds a run's snapshots into
the cumulative state that :func:`restore_crawler_state` applies.

The browser cookie jar needs no explicit snapshot: failing attempts
never reach the browser (see :meth:`repro.web.faults.FaultInjector.run`),
so the set of visited domains is exactly the domains of outcomes that
carry a record, which :func:`journaled_survey` replays.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.filters.engine import Activation, RequestDecision, Verdict
from repro.state.checkpoint import Checkpoint, restore_rng, snapshot_rng
from repro.web.crawler import (
    Crawler,
    CrawlOutcome,
    CrawlRecord,
    CrawlStatus,
    CrawlTarget,
)
from repro.web.dom import Element
from repro.web.resilience import BreakerState
from repro.web.sites import SiteProfile

__all__ = [
    "snapshot_outcome",
    "restore_outcome",
    "snapshot_rng",
    "restore_rng",
    "snapshot_crawler_state",
    "restore_crawler_state",
    "merge_states",
    "unit_key",
    "journaled_survey",
]


# -- outcome snapshots ----------------------------------------------------

def _snapshot_target(target: CrawlTarget) -> dict:
    return {"domain": target.domain, "rank": target.rank,
            "group_index": target.group_index,
            "category": target.category}


def _restore_target(data: dict) -> CrawlTarget:
    return CrawlTarget(domain=data["domain"], rank=data["rank"],
                       group_index=data["group_index"],
                       category=data["category"])


def _snapshot_profile(profile: SiteProfile) -> dict:
    return {
        "domain": profile.domain,
        "rank": profile.rank,
        "category": profile.category,
        "networks": list(profile.networks),
        "whitelist_filters": list(profile.whitelist_filters),
        "first_party_ads": [list(ad) for ad in profile.first_party_ads],
        "ad_intensity": profile.ad_intensity,
        "inert": profile.inert,
        "cookie_sensitive": profile.cookie_sensitive,
        "adblock_detecting": profile.adblock_detecting,
    }


def _restore_profile(data: dict) -> SiteProfile:
    return SiteProfile(
        domain=data["domain"],
        rank=data["rank"],
        category=data["category"],
        networks=list(data["networks"]),
        whitelist_filters=tuple(data["whitelist_filters"]),
        first_party_ads=tuple(tuple(ad) for ad in data["first_party_ads"]),
        ad_intensity=data["ad_intensity"],
        inert=data["inert"],
        cookie_sensitive=data["cookie_sensitive"],
        adblock_detecting=data["adblock_detecting"],
    )


def _snapshot_activation(activation: Activation) -> dict:
    return {"filter_text": activation.filter_text,
            "list_name": activation.list_name,
            "page_host": activation.page_host,
            "target": activation.target,
            "kind": activation.kind,
            "is_exception": activation.is_exception,
            "needless": activation.needless}


def _restore_activation(data: dict) -> Activation:
    return Activation(**data)


def _snapshot_element(element: Element) -> dict:
    return {"tag": element.tag, "attributes": dict(element.attributes),
            "text": element.text, "ad_label": element.ad_label}


def _restore_element(data: dict) -> Element:
    return Element(tag=data["tag"], attributes=dict(data["attributes"]),
                   text=data["text"], ad_label=data["ad_label"])


def snapshot_outcome(outcome: CrawlOutcome) -> dict:
    """Flatten one outcome to the JSON shape journaled per target."""
    record = None
    if outcome.record is not None:
        visit = outcome.record.visit
        record = {
            "page_url": visit.page_url,
            "verdicts": [d.verdict.value for d in visit.decisions],
            "hidden": [_snapshot_element(e) for e in visit.hidden],
            "activations": [_snapshot_activation(a)
                            for a in visit.activations],
            "profile": _snapshot_profile(outcome.record.profile),
        }
    return {
        "target": _snapshot_target(outcome.target),
        "status": outcome.status.value,
        "error_class": outcome.error_class,
        "attempts": outcome.attempts,
        "latency_ms": outcome.latency_ms,
        "breaker_open": outcome.breaker_open,
        "record": record,
    }


def restore_outcome(data: dict) -> CrawlOutcome:
    """Rebuild a :class:`CrawlOutcome` journaled by :func:`snapshot_outcome`."""
    from repro.web.browser import PageVisit

    target = _restore_target(data["target"])
    record = None
    if data["record"] is not None:
        raw = data["record"]
        visit = PageVisit(
            domain=target.domain,
            page_url=raw["page_url"],
            decisions=[RequestDecision(verdict=Verdict(v))
                       for v in raw["verdicts"]],
            hidden=[_restore_element(e) for e in raw["hidden"]],
            activations=[_restore_activation(a)
                         for a in raw["activations"]],
        )
        record = CrawlRecord(target=target, visit=visit,
                             profile=_restore_profile(raw["profile"]))
    return CrawlOutcome(
        target=target,
        status=CrawlStatus(data["status"]),
        record=record,
        error_class=data["error_class"],
        attempts=data["attempts"],
        latency_ms=data["latency_ms"],
        breaker_open=data["breaker_open"],
    )


# -- crawler state snapshots ----------------------------------------------

def snapshot_crawler_state(crawler: Crawler,
                           last_rng: list | None) -> tuple[dict, list]:
    """The crawler's cross-visit state after one completed unit.

    Returns ``(state, rng_state)``: ``state`` is the journal payload
    (with ``"rng"`` present only when it differs from ``last_rng``);
    ``rng_state`` is the current serialized rng for the next call's
    ``last_rng``.
    """
    state: dict = {"clock": crawler.clock.now()}
    if crawler.injector is not None and crawler.injector._flaky_left:
        state["flaky"] = dict(crawler.injector._flaky_left)
    breakers = {
        domain: {"state": breaker.state.value,
                 "consecutive_failures": breaker.consecutive_failures,
                 "opened_at": breaker.opened_at,
                 "open_count": breaker.open_count}
        for domain, breaker in crawler.breakers._breakers.items()
        if (breaker.state is not BreakerState.CLOSED
            or breaker.consecutive_failures or breaker.open_count)
    }
    if breakers:
        state["breakers"] = breakers
    rng_state = snapshot_rng(crawler.rng)
    if rng_state != last_rng:
        state["rng"] = rng_state
    return state, rng_state


def merge_states(states) -> dict:
    """Fold per-unit state snapshots (oldest first) into one.

    ``clock``/``flaky``/``breakers`` are cumulative (each snapshot
    carries the full current value) so the last occurrence wins;
    ``rng`` is journaled on change, so the last snapshot that carried
    one wins.
    """
    merged: dict = {}
    for state in states:
        merged.update(state)
    return merged


def restore_crawler_state(crawler: Crawler, state: dict) -> None:
    """Apply a merged state snapshot to a freshly constructed crawler."""
    if not state:
        return
    clock = state.get("clock")
    if clock is not None:
        delta = clock - crawler.clock.now()
        if delta > 0:
            crawler.clock.advance(delta)
    if crawler.injector is not None:
        crawler.injector._flaky_left.clear()
        crawler.injector._flaky_left.update(state.get("flaky", {}))
    for domain, saved in state.get("breakers", {}).items():
        breaker = crawler.breakers.get(domain)
        breaker.state = BreakerState(saved["state"])
        breaker.consecutive_failures = saved["consecutive_failures"]
        breaker.opened_at = saved["opened_at"]
        breaker.open_count = saved["open_count"]
    if "rng" in state:
        restore_rng(crawler.rng, state["rng"])


# -- the journaled survey loop --------------------------------------------

def unit_key(group_name: str, target: CrawlTarget) -> str:
    """The journal key identifying one (group, target) unit of work.

    Shared with :mod:`repro.parallel.survey` so serial and sharded
    executors write interchangeable checkpoint records — which is what
    lets ``--resume`` move between them and across worker counts.
    """
    return f"{group_name}/{target.domain}#{target.rank}"


#: Backwards-compatible alias (pre-parallel internal name).
_unit_key = unit_key


def journaled_survey(crawler: Crawler, groups, *,
                     checkpoint: Checkpoint, scope: str,
                     scope_config: dict | None = None,
                     span_factory=None) -> dict[str, list[CrawlOutcome]]:
    """Crawl ``groups`` under ``checkpoint``, resuming completed units.

    ``groups`` is the survey's ordered :class:`SampleGroup` list; the
    returned dict maps group name to outcomes in target order.  Units
    already journaled under ``scope`` are restored instead of
    re-crawled, the crawler's mutable state is rewound to the last
    journaled unit, and every newly crawled target is journaled before
    the loop moves on.  ``span_factory(group_name)`` optionally opens a
    tracing span per group of *live* crawling (resumed groups are
    skipped entirely, so they add no spans).
    """
    done = checkpoint.begin_scope(scope, scope_config)
    outcomes_by_group: dict[str, list[CrawlOutcome]] = {
        group.name: [] for group in groups}
    done_keys = set()
    for key, payload in done:
        done_keys.add(key)
        outcome = restore_outcome(payload["outcome"])
        outcomes_by_group[payload["group"]].append(outcome)
        if outcome.record is not None:
            crawler.browser._visited_domains.add(outcome.domain)
    restore_crawler_state(
        crawler, merge_states(payload["state"] for _, payload in done))
    last_rng = snapshot_rng(crawler.rng)
    from repro.obs import OBS, ProgressTracker
    progress = (ProgressTracker(
        scope, sum(len(group.targets) for group in groups),
        done=len(done_keys))
        if OBS.registry.enabled or OBS.timeseries.enabled else None)
    for group in groups:
        pending = [target for target in group.targets
                   if unit_key(group.name, target) not in done_keys]
        if not pending:
            continue
        span = (span_factory(group.name) if span_factory is not None
                else nullcontext())
        with span:
            for target in pending:
                outcome = crawler.visit_target(target)
                state, last_rng = snapshot_crawler_state(crawler, last_rng)
                checkpoint.record(
                    scope, unit_key(group.name, target),
                    {"group": group.name,
                     "outcome": snapshot_outcome(outcome),
                     "state": state})
                outcomes_by_group[group.name].append(outcome)
                if progress is not None:
                    progress.step(outcome.latency_ms)
        checkpoint.sync()
    return outcomes_by_group
