"""Ad-network models: the shared catalog behind whitelist and web corpus.

The survey's headline numbers (Table 4, Figures 6–8) arise from the
*joint* distribution of (a) which exception filters the whitelist
contains and (b) which ad networks each site deploys.  To keep the two
sides consistent, this module is the single source of truth: the
whitelist generator emits each network's exception filters, and the site
generator wires each site's pages to the networks its profile names.

Calibration comes straight from the paper's Section 5:

* ``@@||stats.g.doubleclick.net^$script,image`` — conversion tracking —
  fired on 1,559 of 5,000 top sites (31.2%);
* ``@@||googleadservices.com^$third-party`` — AdSense — 1,535 sites;
* ``@@||gstatic.com^$third-party`` — Google static resources (needless:
  EasyList never blocked them) — 1,282 sites;
* the undocumented A59 AdSense-for-search filter — 78 sites (rank 9);
* ``#@##influads_block`` — the only unrestricted element exception —
  30 sites.

``deploy_rate`` is the per-site Bernoulli probability within the top-5K
group; ``strata_scale`` scales it for the lower-popularity groups
(Figure 8 shows most whitelist filters skew toward popular sites, while
one conversion tracker peaks in the 100K–1M group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filters.options import ContentType

__all__ = [
    "AdResource",
    "AdNetwork",
    "NETWORK_CATALOG",
    "network",
    "blocking_networks",
    "whitelisted_networks",
]


@dataclass(frozen=True, slots=True)
class AdResource:
    """One resource a network adds to a page.

    ``url_template`` may contain ``{host}`` (the embedding page's host).
    ``element`` optionally describes a DOM element injected alongside the
    request: ``(tag, attr_name, attr_value)``.
    """

    url_template: str
    content_type: ContentType
    element: tuple[str, str, str] | None = None
    repeat: int = 1  # how many times a page typically requests it
    #: Per-site path variants substituted for ``{variant}``.  Real ad
    #: networks serve from many endpoints; EasyList blocks them with
    #: many narrow filters while one broad whitelist exception covers
    #: them all — which is why the survey's five most-activated filters
    #: are all whitelist filters (Figure 8).
    variants: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class AdNetwork:
    """An ad network / tracker and the filters that govern it.

    ``whitelist_filters`` are the Acceptable Ads exception filters the
    network's participation adds; ``blocking_filters`` are the
    EasyList-side filters that would block it.  Networks that EasyList
    does not block at all (gstatic) have whitelist filters that activate
    *needlessly* — a paper finding we must reproduce.
    """

    name: str
    resources: tuple[AdResource, ...]
    blocking_filters: tuple[str, ...] = ()
    whitelist_filters: tuple[str, ...] = ()
    deploy_rate: float = 0.0
    strata_scale: tuple[float, float, float] = (0.6, 0.45, 0.3)
    category_bias: dict[str, float] = field(default_factory=dict)

    def rate_for_group(self, group_index: int) -> float:
        """Deployment probability for sample group 0..3 (0 = top 5K)."""
        if group_index == 0:
            return self.deploy_rate
        return self.deploy_rate * self.strata_scale[group_index - 1]


_T = ContentType

NETWORK_CATALOG: tuple[AdNetwork, ...] = (
    # -- Table 4's head: Google's conversion/ads/static trio -------------
    AdNetwork(
        name="doubleclick-conversion",
        resources=(AdResource(
            "http://stats.g.doubleclick.net/{variant}", _T.SCRIPT,
            variants=("dc.js", "r/collect", "pixel/p.gif",
                      "conv/track.js", "ga/audiences.js")),),
        blocking_filters=(
            "||stats.g.doubleclick.net/dc.js$third-party",
            "||stats.g.doubleclick.net/r/collect$third-party",
            "||stats.g.doubleclick.net/pixel/$third-party",
            "||stats.g.doubleclick.net/conv/$third-party",
            "||stats.g.doubleclick.net/ga/$third-party",
        ),
        whitelist_filters=("@@||stats.g.doubleclick.net^$script,image",),
        deploy_rate=0.53,
        strata_scale=(0.75, 0.6, 0.5),
        category_bias={"shopping": 1.35, "news": 1.1},
    ),
    AdNetwork(
        name="google-adservices",
        resources=(AdResource(
            "http://www.googleadservices.com/{variant}", _T.SCRIPT,
            variants=("pagead/conversion.js", "pagead/landing.js",
                      "aclk/convert.js",
                      "pagead/viewthroughconversion.js")),),
        blocking_filters=(
            "||googleadservices.com/pagead/conversion.js$third-party",
            "||googleadservices.com/pagead/landing$third-party",
            "||googleadservices.com/aclk/$third-party",
            "||googleadservices.com/pagead/viewthroughconversion"
            "$third-party",
        ),
        whitelist_filters=("@@||googleadservices.com^$third-party",),
        deploy_rate=0.5,
        strata_scale=(0.7, 0.55, 0.42),
        category_bias={"shopping": 1.4},
    ),
    AdNetwork(
        name="gstatic",
        resources=(AdResource(
            "http://fonts.gstatic.com/s/roboto/v15/font.woff",
            _T.OTHER),),
        # EasyList contains no gstatic blocking filters — the whitelist
        # entry is needless (Section 5.1 calls this out).
        blocking_filters=(),
        whitelist_filters=("@@||gstatic.com^$third-party",),
        deploy_rate=0.456,
        strata_scale=(0.8, 0.7, 0.55),
    ),
    AdNetwork(
        name="googlesyndication",
        resources=(AdResource(
            "http://pagead2.googlesyndication.com/{variant}",
            _T.SCRIPT,
            element=("div", "class", "google-ad"), repeat=2,
            variants=("pagead/show_ads.js", "pagead/js/adsbygoogle.js",
                      "simgad/banner.js")),),
        blocking_filters=(
            "||googlesyndication.com/pagead/show_ads$third-party",
            "||googlesyndication.com/pagead/js/$third-party",
            "||googlesyndication.com/simgad/$third-party",
        ),
        whitelist_filters=(
            "@@||pagead2.googlesyndication.com^$third-party",),
        deploy_rate=0.28,
        strata_scale=(0.72, 0.58, 0.45),
    ),
    AdNetwork(
        name="google-analytics-conversion",
        resources=(AdResource(
            "http://www.google-analytics.com/conversion/?cid={host}",
            _T.IMAGE),),
        blocking_filters=("||google-analytics.com/conversion/^",),
        # Conversion tracking that *peaks in the 100K–1M stratum*
        # (Figure 8's outlier filter).
        whitelist_filters=("@@||google-analytics.com/conversion/^$image",),
        deploy_rate=0.015,
        strata_scale=(1.2, 1.6, 2.4),
    ),
    AdNetwork(
        name="doubleclick-pagead",
        resources=(AdResource(
            "http://g.doubleclick.net/pagead/{variant}?client={host}",
            _T.SUBDOCUMENT,
            element=("iframe", "class", "dfp-slot"), repeat=2,
            variants=("ads", "adview")),),
        blocking_filters=(
            "||g.doubleclick.net/pagead/ads?$subdocument,third-party",
            "||g.doubleclick.net/pagead/adview$subdocument,third-party",
        ),
        whitelist_filters=(
            "@@||g.doubleclick.net/pagead/$subdocument,third-party",),
        deploy_rate=0.195,
        category_bias={"news": 1.3},
    ),
    AdNetwork(
        name="bing-conversion",
        resources=(AdResource(
            "http://bat.bing.com/action/0?ti={host}", _T.IMAGE),),
        blocking_filters=("||bat.bing.com^$third-party",),
        whitelist_filters=("@@||bat.bing.com^$image,third-party",),
        deploy_rate=0.09,
        category_bias={"shopping": 1.5},
    ),
    AdNetwork(
        name="facebook-conversion",
        resources=(AdResource(
            "http://www.facebook.com/tr?id=123&ev=PageView", _T.IMAGE),),
        blocking_filters=("||facebook.com/tr?$image,third-party",),
        whitelist_filters=("@@||facebook.com/tr?$image,third-party",),
        deploy_rate=0.055,
        category_bias={"shopping": 1.3, "social": 1.6},
    ),
    AdNetwork(
        name="adsense-for-search",
        resources=(AdResource(
            "http://www.google.com/adsense/search/ads.js", _T.SCRIPT),),
        blocking_filters=("||google.com/adsense/search/$script,third-party",),
        # A59's undocumented *unrestricted* AdSense-for-search exception
        # (Section 7): rank 9 in Table 4 with 78 activating domains.
        whitelist_filters=("@@||google.com/adsense/search/ads.js$script",),
        deploy_rate=0.028,
        strata_scale=(0.5, 0.35, 0.2),
        category_bias={"search": 3.0},
    ),
    AdNetwork(
        name="criteo",
        resources=(AdResource(
            "http://static.criteo.net/js/ld/ld.js", _T.SCRIPT,
            element=("div", "class", "criteo-banner")),),
        blocking_filters=("||criteo.net^$third-party",),
        whitelist_filters=("@@||static.criteo.net/js/ld/$script",),
        deploy_rate=0.03,
        category_bias={"shopping": 1.8},
    ),
    AdNetwork(
        name="amazon-adsystem",
        resources=(AdResource(
            "http://aax.amazon-adsystem.com/e/dtb/bid?src={host}",
            _T.SCRIPT),),
        blocking_filters=("||amazon-adsystem.com^$third-party",),
        whitelist_filters=("@@||aax.amazon-adsystem.com/e/dtb/$script",),
        deploy_rate=0.019,
        category_bias={"shopping": 1.7},
    ),
    AdNetwork(
        name="pagefair",
        resources=(
            AdResource("http://asset.pagefair.net/measure.js", _T.SCRIPT),
            AdResource("http://imp.admarketplace.net/imp?ad=1", _T.IMAGE,
                       element=("div", "class", "pagefair-unit")),
        ),
        blocking_filters=(
            "||pagefair.net^$third-party",
            "||admarketplace.net^$third-party",
        ),
        # The unrestricted PageFair trio quoted verbatim in Section 4.2.2.
        whitelist_filters=(
            "@@||pagefair.net^$third-party",
            "@@||tracking.admarketplace.net^$third-party",
            "@@||imp.admarketplace.net^$third-party",
        ),
        deploy_rate=0.016,
        strata_scale=(0.9, 0.8, 0.6),
    ),
    AdNetwork(
        name="quantserve",
        resources=(AdResource(
            "http://pixel.quantserve.com/pixel/p-123.gif", _T.IMAGE),),
        blocking_filters=("||quantserve.com^$third-party",),
        whitelist_filters=("@@||pixel.quantserve.com/pixel/$image",),
        deploy_rate=0.02,
    ),
    AdNetwork(
        name="scorecard",
        resources=(AdResource(
            "http://b.scorecardresearch.com/b?c1=2", _T.IMAGE),),
        blocking_filters=("||scorecardresearch.com^$third-party",),
        whitelist_filters=("@@||b.scorecardresearch.com/b?$image",),
        deploy_rate=0.018,
        category_bias={"news": 1.5},
    ),
    AdNetwork(
        name="twitter-conversion",
        resources=(AdResource(
            "http://analytics.twitter.com/i/adsct?txn=1", _T.IMAGE),),
        blocking_filters=("||analytics.twitter.com^$third-party",),
        whitelist_filters=("@@||analytics.twitter.com/i/adsct$image",),
        deploy_rate=0.013,
        category_bias={"social": 1.8},
    ),
    AdNetwork(
        name="outbrain",
        resources=(AdResource(
            "http://widgets.outbrain.com/outbrain.js", _T.SCRIPT,
            element=("div", "class", "ob-widget"), repeat=2),),
        blocking_filters=("||outbrain.com^$third-party",),
        whitelist_filters=("@@||widgets.outbrain.com/outbrain.js$script",),
        deploy_rate=0.012,
        category_bias={"news": 2.0, "viral": 2.5},
    ),
    AdNetwork(
        name="taboola",
        resources=(AdResource(
            "http://cdn.taboola.com/libtrc/loader.js", _T.SCRIPT,
            element=("div", "class", "trc-widget")),),
        blocking_filters=("||taboola.com^$third-party",),
        whitelist_filters=("@@||cdn.taboola.com/libtrc/$script",),
        deploy_rate=0.011,
        category_bias={"news": 1.8, "viral": 2.8},
    ),
    AdNetwork(
        name="yahoo-gemini",
        resources=(AdResource(
            "http://gemini.yahoo.com/bidRequest?dcn={host}", _T.SCRIPT),),
        blocking_filters=("||gemini.yahoo.com^$third-party",),
        whitelist_filters=("@@||gemini.yahoo.com/bidRequest$script",),
        deploy_rate=0.008,
    ),
    AdNetwork(
        name="influads",
        resources=(AdResource(
            "http://engine.influads.com/show/ad.js", _T.SCRIPT,
            element=("div", "id", "influads_block")),),
        blocking_filters=(
            "||influads.com^$third-party",
            "###influads_block",
        ),
        # Section 4.2.2: the request exception plus the *only*
        # unrestricted element exception in the whitelist.
        whitelist_filters=(
            "@@||influads.com^$script,image",
            "#@##influads_block",
        ),
        deploy_rate=0.0096,
        strata_scale=(1.0, 0.9, 0.7),
    ),
    AdNetwork(
        name="adroll",
        resources=(AdResource(
            "http://d.adroll.com/cm/index/out", _T.IMAGE),),
        blocking_filters=("||adroll.com^$third-party",),
        whitelist_filters=("@@||d.adroll.com/cm/$image",),
        deploy_rate=0.009,
        category_bias={"shopping": 1.6},
    ),
    # -- Blocked-only networks (EasyList hits, no whitelist entry) ------
    AdNetwork(
        name="adzerk",
        resources=(AdResource(
            "http://static.adzerk.net/ads.html?sr={host}", _T.SUBDOCUMENT,
            element=("iframe", "id", "ad_main")),),
        blocking_filters=("||adzerk.net^$third-party",),
        deploy_rate=0.02,
    ),
    AdNetwork(
        name="openx",
        resources=(AdResource(
            "http://ox-d.openx.net/w/1.0/jstag", _T.SCRIPT,
            element=("div", "class", "oxad")),),
        blocking_filters=("||openx.net^$third-party",),
        deploy_rate=0.06,
    ),
    AdNetwork(
        name="rubicon",
        resources=(AdResource(
            "http://ads.rubiconproject.com/header/1234.js", _T.SCRIPT),),
        blocking_filters=("||rubiconproject.com^$third-party",),
        deploy_rate=0.07,
    ),
    AdNetwork(
        name="pubmatic",
        resources=(AdResource(
            "http://ads.pubmatic.com/AdServer/js/gshowad.js", _T.SCRIPT,
            element=("div", "class", "pubmatic-ad"), repeat=2),),
        blocking_filters=("||pubmatic.com^$third-party",),
        deploy_rate=0.06,
    ),
    AdNetwork(
        name="casalemedia",
        resources=(AdResource(
            "http://as.casalemedia.com/headertag?id=9", _T.SCRIPT),),
        blocking_filters=("||casalemedia.com^$third-party",),
        deploy_rate=0.05,
    ),
    AdNetwork(
        name="zedo",
        resources=(AdResource(
            "http://d3.zedo.com/jsc/d3/fo.js", _T.SCRIPT,
            element=("div", "class", "zedo-unit")),),
        blocking_filters=("||zedo.com^$third-party",),
        deploy_rate=0.05,
    ),
    AdNetwork(
        name="chartbeat",
        resources=(AdResource(
            "http://static.chartbeat.com/js/chartbeat.js", _T.SCRIPT),),
        blocking_filters=("||static.chartbeat.com/js/chartbeat.js$script",),
        deploy_rate=0.07,
        category_bias={"news": 1.6},
    ),
    AdNetwork(
        name="generic-banner",
        resources=(AdResource(
            "http://cdn.bannerfarm.net/{variant}/banner.gif", _T.IMAGE,
            repeat=3,
            variants=("ad-frame", "banner-zone", "ads-serve")),),
        blocking_filters=("/ad-frame/", "/banner-zone/",
                          "/ads-serve/$image"),
        deploy_rate=0.085,
        strata_scale=(0.9, 0.85, 0.8),
    ),
    AdNetwork(
        name="generic-publisher-adserv",
        # The ad server used by "generic" Acceptable Ads publishers: the
        # whitelist grants each participating publisher a *restricted*
        # exception for its own slot path (those filters live in the
        # whitelist history's publisher directory, not here).
        resources=(AdResource(
            "http://adserv.genericnet.com/slot/{host}/unit.js",
            _T.SCRIPT,
            element=("div", "class", "acceptable-unit")),),
        blocking_filters=("||adserv.genericnet.com^$third-party",),
        deploy_rate=0.0,
    ),
    AdNetwork(
        name="popunder",
        resources=(AdResource(
            "http://serve.popads.net/cas.js", _T.SCRIPT),),
        blocking_filters=("||popads.net^$third-party",),
        deploy_rate=0.03,
        strata_scale=(1.5, 2.0, 2.6),
    ),
)

_BY_NAME = {net.name: net for net in NETWORK_CATALOG}


def network(name: str) -> AdNetwork:
    """Look up a catalog network by name (KeyError on unknown)."""
    return _BY_NAME[name]


def whitelisted_networks() -> list[AdNetwork]:
    """Networks contributing unrestricted Acceptable Ads filters."""
    return [n for n in NETWORK_CATALOG if n.whitelist_filters]


def blocking_networks() -> list[AdNetwork]:
    """Networks EasyList blocks (whitelisted or not)."""
    return [n for n in NETWORK_CATALOG if n.blocking_filters]
