"""Time-series sampling: periodic snapshots of the metrics registry.

Export-at-end observability (PR 2/PR 5) answers "where did the time
go?" after a run finishes; this module answers "where is it going *right
now*?" for the hours-long survey and serving workloads.  A
:class:`TimeSeriesSampler` snapshots the flat metric view on periodic
*ticks* and streams one ``{"type": "sample", ...}`` record per tick
through a :class:`repro.obs.export.RotatingJsonlExporter`.

Two clocks, two channels
------------------------

Ticks come from one of two clocks, and the distinction is what keeps
the byte-identity contract intact:

* **Simulated clock** (:meth:`TimeSeriesSampler.advance`): survey and
  history runs advance the sampler by each unit's *simulated* latency,
  accumulated in global unit order — the same order metric snapshots
  are merged in.  Tick boundaries are therefore a pure function of the
  workload, so the main time-series export is **byte-identical at any
  worker count and under either scheduler**.
* **Wall clock** (:meth:`TimeSeriesSampler.sample_wall`): ``repro
  serve`` has no simulated clock, so a background
  :class:`WallClockTicker` thread samples on real elapsed time.  Those
  exports are honest about being nondeterministic.

Execution-placement telemetry (worker liveness, lease backlog — the
``OBS.diagnostics`` registry) is *never* deterministic, so it goes to a
separate ``<path>.diag`` sidecar stream via
:meth:`TimeSeriesSampler.sample_diagnostics`, rate-limited on the wall
clock.  The main segments stay byte-identical; the sidecar carries the
worker table ``repro obs watch`` renders.

:class:`ProgressTracker` is the producer shim survey paths use: it
maintains ``run.progress.*`` gauges (done/total/elapsed/ETA per stage)
in the *result* registry and drives :meth:`advance` with per-unit
latencies.  The gauges are written whenever metrics are enabled —
with or without a time-series sink — so ``--metrics-out`` artifacts
remain byte-identical whether or not telemetry rides along.

>>> from repro.obs.export import InMemoryTimeSeries
>>> sink = InMemoryTimeSeries()
>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("demo.units").inc()
>>> sampler = TimeSeriesSampler(sink, interval_s=1.0, registry=registry)
>>> sampler.advance(2.5)   # crosses two tick boundaries
2
>>> [record["t_s"] for record in sink.records]
[1.0, 2.0]
>>> sink.records[0]["metrics"]
{'demo.units': 1}
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = [
    "TimeSeriesSampler",
    "NullTimeSeries",
    "NULL_TIMESERIES",
    "ProgressTracker",
    "WallClockTicker",
    "DEFAULT_TICK_INTERVAL_S",
]

#: Default simulated/wall seconds between samples.
DEFAULT_TICK_INTERVAL_S = 1.0

#: Guards float accumulation: ``0.1 * 10`` must still cross the
#: ``1.0`` tick boundary.
_TICK_EPSILON = 1e-9


class TimeSeriesSampler:
    """Snapshots a registry's flat view on tick boundaries.

    ``exporter`` is any object with ``write(record)`` and ``close()``
    (in practice :class:`repro.obs.export.RotatingJsonlExporter` or
    :class:`repro.obs.export.InMemoryTimeSeries`).  ``registry`` pins
    the sampled registry; when ``None`` each sample reads the *current*
    ``OBS.registry``, which is what the CLI wants — ``observe()`` swaps
    registries around each command.

    The sampler only ever **reads** the registry, so enabling it cannot
    perturb metric exports.
    """

    enabled = True

    def __init__(self, exporter, *,
                 interval_s: float = DEFAULT_TICK_INTERVAL_S,
                 registry=None,
                 diagnostics_exporter=None,
                 diagnostics_min_wall_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s}")
        self.exporter = exporter
        self.interval_s = interval_s
        self.registry = registry
        self.diagnostics_exporter = diagnostics_exporter
        self.diagnostics_min_wall_s = diagnostics_min_wall_s
        self.clock = clock
        self.closed = False
        self._tick = 0                  # ticks emitted so far
        self._sim_elapsed = 0.0         # simulated seconds advanced
        self._wall_start: float | None = None
        self._last_diag_wall: float | None = None
        self._lock = threading.Lock()

    # -- sampling -----------------------------------------------------

    def advance(self, delta_s: float) -> int:
        """Advance the simulated clock; emit one sample per tick crossed.

        Returns the number of samples emitted.  Callers accumulate
        deltas in global unit order (the scheduler's flush order), so
        tick boundaries — and therefore the exported byte stream — are
        identical at any worker count.
        """
        if self.closed or delta_s <= 0:
            return 0
        emitted = 0
        with self._lock:
            self._sim_elapsed += delta_s
            # One advance may cross several ticks, but the registry
            # cannot change between them — snapshot once, reuse for
            # every sample this call emits.
            snapshot: dict | None = None
            while ((self._tick + 1) * self.interval_s
                   <= self._sim_elapsed + _TICK_EPSILON):
                self._tick += 1
                if snapshot is None:
                    snapshot = self._flat_view()
                self._emit(self._tick,
                           round(self._tick * self.interval_s, 6),
                           metrics=snapshot)
                emitted += 1
        return emitted

    def sample_wall(self) -> None:
        """Emit one sample stamped with wall-clock elapsed seconds.

        The serving daemon's :class:`WallClockTicker` drives this; the
        tick counter is shared with :meth:`advance` so mixed use still
        yields a monotonic tick sequence.
        """
        if self.closed:
            return
        with self._lock:
            now = self.clock()
            if self._wall_start is None:
                self._wall_start = now
            self._tick += 1
            self._emit(self._tick, round(now - self._wall_start, 6))

    def sample_diagnostics(self) -> None:
        """Snapshot ``OBS.diagnostics`` to the sidecar stream.

        Rate-limited on the wall clock (``diagnostics_min_wall_s``)
        because callers invoke it opportunistically from scheduler poll
        loops.  A no-op without a sidecar exporter.
        """
        if self.closed or self.diagnostics_exporter is None:
            return
        from repro.obs import OBS
        if not OBS.diagnostics.enabled:
            return
        with self._lock:
            now = self.clock()
            if (self._last_diag_wall is not None
                    and now - self._last_diag_wall
                    < self.diagnostics_min_wall_s):
                return
            self._last_diag_wall = now
            if self._wall_start is None:
                self._wall_start = now
            self.diagnostics_exporter.write({
                "type": "sample",
                "tick": self._tick,
                "t_s": round(now - self._wall_start, 6),
                "metrics": OBS.diagnostics.flat(),
            })

    def _flat_view(self) -> dict:
        registry = self.registry
        if registry is None:
            from repro.obs import OBS
            registry = OBS.registry
        return registry.flat()

    def _emit(self, tick: int, t_s: float,
              metrics: dict | None = None) -> None:
        self.exporter.write({
            "type": "sample",
            "tick": tick,
            "t_s": t_s,
            "metrics": self._flat_view() if metrics is None else metrics,
        })

    # -- lifecycle ----------------------------------------------------

    @property
    def samples_emitted(self) -> int:
        return self._tick

    def close(self) -> None:
        """Footer and close both streams (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self.exporter.close()
        if self.diagnostics_exporter is not None:
            self.diagnostics_exporter.close()


class NullTimeSeries:
    """The disabled sampler: every method is a no-op."""

    enabled = False
    closed = True
    samples_emitted = 0

    def advance(self, delta_s: float) -> int:
        return 0

    def sample_wall(self) -> None:
        pass

    def sample_diagnostics(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TIMESERIES = NullTimeSeries()


class ProgressTracker:
    """Stage progress gauges + simulated-clock ticks, one per survey stage.

    Writes four gauges into the *result* registry (so they export with
    ``--metrics-out`` and show up in every time-series sample)::

        run.progress.units_total{stage=...}
        run.progress.units_done{stage=...}
        run.progress.elapsed_s{stage=...}   # simulated seconds
        run.progress.eta_s{stage=...}       # naive linear projection

    and advances ``OBS.timeseries`` by each unit's simulated latency.
    All arithmetic is per-unit floats accumulated in the caller's merge
    order, which every execution path (serial, shard pool, stealing
    scheduler) performs in global unit order — the byte-identity
    contract's load-bearing detail.

    ``done`` may start nonzero for resumed runs (restored units are
    counted as done but contribute no simulated time, mirroring how
    restored units never re-merge their metrics).
    """

    __slots__ = ("stage", "total", "done", "elapsed_s")

    def __init__(self, stage: str, total: int, done: int = 0) -> None:
        self.stage = stage
        self.total = total
        self.done = done
        self.elapsed_s = 0.0
        self._publish()

    def step(self, latency_ms: float = 0.0) -> None:
        """Record one finished unit with its simulated latency."""
        self.done += 1
        delta_s = latency_ms / 1000.0
        self.elapsed_s += delta_s
        self._publish()
        from repro.obs import OBS
        OBS.timeseries.advance(delta_s)

    def _publish(self) -> None:
        from repro.obs import OBS
        registry = OBS.registry
        if not registry.enabled:
            return
        stage = self.stage
        registry.gauge("run.progress.units_total", stage=stage).set(
            self.total)
        registry.gauge("run.progress.units_done", stage=stage).set(
            self.done)
        registry.gauge("run.progress.elapsed_s", stage=stage).set(
            round(self.elapsed_s, 6))
        remaining = max(self.total - self.done, 0)
        eta = (self.elapsed_s / self.done * remaining
               if self.done else 0.0)
        registry.gauge("run.progress.eta_s", stage=stage).set(
            round(eta, 6))


class WallClockTicker:
    """Background thread driving wall-clock samples (``repro serve``).

    Calls ``sampler.sample_wall()`` and ``sampler.sample_diagnostics()``
    every ``interval_s`` real seconds until :meth:`stop`.  The thread is
    a daemon, so a hard kill never hangs shutdown; a graceful drain
    calls :meth:`stop` first so the final footer lands.
    """

    def __init__(self, sampler: TimeSeriesSampler, *,
                 interval_s: float = DEFAULT_TICK_INTERVAL_S) -> None:
        self.sampler = sampler
        self.interval_s = interval_s
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="obs-wall-ticker", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self.sampler.sample_wall()
            self.sampler.sample_diagnostics()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
