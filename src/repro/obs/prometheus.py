"""Prometheus text exposition for the metrics registry, plus a strict parser.

The serving daemon's ``/metricz`` endpoint has always returned the flat
JSON view; real scrape pipelines speak the Prometheus text format
instead, so ``/metricz?format=prometheus`` renders the same registry
through :func:`render_prometheus_text`.  The renderer maps the repo's
instrument model onto the classic exposition format:

* dotted names sanitize to underscore names (``serve.latency_ms`` →
  ``serve_latency_ms``);
* counters gain the conventional ``_total`` suffix;
* histograms expand to cumulative ``_bucket{le=...}`` series (including
  the mandatory ``+Inf`` bucket), ``_sum``, and ``_count`` —
  translating the registry's per-bucket counts into Prometheus's
  cumulative convention.

:func:`parse_prometheus_text` is the deliberately strict inverse used
by tests and the CI serve-smoke job: it rejects malformed sample lines,
samples without a preceding ``# TYPE``, duplicate ``TYPE`` lines,
non-cumulative histogram buckets, and a missing ``+Inf`` bucket — so
"the endpoint parses" is a real guarantee, not a ``grep``.

>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("serve.requests", route="/v1/match").inc(3)
>>> text = render_prometheus_text(registry)
>>> print(text, end="")
# HELP serve_requests_total repro counter serve.requests
# TYPE serve_requests_total counter
serve_requests_total{route="/v1/match"} 3
>>> families = parse_prometheus_text(text)
>>> families["serve_requests_total"]["type"]
'counter'
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "render_prometheus_text",
    "parse_prometheus_text",
    "PrometheusFormatError",
]


class PrometheusFormatError(ValueError):
    """Raised by :func:`parse_prometheus_text` for malformed exposition."""


_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _family_name(name: str, kind: str) -> str:
    sanitized = _SANITIZE.sub("_", name)
    if not _METRIC_NAME.fullmatch(sanitized):
        sanitized = "_" + sanitized
    if kind == "counter" and not sanitized.endswith("_total"):
        sanitized += "_total"
    return sanitized


def _escape_label(value: object) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: dict, extra: list[tuple[str, str]] = ()) -> str:
    pairs = [(key, _escape_label(labels[key])) for key in labels]
    pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + inner + "}"


def _format_value(value: object) -> str:
    if isinstance(value, bool):  # pragma: no cover - no bool metrics
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)  # type: ignore[arg-type]
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


def _format_le(bound: object) -> str:
    if bound == "+inf":
        return "+Inf"
    return _format_value(bound)


def render_prometheus_text(registry: "MetricsRegistry") -> str:
    """Render every instrument in ``registry`` as Prometheus text.

    Families appear in the registry's deterministic sample order; two
    identical registries render byte-identically.  Raises
    :class:`ValueError` if two differently-typed instruments sanitize
    to the same family name.
    """
    lines: list[str] = []
    family_types: dict[str, str] = {}
    for record in registry.snapshot():
        kind = record["type"]
        family = _family_name(record["name"], kind)
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}[kind]
        seen = family_types.get(family)
        if seen is None:
            family_types[family] = prom_type
            lines.append(
                f"# HELP {family} repro {prom_type} {record['name']}")
            lines.append(f"# TYPE {family} {prom_type}")
        elif seen != prom_type:
            raise ValueError(
                f"metric family {family!r} rendered with conflicting "
                f"types {seen!r} and {prom_type!r}")
        labels = record.get("labels") or {}
        if kind == "histogram":
            cumulative = 0
            for bucket in record["buckets"]:
                cumulative += bucket["count"]
                label_str = _format_labels(
                    labels, [("le", _format_le(bucket["le"]))])
                lines.append(
                    f"{family}_bucket{label_str} {cumulative}")
            label_str = _format_labels(labels)
            lines.append(
                f"{family}_sum{label_str} "
                f"{_format_value(record['sum'])}")
            lines.append(
                f"{family}_count{label_str} {record['count']}")
        else:
            label_str = _format_labels(labels)
            lines.append(
                f"{family}{label_str} "
                f"{_format_value(record['value'])}")
    return "".join(line + "\n" for line in lines)


def _parse_labels(raw: str | None, lineno: int) -> dict[str, str]:
    if not raw:
        return {}
    labels: dict[str, str] = {}
    for part in raw.rstrip(",").split(","):
        match = _LABEL_PAIR.match(part.strip())
        if match is None:
            raise PrometheusFormatError(
                f"line {lineno}: malformed label pair {part!r}")
        key = match.group("key")
        if key in labels:
            raise PrometheusFormatError(
                f"line {lineno}: duplicate label {key!r}")
        # Single-pass unescape: sequential .replace() calls would turn
        # a literal backslash-n (escaped as \\n) into a newline.
        labels[key] = re.sub(
            r"\\(.)",
            lambda m: "\n" if m.group(1) == "n" else m.group(1),
            match.group("value"))
    return labels


def _parse_value(raw: str, lineno: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError as exc:
        raise PrometheusFormatError(
            f"line {lineno}: invalid sample value {raw!r}") from exc


def _resolve_family(name: str, families: dict) -> str | None:
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in families and families[base]["type"] in (
                    "histogram", "summary"):
                return base
    return None


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Strictly parse Prometheus text exposition into families.

    Returns ``{family_name: {"type": ..., "samples": [(sample_name,
    labels_dict, value), ...]}}``.  Raises
    :class:`PrometheusFormatError` on any deviation from the format:
    trailing garbage, samples with no declared type, duplicate ``TYPE``
    lines, non-cumulative or ``+Inf``-less histograms, and
    ``_count``/``+Inf`` disagreement.
    """
    if text and not text.endswith("\n"):
        raise PrometheusFormatError("exposition must end with a newline")
    families: dict[str, dict] = {}
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if not parts or not _METRIC_NAME.fullmatch(parts[0]):
                raise PrometheusFormatError(
                    f"line {lineno}: malformed HELP line")
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2 or not _METRIC_NAME.fullmatch(parts[0]):
                raise PrometheusFormatError(
                    f"line {lineno}: malformed TYPE line")
            name, prom_type = parts
            if prom_type not in _VALID_TYPES:
                raise PrometheusFormatError(
                    f"line {lineno}: unknown metric type {prom_type!r}")
            if name in families:
                raise PrometheusFormatError(
                    f"line {lineno}: duplicate TYPE for {name!r}")
            families[name] = {"type": prom_type, "samples": []}
            continue
        if line.startswith("#"):
            # Arbitrary comments are legal in the exposition format.
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise PrometheusFormatError(
                f"line {lineno}: malformed sample line {line!r}")
        name = match.group("name")
        family = _resolve_family(name, families)
        if family is None:
            raise PrometheusFormatError(
                f"line {lineno}: sample {name!r} has no preceding "
                "# TYPE declaration")
        labels = _parse_labels(match.group("labels"), lineno)
        value = _parse_value(match.group("value"), lineno)
        families[family]["samples"].append((name, labels, value))
    for family, info in families.items():
        if info["type"] == "histogram":
            _validate_histogram(family, info["samples"])
    return families


def _series_key(labels: dict[str, str]) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def _validate_histogram(family: str, samples: list) -> None:
    series: dict[tuple, dict] = {}
    for name, labels, value in samples:
        entry = series.setdefault(
            _series_key(labels),
            {"buckets": [], "sum": None, "count": None})
        if name.endswith("_bucket"):
            if "le" not in labels:
                raise PrometheusFormatError(
                    f"{family}: bucket sample without an 'le' label")
            entry["buckets"].append((labels["le"], value))
        elif name.endswith("_sum"):
            entry["sum"] = value
        elif name.endswith("_count"):
            entry["count"] = value
    for key, entry in series.items():
        buckets = entry["buckets"]
        if not buckets:
            raise PrometheusFormatError(
                f"{family}{dict(key)}: histogram series has no buckets")
        if buckets[-1][0] != "+Inf":
            raise PrometheusFormatError(
                f"{family}{dict(key)}: final bucket must be le=\"+Inf\"")
        previous = -math.inf
        for le, value in buckets:
            if value < previous:
                raise PrometheusFormatError(
                    f"{family}{dict(key)}: bucket counts are not "
                    f"cumulative at le={le!r}")
            previous = value
        if entry["count"] is None or entry["sum"] is None:
            raise PrometheusFormatError(
                f"{family}{dict(key)}: missing _count or _sum sample")
        if buckets[-1][1] != entry["count"]:
            raise PrometheusFormatError(
                f"{family}{dict(key)}: +Inf bucket ({buckets[-1][1]}) "
                f"disagrees with _count ({entry['count']})")
