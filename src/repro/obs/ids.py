"""Deterministic identities for runs and spans.

Cross-worker trace correlation needs IDs that do not depend on *which
process* recorded a span, on wall-clock time, or on scheduling order —
otherwise a pooled survey could never reassemble one coherent trace, let
alone a byte-identical one for every ``--workers`` count.  Both ID kinds
here are therefore pure functions of structure:

* a **run ID** is derived from the run's configuration (command, seed,
  scale knobs — never from execution details like worker count or
  output paths), so re-running the same study yields the same ID and
  two exports of one run are trivially correlatable;
* a **span ID** is derived from ``(parent_id, name, ordinal)`` — the
  span's position in the call tree — so a worker that crawls unit 17
  produces exactly the span IDs the one-worker run produces for unit
  17, and the parent can stitch shard traces back together by ID alone.

>>> derive_span_id("", "survey.run", "0")
'a540c23315ee1805'
>>> derive_span_id("", "survey.run", "0") == \\
...     derive_span_id("", "survey.run", "0")
True
>>> derive_span_id("", "survey.run", "1") != \\
...     derive_span_id("", "survey.run", "0")
True

IDs are 16 lowercase hex characters (64 bits of SHA-256): collisions
inside one trace (thousands of spans) are vanishingly unlikely, and the
short form keeps JSONL artifacts readable.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["derive_run_id", "derive_span_id", "ROOT_PARENT_ID"]

#: The ``parent_id`` of a top-level span (no parent).
ROOT_PARENT_ID = ""

_ID_HEX_CHARS = 16


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[
        :_ID_HEX_CHARS]


def derive_run_id(identity: dict) -> str:
    """The run ID for a run whose configuration is ``identity``.

    ``identity`` should contain what makes the run *the same run* when
    repeated — command name, seed, scale parameters — and exclude
    execution details (worker count, checkpoint paths) that may change
    between byte-identical runs.  Keys are canonicalised (sorted, JSON)
    so dict ordering never leaks into the ID.

    >>> derive_run_id({"command": "survey", "seed": 2015}) == \\
    ...     derive_run_id({"seed": 2015, "command": "survey"})
    True
    """
    canonical = json.dumps(identity, sort_keys=True, ensure_ascii=False,
                           default=str)
    return _digest("run\x00" + canonical)


def derive_span_id(parent_id: str, name: str, ordinal: int | str) -> str:
    """The span ID for the ``ordinal``-th child named ``name``.

    ``ordinal`` is the span's birth index under its parent (the
    tracer's per-parent child counter).  Root spans use the tracer's
    root ordinal namespace — the shared-nothing executor namespaces it
    by global unit index (``"17:0"``), which is what makes a unit's
    span IDs independent of the worker that ran it.
    """
    return _digest(f"span\x00{parent_id}\x00{name}\x00{ordinal}")
