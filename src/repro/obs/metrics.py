"""Metric instruments: counters, gauges, and fixed-bucket histograms.

The registry is deliberately tiny — the survey consults the engine tens
of thousands of times per crawl, so an instrument lookup must be one
dict probe and an update must be one attribute bump.  Three instrument
kinds cover everything the pipeline needs:

* :class:`Counter` — a monotonically increasing event count
  (``filters.index.probes``, ``web.crawl.outcomes``);
* :class:`Gauge` — a point-in-time value set by the producer
  (``filters.index.size``);
* :class:`Histogram` — a distribution over *fixed* bucket boundaries,
  chosen at registration time so two runs always bucket identically
  (``web.crawl.latency_ms``).

Instruments are identified by a dotted lowercase name plus an optional
set of label key/values (see ``docs/OBSERVABILITY.md`` for the naming
conventions):

>>> registry = MetricsRegistry()
>>> registry.counter("filters.engine.verdicts", verdict="block").inc()
>>> registry.counter("filters.engine.verdicts", verdict="block").inc(2)
>>> registry.counter("filters.engine.verdicts", verdict="block").value
3

The module also provides the *null* registry: a shared, always-disabled
registry whose instruments discard every update.  Instrumented code
never needs to branch per update — it checks one ``enabled`` flag, and
even an unguarded update against the null registry is a no-op:

>>> NULL_REGISTRY.counter("anything").inc()
>>> NULL_REGISTRY.samples()
[]
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram boundaries (upper-inclusive edges) in milliseconds —
#: tuned for crawl latencies, which span sub-ms cache hits to multi-second
#: backoff chains.  The final implicit bucket is ``+inf``.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0,
)

#: Canonical label encoding: a sorted tuple of ``(key, value)`` pairs.
Labels = tuple[tuple[str, object], ...]


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {dict(self.labels)}, {self.value})"


class Gauge:
    """A point-in-time value (sizes, ratios, configuration)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {dict(self.labels)}, {self.value})"


class Histogram:
    """A distribution over fixed, registration-time bucket boundaries.

    ``bounds`` are upper-inclusive edges; observations beyond the last
    edge land in an implicit ``+inf`` bucket, so ``len(counts) ==
    len(bounds) + 1`` always holds.

    >>> h = Histogram("lat", bounds=(10.0, 100.0))
    >>> for v in (3, 30, 300):
    ...     h.observe(v)
    >>> h.counts, h.count, h.sum
    ([1, 1, 1], 3, 333)
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, labels: Labels = (),
                 bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds: tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram bounds must be strictly increasing: "
                f"{self.bounds}")
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: int | float = 0

    def observe(self, value: int | float) -> None:
        # bisect_left makes each bound upper-inclusive: observe(10) with
        # bounds (10, 100) lands in the first bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        The true value is only known to bucket resolution, so the
        estimate interpolates linearly within the bucket containing the
        ``q``-th observation, assuming observations are uniform inside
        it.  **Error bound:** the result lies within that bucket, so the
        absolute error is at most the bucket's width.  Two edge rules
        keep the estimate finite and conservative: the first bucket's
        lower edge is taken as ``0.0`` (every pipeline histogram
        measures a non-negative quantity), and a percentile landing in
        the implicit ``+inf`` bucket clamps to the last finite bound.

        >>> h = Histogram("lat", bounds=(10.0, 100.0))
        >>> for v in (2, 4, 6, 8):
        ...     h.observe(v)
        >>> h.percentile(50)
        5.0
        >>> h.percentile(100)
        10.0
        >>> Histogram("empty", bounds=(10.0,)).percentile(95)
        0.0
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for slot, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                if slot >= len(self.bounds):
                    return self.bounds[-1] if self.bounds else 0.0
                lower = self.bounds[slot - 1] if slot else 0.0
                upper = self.bounds[slot]
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.bounds[-1] if self.bounds else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Histogram({self.name!r}, {dict(self.labels)}, "
                f"n={self.count}, sum={self.sum})")


class MetricsRegistry:
    """A process-local collection of named instruments.

    Accessors are get-or-create and return the *same* instrument for the
    same ``(name, labels)``, so hot paths can simply call
    ``registry.counter(name).inc()`` without caching anything:

    >>> r = MetricsRegistry()
    >>> r.counter("a").inc()
    >>> r.counter("a") is r.counter("a")
    True

    ``samples()`` returns the live instruments in a deterministic order
    (sorted by kind, name, labels), which keeps exports and rendered
    tables diff-friendly across runs.
    """

    #: Instrumented code checks this flag once per event-site; the null
    #: registry overrides it to ``False``.
    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, "c",
               tuple(sorted(labels.items())) if labels else ())
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Counter(name, key[2])
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, "g",
               tuple(sorted(labels.items())) if labels else ())
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Gauge(name, key[2])
        return metric  # type: ignore[return-value]

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        key = (name, "h",
               tuple(sorted(labels.items())) if labels else ())
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(name, key[2],
                                                    bounds=bounds)
        return metric  # type: ignore[return-value]

    def samples(self) -> list[Counter | Gauge | Histogram]:
        """Live instruments, deterministically ordered.

        The order is ``(name, kind, labels)`` with label sets compared
        as sorted ``(key, str(value))`` pairs — a pure function of the
        instrument identities, so two registries holding the same
        instruments (however they were populated) always enumerate, and
        therefore export and render, identically.
        """
        def order(key: tuple) -> tuple:
            name, kind, labels = key
            return (name, kind,
                    tuple((k, str(v)) for k, v in labels))

        return [self._metrics[key]
                for key in sorted(self._metrics, key=order)]

    def snapshot(self) -> list[dict]:
        """JSON-ready records, one per instrument (exporter format)."""
        records: list[dict] = []
        for metric in self.samples():
            record: dict = {
                "type": metric.kind,
                "name": metric.name,
                "labels": {k: v for k, v in metric.labels},
            }
            if isinstance(metric, Histogram):
                record["count"] = metric.count
                record["sum"] = metric.sum
                record["buckets"] = [
                    {"le": bound, "count": count}
                    for bound, count in zip(
                        list(metric.bounds) + ["+inf"], metric.counts)
                ]
            else:
                record["value"] = metric.value
            records.append(record)
        return records

    def flat(self) -> dict[str, int | float]:
        """A flat ``name{labels} -> value`` view for summary tables.

        Histograms flatten to ``.count``, ``.mean``, and estimated
        ``.p50``/``.p95``/``.p99`` entries (see
        :meth:`Histogram.percentile` for the error bound); counters and
        gauges keep their raw value.  This is also the key space
        ``repro obs diff`` compares two runs over.
        """
        out: dict[str, int | float] = {}
        for metric in self.samples():
            label = metric.name
            if metric.labels:
                inner = ",".join(f"{k}={v}" for k, v in metric.labels)
                label = f"{metric.name}{{{inner}}}"
            if isinstance(metric, Histogram):
                out[f"{label}.count"] = metric.count
                out[f"{label}.mean"] = round(metric.mean, 3)
                for q in (50, 95, 99):
                    out[f"{label}.p{q}"] = round(metric.percentile(q), 3)
            else:
                out[label] = metric.value
        return out

    def merge(self, source: "MetricsRegistry | list[dict]") -> None:
        """Fold another registry's instruments into this one.

        ``source`` may be a :class:`MetricsRegistry` or the list of
        records its :meth:`snapshot` produced — the form worker
        processes send home, since snapshots are plain JSON.  Counters
        add, gauges take the incoming value (last writer wins), and
        histograms add bucket counts, observation counts, and sums;
        histogram bucket bounds must match or :class:`ValueError` is
        raised, because summing differently bucketed distributions
        would silently misreport them.

        Merging per-unit snapshots in one fixed global order makes the
        result independent of which worker produced which snapshot —
        float sums are reassembled in the same order every time, which
        is what keeps ``--metrics-out`` byte-identical across
        ``--workers`` counts (see :mod:`repro.parallel`).

        >>> a, b = MetricsRegistry(), MetricsRegistry()
        >>> a.counter("events").inc(2)
        >>> b.counter("events").inc(3)
        >>> b.histogram("lat", bounds=(10.0,)).observe(7)
        >>> a.merge(b)
        >>> a.counter("events").value
        5
        >>> a.histogram("lat", bounds=(10.0,)).counts
        [1, 0]
        """
        if not self.enabled:  # null registries discard merges too
            return
        records = (source.snapshot()
                   if isinstance(source, MetricsRegistry) else source)
        for record in records:
            kind = record["type"]
            name = record["name"]
            labels = record.get("labels") or {}
            if kind == "counter":
                self.counter(name, **labels).inc(record["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(record["value"])
            elif kind == "histogram":
                bounds = tuple(bucket["le"]
                               for bucket in record["buckets"][:-1])
                histogram = self.histogram(name, bounds=bounds, **labels)
                if histogram.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ: "
                        f"{histogram.bounds} vs {bounds}")
                for slot, bucket in enumerate(record["buckets"]):
                    histogram.counts[slot] += bucket["count"]
                histogram.count += record["count"]
                histogram.sum += record["sum"]
            else:
                raise ValueError(f"cannot merge metric kind {kind!r}")

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


class _NullInstrument:
    """One shared instrument that satisfies every update API as a no-op."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels: Labels = ()
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every accessor returns the null instrument.

    Shared process-wide as :data:`NULL_REGISTRY`; instrumented code must
    not mutate it, and it records nothing.
    """

    enabled = False

    def counter(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str,  # type: ignore[override]
                  bounds: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: object):
        return _NULL_INSTRUMENT


NULL_REGISTRY = NullRegistry()
