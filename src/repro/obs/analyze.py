"""Trace and metrics analysis over exported observability artifacts.

Everything here works from *records* — the JSON shapes
:mod:`repro.obs.export` writes — never from live registries or tracers,
so any analysis that runs inside a live process reproduces identically
from the JSONL artifact alone (the ``repro obs`` CLI contract).  The
capabilities:

* :func:`load_artifact` — read one artifact back in: a checksummed
  JSONL export (``--metrics-out``/``--trace``) or a committed
  ``BENCH_*.json`` benchmark file, normalised to one
  :class:`RunArtifact`;
* :func:`load_timeseries` / :func:`load_flight` — the PR-10 telemetry
  artifacts: rotated tick segments (+ ``.diag`` sidecar) and flight
  dumps, with torn-tail tolerance matching the checkpoint journal;
* :func:`build_span_tree` — reconstruct the span forest from records in
  *any* order using ``span_id``/``parent_id`` links (positionally, via
  depth + start order, when IDs are absent);
* per-node **self time vs. cumulative time** (:class:`SpanNode`) and
  the :func:`critical_path` through the heaviest children;
* :func:`slowest_spans` — the top-N spans by self or cumulative time;
* :func:`percentile_from_buckets` + :func:`flatten` +
  :func:`diff_runs` — the flat metric view two runs are compared over,
  with a relative tolerance gate for CI.

>>> records = [
...     {"type": "span", "name": "run", "span_id": "a", "parent_id": "",
...      "depth": 0, "start_s": 0.0, "duration_ms": 10.0, "attrs": {}},
...     {"type": "span", "name": "step", "span_id": "b", "parent_id": "a",
...      "depth": 1, "start_s": 0.0, "duration_ms": 4.0, "attrs": {}},
... ]
>>> roots = build_span_tree(records)
>>> [(n.name, n.cumulative_ms, n.self_ms) for n in roots[0].walk()]
[('run', 10.0, 6.0), ('step', 4.0, 4.0)]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterator

__all__ = [
    "RunArtifact",
    "SpanNode",
    "Delta",
    "DiffReport",
    "TimeSeries",
    "FlightDump",
    "load_artifact",
    "load_timeseries",
    "load_flight",
    "build_span_tree",
    "critical_path",
    "slowest_spans",
    "percentile_from_buckets",
    "flatten",
    "diff_runs",
]

_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})


# -- artifacts -------------------------------------------------------------

@dataclass(slots=True)
class RunArtifact:
    """One observability artifact, normalised for analysis.

    ``metrics``/``spans`` hold the raw records; ``run_id`` comes from
    the run-ledger header (``None`` for artifacts without one, e.g.
    committed benchmark JSON).  ``flat`` is the comparable
    ``name -> value`` view :func:`diff_runs` consumes.
    """

    path: str
    run_id: str | None = None
    metrics: list[dict] = field(default_factory=list)
    spans: list[dict] = field(default_factory=list)
    flat: dict[str, float] = field(default_factory=dict)


def load_artifact(path: str) -> RunArtifact:
    """Read one artifact: a JSONL export or a benchmark JSON file.

    JSONL exports are verified via their CRC footer
    (:func:`repro.state.atomic.read_jsonl`); a file that is not
    line-oriented JSON falls back to being parsed as one JSON document
    whose numeric leaves are flattened into dotted metric names — which
    is exactly the shape of the committed ``BENCH_*.json`` artifacts,
    so a run can be diffed directly against a committed baseline.
    """
    from repro.state.atomic import ArtifactError, read_jsonl

    try:
        records = read_jsonl(path)
    except (ArtifactError, ValueError):
        # A truncated JSONL export reaches this fallback too, and then
        # fails the whole-document parse as well; fold that failure
        # into ArtifactError so the CLI reports one clean line naming
        # the file instead of a json.JSONDecodeError traceback.
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except ValueError:
            raise ArtifactError(
                f"{path}: neither a valid JSONL export (bad or missing "
                f"integrity footer) nor a JSON document") from None
        if not isinstance(document, dict):
            raise ArtifactError(
                f"{path}: neither a JSONL export nor a JSON document")
        return RunArtifact(path=path, flat=_flatten_document(document))

    artifact = RunArtifact(path=path)
    for record in records:
        kind = record.get("type")
        if kind == "run":
            artifact.run_id = record.get("run_id")
        elif kind == "span":
            artifact.spans.append(record)
        elif kind in _METRIC_KINDS:
            artifact.metrics.append(record)
    artifact.flat = flatten(artifact.metrics)
    return artifact


def _flatten_document(document: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested JSON document, dotted-key flattened."""
    flat: dict[str, float] = {}
    for key, value in document.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_document(value, prefix=f"{name}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = value
    return flat


# -- telemetry artifacts ---------------------------------------------------

@dataclass(slots=True)
class TimeSeries:
    """One time-series export (``--timeseries-out``), loaded back in.

    ``samples`` are the deterministic tick records (main segments);
    ``diagnostics`` come from the wall-clock ``.diag`` sidecar when one
    exists.  ``complete`` is True when every main segment verified
    strictly — a crashed or killed run leaves a torn final segment,
    which the tolerant reader recovers (``complete=False``) and the
    drained-daemon chaos test forbids (``strict=True`` raises instead).
    """

    path: str
    run_id: str | None = None
    samples: list[dict] = field(default_factory=list)
    diagnostics: list[dict] = field(default_factory=list)
    complete: bool = True

    def gauge_series(self, name: str) -> list[tuple[float, float]]:
        """``(t_s, value)`` per tick for one flat metric name."""
        series: list[tuple[float, float]] = []
        for sample in self.samples:
            value = sample.get("metrics", {}).get(name)
            if value is not None:
                series.append((sample["t_s"], value))
        return series


def load_timeseries(path: str, *, strict: bool = False) -> TimeSeries:
    """Read a rotated time-series export plus its ``.diag`` sidecar.

    ``strict=True`` refuses a torn final segment (the no-torn-tail
    assertion after a graceful drain); the default tolerates it like a
    checkpoint journal tail.  The sidecar is always read tolerantly —
    diagnostics are wall-clock best-effort by design — and a missing
    sidecar is simply an empty diagnostics list.
    """
    from repro.obs.export import list_segments, read_rotated_jsonl
    from repro.state.atomic import ArtifactError

    complete = True
    if strict:
        records = read_rotated_jsonl(path, strict=True)
    else:
        try:
            records = read_rotated_jsonl(path, strict=True)
        except ArtifactError:
            records = read_rotated_jsonl(path)
            complete = False
    series = TimeSeries(path=path, complete=complete)
    for record in records:
        kind = record.get("type")
        if kind == "run":
            series.run_id = record.get("run_id", series.run_id)
        elif kind == "sample":
            series.samples.append(record)
    diag_base = f"{path}.diag"
    if list_segments(diag_base):
        for record in read_rotated_jsonl(diag_base):
            if record.get("type") == "sample":
                series.diagnostics.append(record)
    return series


@dataclass(slots=True)
class FlightDump:
    """One flight-recorder dump artifact, loaded back in."""

    path: str
    reason: str
    capacity: int
    dropped: int
    run_id: str | None = None
    events: list[dict] = field(default_factory=list)


def load_flight(path: str) -> FlightDump:
    """Read one flight dump; verifies the CRC footer strictly.

    Flight dumps are written atomically (never torn), so unlike
    time-series segments there is no tolerant mode — a bad footer means
    the artifact is not trustworthy and the loader says so.
    """
    from repro.state.atomic import ArtifactError, read_jsonl

    records = read_jsonl(path)
    if not records or records[0].get("type") != "flight":
        raise ArtifactError(
            f"{path}: not a flight dump (missing 'flight' header record)")
    header = records[0]
    return FlightDump(
        path=path,
        reason=header.get("reason", ""),
        capacity=header.get("capacity", 0),
        dropped=header.get("dropped", 0),
        run_id=header.get("run_id"),
        events=[record for record in records[1:]
                if record.get("type") == "event"])


# -- span trees ------------------------------------------------------------

@dataclass(slots=True)
class SpanNode:
    """One span in a reconstructed trace tree."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def attrs(self) -> dict:
        return self.record.get("attrs", {})

    @property
    def cumulative_ms(self) -> float:
        """Wall time of the whole subtree (the span's own duration)."""
        return self.record["duration_ms"]

    @property
    def self_ms(self) -> float:
        """Time spent in this span outside any child span.

        Clamped at zero: adopted cross-process spans time children on a
        different (simulated) clock, so a parent measured on wall time
        can nominally under-run its children.
        """
        return max(0.0, self.cumulative_ms
                   - sum(child.cumulative_ms for child in self.children))

    def walk(self) -> Iterator["SpanNode"]:
        """This node then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def _sibling_order(node: SpanNode) -> tuple:
    return (node.record.get("start_s", 0.0),
            node.record.get("span_id", ""), node.name)


def build_span_tree(records: list[dict]) -> list[SpanNode]:
    """Reconstruct the span forest; returns the root nodes.

    Reconstruction is ID-based — each record's ``parent_id`` either
    names another record's ``span_id`` or a span outside the artifact
    (making the record a root) — so records may arrive in any order.
    Siblings are ordered by ``(start_s, span_id)``, which is the start
    order for same-clock siblings and still deterministic for stitched
    cross-clock ones.  Records predating span IDs fall back to the
    positional (depth + file order) reconstruction.
    """
    spans = [record for record in records
             if record.get("type", "span") == "span"]
    if not spans:
        return []
    if not all(record.get("span_id") for record in spans):
        return _build_positional(spans)
    by_id = {record["span_id"]: SpanNode(record) for record in spans}
    roots: list[SpanNode] = []
    for node in by_id.values():
        parent = by_id.get(node.record.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in by_id.values():
        node.children.sort(key=_sibling_order)
    roots.sort(key=_sibling_order)
    return roots


def _build_positional(spans: list[dict]) -> list[SpanNode]:
    """Depth + order reconstruction for records without IDs."""
    roots: list[SpanNode] = []
    stack: list[SpanNode] = []
    for record in spans:
        node = SpanNode(record)
        depth = record.get("depth", 0)
        del stack[depth:]
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def critical_path(roots: list[SpanNode]) -> list[SpanNode]:
    """The heaviest root-to-leaf chain through the span forest.

    Starting from the most expensive root, repeatedly descend into the
    child with the largest cumulative time.  The result is the chain of
    spans an optimisation must shorten to move the run's end-to-end
    time — each node's ``self_ms`` is its own contribution.
    """
    if not roots:
        return []
    node = max(roots, key=lambda n: (n.cumulative_ms,) + _sibling_order(n))
    path = [node]
    while node.children:
        node = max(node.children,
                   key=lambda n: (n.cumulative_ms,) + _sibling_order(n))
        path.append(node)
    return path


def slowest_spans(records: list[dict], top: int = 10,
                  by: str = "cumulative") -> list[SpanNode]:
    """The ``top`` most expensive spans, by ``cumulative`` or ``self`` time."""
    if by not in ("cumulative", "self"):
        raise ValueError(f"by must be 'cumulative' or 'self', got {by!r}")
    nodes = [node for root in build_span_tree(records)
             for node in root.walk()]
    key = ((lambda n: n.self_ms) if by == "self"
           else (lambda n: n.cumulative_ms))
    nodes.sort(key=lambda n: (-key(n),) + _sibling_order(n))
    return nodes[:top]


# -- flat metric views -----------------------------------------------------

def percentile_from_buckets(buckets: list[dict], q: float) -> float:
    """:meth:`~repro.obs.metrics.Histogram.percentile` over exported buckets.

    ``buckets`` is the exported histogram shape (disjoint counts with a
    final ``+inf`` edge); the estimate and its error bound match the
    live method exactly, which is what keeps artifact-derived reports
    byte-identical to live ones.
    """
    from repro.obs.metrics import Histogram

    bounds = tuple(bucket["le"] for bucket in buckets[:-1])
    histogram = Histogram("percentile", bounds=bounds)
    for slot, bucket in enumerate(buckets):
        histogram.counts[slot] = bucket["count"]
        histogram.count += bucket["count"]
    return histogram.percentile(q)


def flatten(metric_records: list[dict]) -> dict[str, float]:
    """The comparable ``name -> value`` view of exported metric records.

    Matches :meth:`repro.obs.metrics.MetricsRegistry.flat` (histograms
    contribute ``.count``/``.mean``/``.p50``/``.p95``/``.p99``), so a
    diff against a live registry and against its export agree.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.merge([record for record in metric_records
                    if record.get("type") in _METRIC_KINDS])
    return registry.flat()


# -- run diffing -----------------------------------------------------------

@dataclass(slots=True)
class Delta:
    """One metric's change between a baseline run and a candidate run."""

    name: str
    baseline: float | None
    candidate: float | None
    #: Relative change ``(candidate - baseline) / |baseline|``; ``None``
    #: when either side is missing, ``inf`` for a zero baseline moving.
    relative: float | None
    violation: bool


@dataclass(slots=True)
class DiffReport:
    """A full two-run comparison, plus the tolerance verdict."""

    tolerance: float
    deltas: list[Delta]

    @property
    def violations(self) -> list[Delta]:
        return [delta for delta in self.deltas if delta.violation]

    @property
    def ok(self) -> bool:
        return not self.violations


def diff_runs(baseline: dict[str, float], candidate: dict[str, float],
              *, tolerance: float = 0.25,
              metrics: list[str] | None = None) -> DiffReport:
    """Compare two flat metric views under a relative tolerance.

    A metric present in both runs violates when its relative change
    exceeds ``tolerance`` in either direction; a zero-valued baseline
    counts any nonzero candidate as a violation (the relative change is
    infinite).  Metrics present in only one run are *reported* (so
    schema drift is visible) but never gate — a gate that fails on
    every newly added counter would train people to ignore it.
    ``metrics`` optionally restricts the comparison to names matching
    any of the given :mod:`fnmatch`-style patterns.

    >>> report = diff_runs({"a": 10.0, "b": 0.0}, {"a": 14.0, "b": 0.0},
    ...                    tolerance=0.25)
    >>> [(d.name, d.violation) for d in report.deltas]
    [('a', True), ('b', False)]
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")

    def selected(name: str) -> bool:
        if not metrics:
            return True
        return any(fnmatchcase(name, pattern) for pattern in metrics)

    deltas: list[Delta] = []
    for name in sorted(set(baseline) | set(candidate)):
        if not selected(name):
            continue
        a, b = baseline.get(name), candidate.get(name)
        if a is None or b is None:
            deltas.append(Delta(name, a, b, None, False))
            continue
        if a == 0:
            relative = 0.0 if b == 0 else float("inf")
        else:
            relative = (b - a) / abs(a)
        deltas.append(Delta(name, a, b, relative,
                            abs(relative) > tolerance))
    return DiffReport(tolerance=tolerance, deltas=deltas)
