"""Exporters: turn a registry + tracer into files, lists, or tables.

Three export surfaces, all driven by the same records:

* :class:`JsonLinesExporter` — one JSON object per line, metrics first
  then spans, suitable for ``jq``/pandas post-processing (this is what
  ``--metrics-out`` and ``--trace`` write);
* :class:`InMemoryExporter` — the same records as Python dicts, for
  tests and ad-hoc analysis;
* :func:`summary_table` — the human-readable "where did the time go"
  report, rendered through :mod:`repro.reporting.tables`.

Record schemas are documented in ``docs/OBSERVABILITY.md``; the short
version:

>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("filters.parse.lines", kind="comment").inc(3)
>>> InMemoryExporter().export(registry)
[{'type': 'counter', 'name': 'filters.parse.lines', \
'labels': {'kind': 'comment'}, 'value': 3}]
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = [
    "metric_records",
    "span_records",
    "InMemoryExporter",
    "JsonLinesExporter",
    "summary_table",
]


def metric_records(registry: "MetricsRegistry") -> list[dict]:
    """JSON-ready records for every instrument in ``registry``."""
    return registry.snapshot()


def span_records(tracer: "Tracer") -> list[dict]:
    """JSON-ready records for every *finished* span, in start order."""
    return [
        {
            "type": "span",
            "name": span.name,
            "depth": span.depth,
            "start_s": round(span.start, 6),
            "duration_ms": round(span.duration_ms, 3),
            "attrs": dict(span.attrs),
        }
        for span in tracer.finished_spans()
    ]


class InMemoryExporter:
    """Collects export records in a list — the test-friendly exporter."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def export(self, registry: "MetricsRegistry | None" = None,
               tracer: "Tracer | None" = None) -> list[dict]:
        if registry is not None:
            self.records.extend(metric_records(registry))
        if tracer is not None:
            self.records.extend(span_records(tracer))
        return self.records


class JsonLinesExporter:
    """Writes export records as JSON lines to ``path``.

    Each ``export`` call atomically replaces the file (an export is a
    snapshot, not an append-only log) via
    :func:`repro.state.atomic.atomic_write_jsonl`, so a crash mid-export
    can never leave a truncated, unparseable file — readers see the old
    snapshot or the new one, nothing in between.  The file ends with a
    CRC-checksummed footer record (``{"type": "footer", ...}``) that
    :func:`repro.state.atomic.read_jsonl` verifies; the ``export``
    return value counts data records only, excluding that footer.  Keys
    are emitted in a fixed order and with sorted label keys, so two
    identical runs produce byte-identical files.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def export(self, registry: "MetricsRegistry | None" = None,
               tracer: "Tracer | None" = None) -> int:
        from repro.state.atomic import atomic_write_jsonl

        records: list[dict] = []
        if registry is not None:
            records.extend(metric_records(registry))
        if tracer is not None:
            records.extend(span_records(tracer))
        return atomic_write_jsonl(self.path, records)


def summary_table(registry: "MetricsRegistry | None" = None,
                  tracer: "Tracer | None" = None,
                  title: str = "Observability summary") -> str:
    """The one-screen human-readable report (spans, then metrics)."""
    from repro.reporting.tables import render_metrics_summary

    return render_metrics_summary(registry, tracer, title=title)
