"""Exporters: turn a registry + tracer into files, lists, or tables.

Three export surfaces, all driven by the same records:

* :class:`JsonLinesExporter` — one JSON object per line, the run-ledger
  header first (when a run ID is known), then metrics, then spans —
  suitable for ``jq``/pandas post-processing (this is what
  ``--metrics-out`` and ``--trace`` write) and the input format of the
  ``repro obs`` analysis CLI;
* :class:`InMemoryExporter` — the same records as Python dicts, for
  tests and ad-hoc analysis;
* :func:`summary_table` — the human-readable "where did the time go"
  report, rendered through :mod:`repro.reporting.tables`.

Record schemas are documented in ``docs/OBSERVABILITY.md``; the short
version:

>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("filters.parse.lines", kind="comment").inc(3)
>>> InMemoryExporter().export(registry)
[{'type': 'counter', 'name': 'filters.parse.lines', \
'labels': {'kind': 'comment'}, 'value': 3}]
>>> run_record("ab12cd34ef567890")
{'type': 'run', 'run_id': 'ab12cd34ef567890'}
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = [
    "metric_records",
    "span_records",
    "run_record",
    "InMemoryExporter",
    "JsonLinesExporter",
    "summary_table",
]


def metric_records(registry: "MetricsRegistry") -> list[dict]:
    """JSON-ready records for every instrument in ``registry``."""
    return registry.snapshot()


def span_records(tracer: "Tracer") -> list[dict]:
    """JSON-ready records for every *finished* span, in start order."""
    return [
        {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "start_s": round(span.start, 6),
            "duration_ms": round(span.duration_ms, 3),
            "attrs": dict(span.attrs),
        }
        for span in tracer.finished_spans()
    ]


def run_record(run_id: str, **meta: object) -> dict:
    """The run-ledger header record identifying an export's run."""
    record: dict = {"type": "run", "run_id": run_id}
    for key in sorted(meta):
        record[key] = meta[key]
    return record


class InMemoryExporter:
    """Collects export records in a list — the test-friendly exporter."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def export(self, registry: "MetricsRegistry | None" = None,
               tracer: "Tracer | None" = None) -> list[dict]:
        if registry is not None:
            self.records.extend(metric_records(registry))
        if tracer is not None:
            self.records.extend(span_records(tracer))
        return self.records


class JsonLinesExporter:
    """Writes export records as JSON lines to ``path``.

    When ``run_id`` is given (the CLI derives one per invocation — see
    :func:`repro.obs.ids.derive_run_id`), the first data record is the
    run-ledger header, so any artifact can be traced back to the run
    configuration that produced it and two artifacts can be checked for
    same-run identity before being diffed.

    Each ``export`` call atomically replaces the file (an export is a
    snapshot, not an append-only log) via
    :func:`repro.state.atomic.atomic_write_jsonl`, so a crash mid-export
    can never leave a truncated, unparseable file — readers see the old
    snapshot or the new one, nothing in between.  The file ends with a
    CRC-checksummed footer record (``{"type": "footer", ...}``) that
    :func:`repro.state.atomic.read_jsonl` verifies; the ``export``
    return value counts data records only, excluding that footer.  Keys
    are emitted in a fixed order and with sorted label keys, so two
    identical runs produce byte-identical files.
    """

    def __init__(self, path: str, *, run_id: str | None = None) -> None:
        self.path = path
        self.run_id = run_id

    def export(self, registry: "MetricsRegistry | None" = None,
               tracer: "Tracer | None" = None) -> int:
        from repro.state.atomic import atomic_write_jsonl

        records: list[dict] = []
        if self.run_id is not None:
            records.append(run_record(self.run_id))
        if registry is not None:
            records.extend(metric_records(registry))
        if tracer is not None:
            records.extend(span_records(tracer))
        return atomic_write_jsonl(self.path, records)


def summary_table(registry: "MetricsRegistry | None" = None,
                  tracer: "Tracer | None" = None,
                  title: str = "Observability summary",
                  run_id: str | None = None) -> str:
    """The one-screen human-readable report (spans, then metrics)."""
    from repro.reporting.tables import render_metrics_summary

    return render_metrics_summary(registry, tracer, title=title,
                                  run_id=run_id)
