"""Exporters: turn a registry + tracer into files, lists, or tables.

Three export surfaces, all driven by the same records:

* :class:`JsonLinesExporter` — one JSON object per line, the run-ledger
  header first (when a run ID is known), then metrics, then spans —
  suitable for ``jq``/pandas post-processing (this is what
  ``--metrics-out`` and ``--trace`` write) and the input format of the
  ``repro obs`` analysis CLI;
* :class:`InMemoryExporter` — the same records as Python dicts, for
  tests and ad-hoc analysis;
* :func:`summary_table` — the human-readable "where did the time go"
  report, rendered through :mod:`repro.reporting.tables`.

Record schemas are documented in ``docs/OBSERVABILITY.md``; the short
version:

>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("filters.parse.lines", kind="comment").inc(3)
>>> InMemoryExporter().export(registry)
[{'type': 'counter', 'name': 'filters.parse.lines', \
'labels': {'kind': 'comment'}, 'value': 3}]
>>> run_record("ab12cd34ef567890")
{'type': 'run', 'run_id': 'ab12cd34ef567890'}
"""

from __future__ import annotations

import json
import os
import zlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = [
    "metric_records",
    "span_records",
    "run_record",
    "InMemoryExporter",
    "InMemoryTimeSeries",
    "JsonLinesExporter",
    "RotatingJsonlExporter",
    "segment_path",
    "list_segments",
    "read_rotated_jsonl",
    "summary_table",
    "DEFAULT_SEGMENT_BYTES",
]


def metric_records(registry: "MetricsRegistry") -> list[dict]:
    """JSON-ready records for every instrument in ``registry``."""
    return registry.snapshot()


def span_records(tracer: "Tracer") -> list[dict]:
    """JSON-ready records for every *finished* span, in start order."""
    return [
        {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "start_s": round(span.start, 6),
            "duration_ms": round(span.duration_ms, 3),
            "attrs": dict(span.attrs),
        }
        for span in tracer.finished_spans()
    ]


def run_record(run_id: str, **meta: object) -> dict:
    """The run-ledger header record identifying an export's run."""
    record: dict = {"type": "run", "run_id": run_id}
    for key in sorted(meta):
        record[key] = meta[key]
    return record


class InMemoryExporter:
    """Collects export records in a list — the test-friendly exporter."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def export(self, registry: "MetricsRegistry | None" = None,
               tracer: "Tracer | None" = None) -> list[dict]:
        if registry is not None:
            self.records.extend(metric_records(registry))
        if tracer is not None:
            self.records.extend(span_records(tracer))
        return self.records


class JsonLinesExporter:
    """Writes export records as JSON lines to ``path``.

    When ``run_id`` is given (the CLI derives one per invocation — see
    :func:`repro.obs.ids.derive_run_id`), the first data record is the
    run-ledger header, so any artifact can be traced back to the run
    configuration that produced it and two artifacts can be checked for
    same-run identity before being diffed.

    Each ``export`` call atomically replaces the file (an export is a
    snapshot, not an append-only log) via
    :func:`repro.state.atomic.atomic_write_jsonl`, so a crash mid-export
    can never leave a truncated, unparseable file — readers see the old
    snapshot or the new one, nothing in between.  The file ends with a
    CRC-checksummed footer record (``{"type": "footer", ...}``) that
    :func:`repro.state.atomic.read_jsonl` verifies; the ``export``
    return value counts data records only, excluding that footer.  Keys
    are emitted in a fixed order and with sorted label keys, so two
    identical runs produce byte-identical files.
    """

    def __init__(self, path: str, *, run_id: str | None = None) -> None:
        self.path = path
        self.run_id = run_id

    def export(self, registry: "MetricsRegistry | None" = None,
               tracer: "Tracer | None" = None) -> int:
        from repro.state.atomic import atomic_write_jsonl

        records: list[dict] = []
        if self.run_id is not None:
            records.append(run_record(self.run_id))
        if registry is not None:
            records.extend(metric_records(registry))
        if tracer is not None:
            records.extend(span_records(tracer))
        return atomic_write_jsonl(self.path, records)


#: Default rotation threshold for streamed time-series segments.
DEFAULT_SEGMENT_BYTES = 256 * 1024


def segment_path(path: str, index: int) -> str:
    """The on-disk name of rotated segment ``index`` of ``path``.

    >>> segment_path("run.ts.jsonl", 0)
    'run.ts.jsonl.000'
    """
    return f"{path}.{index:03d}"


def list_segments(path: str) -> list[str]:
    """Every existing rotated segment of ``path``, in index order.

    Only ``<path>.NNN`` all-digit suffixes count, so the ``.diag``
    diagnostics sidecar (whose segments are ``<path>.diag.NNN``) never
    leaks into the main listing.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    prefix = os.path.basename(path) + "."
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    segments = [name for name in names
                if name.startswith(prefix)
                and name[len(prefix):].isdigit()]
    return [os.path.join(directory, name)
            for name in sorted(segments)]


class RotatingJsonlExporter:
    """A streaming, size-rotating JSONL writer with per-segment footers.

    The snapshot exporters above atomically *replace* a whole file per
    export; a live time-series instead **appends** one record at a
    time, for hours, and must survive being killed mid-line.  The
    rotating exporter therefore writes straight through (flushing every
    record) and shards the stream into ``<path>.000``, ``<path>.001``,
    ... segments, rotating once a segment reaches
    ``max_segment_bytes``.  Rotation and
    :meth:`close` seal the active segment with the same CRC footer
    :func:`repro.state.atomic.atomic_write_jsonl` uses — the checksum
    is accumulated incrementally, so sealing never re-reads the file.

    Read semantics mirror the checkpoint journal's torn-tail contract
    (see :func:`read_rotated_jsonl`): every *sealed* segment verifies
    strictly; only the final, still-open segment may end in a torn line
    (the process was killed mid-write), and that tail is dropped rather
    than fatal.  Corruption anywhere else raises.

    When ``run_id`` is given each segment opens with a run-ledger
    header carrying the segment index, so any single segment is
    self-identifying.
    """

    def __init__(self, path: str, *, run_id: str | None = None,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        if max_segment_bytes <= 0:
            raise ValueError(
                f"max_segment_bytes must be positive: {max_segment_bytes}")
        self.path = path
        self.run_id = run_id
        self.max_segment_bytes = max_segment_bytes
        self.closed = False
        self._handle = None
        self._index = 0
        self._crc = 0
        self._records = 0
        self._bytes = 0

    # -- segment plumbing ---------------------------------------------

    def _open_segment(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(segment_path(self.path, self._index), "wb")
        self._crc = 0
        self._records = 0
        self._bytes = 0
        if self.run_id is not None:
            self._append(run_record(self.run_id, segment=self._index))

    def _append(self, record: dict) -> None:
        data = (json.dumps(record, ensure_ascii=False) + "\n").encode(
            "utf-8")
        self._handle.write(data)
        self._handle.flush()
        self._crc = zlib.crc32(data, self._crc)
        self._records += 1
        self._bytes += len(data)

    def _seal_segment(self) -> None:
        from repro.state.atomic import FOOTER_TYPE
        footer = {"type": FOOTER_TYPE, "records": self._records,
                  "crc32": f"{self._crc & 0xFFFFFFFF:08x}"}
        data = (json.dumps(footer, ensure_ascii=False) + "\n").encode(
            "utf-8")
        self._handle.write(data)
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - platform-dependent
            pass
        self._handle.close()
        self._handle = None

    # -- public API ---------------------------------------------------

    @property
    def segments_written(self) -> int:
        """Segments started so far (including the active one)."""
        if self._handle is None and self._bytes == 0 and self._index == 0:
            return 0
        return self._index + 1

    def write(self, record: dict) -> None:
        """Append one record, rotating first if the segment is full."""
        if self.closed:
            return
        if self._handle is None:
            self._open_segment()
        elif self._bytes >= self.max_segment_bytes:
            self._seal_segment()
            self._index += 1
            self._open_segment()
        self._append(record)

    def close(self) -> None:
        """Seal the active segment (idempotent).

        A sink that never received a record still seals one (possibly
        header-only) segment, so a clean run always leaves a complete,
        verifiable artifact.
        """
        if self.closed:
            return
        self.closed = True
        if self._handle is None:
            self._open_segment()
        self._seal_segment()


class InMemoryTimeSeries:
    """The list-backed time-series sink for tests and doctests."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.closed = False

    def write(self, record: dict) -> None:
        if not self.closed:
            self.records.append(record)

    def close(self) -> None:
        self.closed = True


def _read_tolerant_segment(path: str) -> list[dict]:
    """Read the final (possibly still-open) segment of a stream.

    A *footered* final segment verifies strictly.  An unfootered one is
    an interrupted stream: a torn final line (no trailing newline, or
    unparseable JSON) is dropped, but a bad line anywhere *before* the
    tail is mid-file corruption and raises — exactly the journal's
    torn-tail semantics.
    """
    from repro.state.atomic import (ArtifactError, FOOTER_TYPE,
                                    read_jsonl)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise ArtifactError(
            f"unreadable segment {path!r}: {exc}") from exc
    lines = raw.split(b"\n")
    torn_tail = False
    if lines and lines[-1] == b"":
        lines.pop()
    elif lines:
        lines.pop()          # no trailing newline: torn final line
        torn_tail = True
    records: list[dict] = []
    for number, line in enumerate(lines, start=1):
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            if number == len(lines):
                torn_tail = True
                break        # torn tail: drop and stop
            raise ArtifactError(
                f"{path}: line {number} is not valid JSON ({exc})"
            ) from exc
    if (not torn_tail and records and isinstance(records[-1], dict)
            and records[-1].get("type") == FOOTER_TYPE):
        # Sealed after all — verify count and checksum strictly.
        return read_jsonl(path)
    return records


def read_rotated_jsonl(path: str, *,
                       strict: bool = False) -> list[dict]:
    """Read every segment of a rotated stream, oldest first.

    Sealed (non-final) segments always verify their CRC footer; the
    final segment tolerates a torn tail unless ``strict=True``, in
    which case *every* segment must be sealed and intact — the
    assertion a gracefully drained daemon must satisfy.  Raises
    :class:`repro.state.atomic.ArtifactError` when no segments exist or
    verification fails.
    """
    from repro.state.atomic import ArtifactError, read_jsonl

    segments = list_segments(path)
    if not segments:
        raise ArtifactError(f"no time-series segments found for {path!r}")
    records: list[dict] = []
    for segment in segments[:-1]:
        records.extend(read_jsonl(segment))
    if strict:
        records.extend(read_jsonl(segments[-1]))
    else:
        records.extend(_read_tolerant_segment(segments[-1]))
    return records


def summary_table(registry: "MetricsRegistry | None" = None,
                  tracer: "Tracer | None" = None,
                  title: str = "Observability summary",
                  run_id: str | None = None) -> str:
    """The one-screen human-readable report (spans, then metrics)."""
    from repro.reporting.tables import render_metrics_summary

    return render_metrics_summary(registry, tracer, title=title,
                                  run_id=run_id)
