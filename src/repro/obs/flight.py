"""Flight recorder: a bounded ring buffer of lifecycle events.

Metrics aggregate and spans time — neither answers "what *sequence* of
events led here?" when a worker is killed mid-lease or a reloader
wedges.  The flight recorder is the black box: producers append small
structured events (state transitions, lease grants/revokes, reload
swaps, shed decisions, crash-injector fires) into a fixed-capacity
ring, and the ring is dumped to a CRC-footered JSONL artifact on
unhandled exception, :class:`~repro.state.crashpoints.SimulatedCrash`,
SIGUSR2, or graceful drain.

Events are deliberately cheap: one dict, one deque append.  When the
ring overflows, the *oldest* events fall out and ``dropped`` counts
them — a post-mortem always sees the most recent window, which is the
part that matters.

Each event carries the current trace span ID when a span is open, so
``repro obs flight`` can correlate the ring against an exported trace:

>>> recorder = FlightRecorder(capacity=2, clock=lambda: 0.0)
>>> recorder.record("worker.spawn", slot=0)
>>> recorder.record("lease.grant", lease=1)
>>> recorder.record("lease.revoke", lease=1)   # evicts worker.spawn
>>> [event["kind"] for event in recorder.events()]
['lease.grant', 'lease.revoke']
>>> recorder.dropped
1

The dump artifact is a header record followed by the surviving events::

    {"type": "flight", "reason": "SimulatedCrash", "capacity": 2, ...}
    {"type": "event", "seq": 1, "t_s": 0.0, "kind": "lease.grant", ...}

Like every pipeline artifact it is written atomically with a checksum
footer (:func:`repro.state.atomic.atomic_write_jsonl`).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

__all__ = [
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "DEFAULT_FLIGHT_CAPACITY",
]

#: Default ring capacity.  Sized so an 8-worker kill-schedule run fits
#: comfortably (each unit produces at most a handful of events) while
#: the ring stays a few hundred KB even with verbose attrs.
DEFAULT_FLIGHT_CAPACITY = 2048


class FlightRecorder:
    """Fixed-capacity in-memory event ring with atomic dump.

    ``path`` is the default dump destination (``dump`` may override).
    ``clock`` is injectable for deterministic tests; event timestamps
    are seconds since the recorder was created.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY, *,
                 path: str | None = None,
                 run_id: str | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity <= 0:
            raise ValueError(f"flight capacity must be positive: {capacity}")
        self.capacity = capacity
        self.path = path
        self.run_id = run_id
        self.clock = clock
        self._start = clock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._seq = 0

    # -- producing ----------------------------------------------------

    def record(self, kind: str, **attrs: object) -> None:
        """Append one event; correlates the current trace span if any."""
        self._seq += 1
        event: dict = {
            "type": "event",
            "seq": self._seq,
            "t_s": round(self.clock() - self._start, 6),
            "kind": kind,
            "attrs": attrs,
        }
        from repro.obs import OBS
        span = OBS.tracer.current()
        if span is not None:
            event["span_id"] = span.span_id
        self._ring.append(event)

    # -- inspecting ---------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted by ring overflow (oldest-first)."""
        return self._seq - len(self._ring)

    def events(self) -> list[dict]:
        """The surviving events, oldest first."""
        return list(self._ring)

    # -- dumping ------------------------------------------------------

    def dump(self, path: str | None = None, *,
             reason: str = "manual") -> str | None:
        """Write header + ring to ``path`` (default: ``self.path``).

        Returns the path written, or ``None`` when no destination is
        configured (recording without a sink is legal — tests inspect
        :meth:`events` directly).  Safe to call repeatedly: each dump
        atomically replaces the artifact with the current ring.
        """
        target = path if path is not None else self.path
        if target is None:
            return None
        from repro.state.atomic import atomic_write_jsonl

        header: dict = {
            "type": "flight",
            "reason": reason,
            "capacity": self.capacity,
            "events": len(self._ring),
            "dropped": self.dropped,
        }
        if self.run_id is not None:
            header["run_id"] = self.run_id
        atomic_write_jsonl(target, [header, *self._ring])
        return target


class NullFlightRecorder:
    """The disabled recorder: records nothing, dumps nothing."""

    enabled = False
    capacity = 0
    path = None
    dropped = 0

    def record(self, kind: str, **attrs: object) -> None:
        pass

    def events(self) -> list[dict]:
        return []

    def dump(self, path: str | None = None, *,
             reason: str = "manual") -> None:
        return None


NULL_FLIGHT = NullFlightRecorder()
