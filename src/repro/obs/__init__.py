"""repro.obs — zero-dependency observability for the whole pipeline.

The survey pipeline runs tens of thousands of filter consultations per
crawl; this subpackage is how the repo sees *where time and matches go*
without paying for it when nobody is looking.  Three pieces:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms collected in a :class:`~repro.obs.metrics.MetricsRegistry`;
* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` of nested
  timing spans with structured attributes;
* :mod:`repro.obs.export` — JSON-lines and in-memory exporters, plus
  the rendered summary table.

The contract with instrumented code
-----------------------------------

Instrumentation sites read one module-level singleton, :data:`OBS`, and
guard on its ``enabled`` flag::

    from repro.obs import OBS
    ...
    if OBS.enabled:
        OBS.registry.counter("filters.engine.verdicts",
                             verdict=verdict.value).inc()

When observability is off (the default), :data:`OBS` holds the null
registry and null tracer, ``OBS.enabled`` is ``False``, and every
instrumentation site costs a single attribute check — that is the
"no-op-cheap" guarantee ``benchmarks/bench_obs_overhead.py`` enforces.
Even an unguarded update is safe: the null instruments discard writes.

Enabling is explicit and scoped:

>>> from repro.obs import OBS, observe
>>> with observe() as (registry, tracer):
...     with tracer.span("demo"):
...         registry.counter("demo.events").inc()
...     enabled_inside = OBS.enabled
>>> enabled_inside, OBS.enabled
(True, False)
>>> registry.counter("demo.events").value
1

``enable``/``disable`` are the unscoped equivalents the CLI uses.  Both
tools accept pre-built registry/tracer instances, so tests can inject a
deterministic clock.  See ``docs/OBSERVABILITY.md`` for metric names,
span conventions, and exporter formats.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.export import (
    InMemoryExporter,
    InMemoryTimeSeries,
    JsonLinesExporter,
    RotatingJsonlExporter,
    metric_records,
    read_rotated_jsonl,
    run_record,
    span_records,
    summary_table,
)
from repro.obs.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    NullFlightRecorder,
    NULL_FLIGHT,
)
from repro.obs.ids import ROOT_PARENT_ID, derive_run_id, derive_span_id
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.timeseries import (
    DEFAULT_TICK_INTERVAL_S,
    NullTimeSeries,
    NULL_TIMESERIES,
    ProgressTracker,
    TimeSeriesSampler,
    WallClockTicker,
)
from repro.obs.trace import NullTracer, NULL_TRACER, Span, Tracer

__all__ = [
    "OBS",
    "ObsState",
    "enable",
    "disable",
    "observe",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TimeSeriesSampler",
    "NullTimeSeries",
    "NULL_TIMESERIES",
    "ProgressTracker",
    "WallClockTicker",
    "DEFAULT_TICK_INTERVAL_S",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "DEFAULT_FLIGHT_CAPACITY",
    "InMemoryExporter",
    "InMemoryTimeSeries",
    "JsonLinesExporter",
    "RotatingJsonlExporter",
    "read_rotated_jsonl",
    "metric_records",
    "run_record",
    "span_records",
    "summary_table",
    "derive_run_id",
    "derive_span_id",
    "ROOT_PARENT_ID",
]


class ObsState:
    """The process-wide observability switchboard (one instance: ``OBS``).

    ``registry`` and ``tracer`` are never ``None`` — disabled means
    *null* implementations, so instrumented code can always call through
    them.  ``enabled`` is the one-word guard hot paths check.
    ``run_id`` identifies the current observed run (see
    :func:`repro.obs.ids.derive_run_id`); exporters stamp it into the
    artifact's run-ledger header.

    ``diagnostics`` is a *separate* registry for telemetry that
    describes execution placement rather than results — scheduler
    steals, worker deaths, heartbeat timeouts, quarantine counts.  It
    is deliberately not ``registry``: result metrics are required to be
    byte-identical across worker counts and kill schedules, and
    supervision counters are exactly the numbers that are not.
    Exporters therefore ignore ``diagnostics`` unless explicitly asked
    for it.

    ``timeseries`` and ``flight`` are the live-telemetry plane:
    a :class:`~repro.obs.timeseries.TimeSeriesSampler` streaming
    periodic registry snapshots, and a
    :class:`~repro.obs.flight.FlightRecorder` ring of lifecycle events.
    Both default to null implementations; producers call straight
    through (``OBS.timeseries.advance(...)``,
    ``OBS.flight.record(...)``) and pay one attribute check when
    telemetry is off.  Crucially, neither ever *writes* to ``registry``
    — the sampler only reads it — so enabling telemetry cannot perturb
    metric or trace exports.
    """

    __slots__ = ("registry", "tracer", "diagnostics", "timeseries",
                 "flight", "enabled", "run_id")

    def __init__(self) -> None:
        self.registry: MetricsRegistry = NULL_REGISTRY
        self.tracer: Tracer = NULL_TRACER
        self.diagnostics: MetricsRegistry = NULL_REGISTRY
        self.timeseries: TimeSeriesSampler | NullTimeSeries = \
            NULL_TIMESERIES
        self.flight: FlightRecorder | NullFlightRecorder = NULL_FLIGHT
        self.enabled: bool = False
        self.run_id: str | None = None


OBS = ObsState()


def enable(registry: MetricsRegistry | None = None,
           tracer: Tracer | None = None,
           run_id: str | None = None,
           diagnostics: MetricsRegistry | None = None,
           timeseries: "TimeSeriesSampler | NullTimeSeries | None" = None,
           flight: "FlightRecorder | NullFlightRecorder | None" = None
           ) -> tuple[MetricsRegistry, Tracer]:
    """Install a live registry/tracer pair (created fresh when omitted).

    Passing only one of the two leaves the other disabled (null), so a
    caller can collect metrics without paying for span bookkeeping.
    ``run_id`` optionally names the run for exporters and rendered
    summaries (the CLI derives one per invocation).  A live
    ``diagnostics`` registry rides along whenever anything is enabled
    (pass your own to inspect it; it is never merged into ``registry``).
    ``timeseries`` and ``flight`` stay null unless explicitly provided
    — live telemetry is opt-in per run (``--timeseries-out`` /
    ``--flight-out`` on the CLI).
    """
    if registry is None and tracer is None:
        registry, tracer = MetricsRegistry(), Tracer()
    OBS.registry = registry if registry is not None else NULL_REGISTRY
    OBS.tracer = tracer if tracer is not None else NULL_TRACER
    OBS.enabled = (OBS.registry.enabled or OBS.tracer.enabled)
    if diagnostics is not None:
        OBS.diagnostics = diagnostics
    else:
        OBS.diagnostics = MetricsRegistry() if OBS.enabled else NULL_REGISTRY
    OBS.timeseries = timeseries if timeseries is not None \
        else NULL_TIMESERIES
    OBS.flight = flight if flight is not None else NULL_FLIGHT
    OBS.run_id = run_id
    return OBS.registry, OBS.tracer


def disable() -> None:
    """Return to the null registry/tracer (the default state)."""
    OBS.registry = NULL_REGISTRY
    OBS.tracer = NULL_TRACER
    OBS.diagnostics = NULL_REGISTRY
    OBS.timeseries = NULL_TIMESERIES
    OBS.flight = NULL_FLIGHT
    OBS.enabled = False
    OBS.run_id = None


@contextmanager
def observe(registry: MetricsRegistry | None = None,
            tracer: Tracer | None = None,
            run_id: str | None = None,
            diagnostics: MetricsRegistry | None = None,
            timeseries: "TimeSeriesSampler | NullTimeSeries | None" = None,
            flight: "FlightRecorder | NullFlightRecorder | None" = None
            ) -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Scoped :func:`enable`: restores the previous state on exit."""
    previous = (OBS.registry, OBS.tracer, OBS.diagnostics,
                OBS.timeseries, OBS.flight, OBS.enabled, OBS.run_id)
    try:
        yield enable(registry, tracer, run_id, diagnostics,
                     timeseries, flight)
    finally:
        (OBS.registry, OBS.tracer, OBS.diagnostics,
         OBS.timeseries, OBS.flight, OBS.enabled, OBS.run_id) = previous
