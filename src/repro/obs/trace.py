"""Nested timing spans: where a pipeline run actually spends its time.

A :class:`Tracer` records :class:`Span` objects — named, attributed
timing intervals.  Spans nest lexically (a context-manager stack), so a
survey trace reads like a call tree::

    survey.run
      survey.build_samples
      survey.build_engines        config=easylist+whitelist
      survey.crawl                group=top-5k config=easylist+whitelist
        web.crawl.visit           domain=google.com
        ...

Spans are recorded in *start* order with an explicit ``depth``, which is
all an exporter needs to reconstruct the tree without parent pointers.

>>> tracer = Tracer(clock=iter(range(10)).__next__)
>>> with tracer.span("outer"):
...     with tracer.span("inner", step=1):
...         pass
>>> [(s.name, s.depth, s.duration) for s in tracer.spans]
[('outer', 0, 3), ('inner', 1, 1)]

The :data:`NULL_TRACER` is the disabled twin: its ``span()`` hands back
one shared no-op context manager, so un-guarded ``with tracer.span(...)``
sites cost two method calls and allocate nothing when tracing is off.

>>> with NULL_TRACER.span("ignored") as span:
...     pass
>>> NULL_TRACER.spans
[]
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One named timing interval with structured attributes.

    Use as a context manager via :meth:`Tracer.span`; ``duration`` is
    ``None`` until the span exits (exporters skip unfinished spans).
    """

    __slots__ = ("name", "attrs", "start", "duration", "depth", "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start: float = 0.0
        self.duration: float | None = None
        self.depth: int = 0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.depth = len(tracer._stack)
        tracer._stack.append(self)
        tracer.spans.append(self)
        self.start = tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        tracer = self._tracer
        self.duration = tracer._clock() - self.start
        tracer._stack.pop()
        return False

    @property
    def duration_ms(self) -> float:
        return (self.duration or 0.0) * 1000.0

    def set_attr(self, key: str, value: object) -> None:
        """Attach an attribute discovered mid-span (e.g. a result count)."""
        self.attrs[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, depth={self.depth}, "
                f"duration={self.duration}, attrs={self.attrs})")


class Tracer:
    """Collects spans on a context-manager stack.

    ``clock`` is any zero-argument callable returning seconds; the
    default is :func:`time.perf_counter`.  Tests inject a counting clock
    for deterministic durations.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock

    def span(self, name: str, **attrs: object) -> Span:
        """A new span, to be entered with ``with``."""
        return Span(self, name, attrs)

    def finished_spans(self) -> list[Span]:
        """Spans that have exited, in start order."""
        return [span for span in self.spans if span.duration is not None]

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()


class _NullSpan:
    """The shared no-op span the null tracer hands out."""

    __slots__ = ()
    name = ""
    attrs: dict[str, object] = {}
    depth = 0
    start = 0.0
    duration: float | None = None
    duration_ms = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attr(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing."""

    enabled = False

    def span(self, name: str, **attrs: object):  # type: ignore[override]
        return _NULL_SPAN


NULL_TRACER = NullTracer()
