"""Nested timing spans: where a pipeline run actually spends its time.

A :class:`Tracer` records :class:`Span` objects — named, attributed
timing intervals.  Spans nest lexically (a context-manager stack), so a
survey trace reads like a call tree::

    survey.run
      survey.build_samples
      survey.build_engines        config=easylist+whitelist
      survey.crawl                group=top-5k config=easylist+whitelist
        web.crawl.visit           domain=google.com
        ...

Spans are recorded in *start* order with an explicit ``depth`` and a
deterministic ``span_id``/``parent_id`` pair (:mod:`repro.obs.ids`), so
an exporter can reconstruct the tree either positionally (depth +
order) or by ID — the latter survives shuffling and cross-process
stitching.

>>> tracer = Tracer(clock=iter(range(10)).__next__)
>>> with tracer.span("outer"):
...     with tracer.span("inner", step=1):
...         pass
>>> [(s.name, s.depth, s.duration) for s in tracer.spans]
[('outer', 0, 3), ('inner', 1, 1)]
>>> tracer.spans[1].parent_id == tracer.spans[0].span_id
True

A tracer may be *rooted* under a foreign parent context: the
shared-nothing survey executor gives each crawl unit a private tracer
rooted at the parent process's ``survey.crawl.parallel`` span, with the
unit's global index as its root ordinal namespace.  Two different
workers (or the same worker on resume) therefore derive identical IDs
for the same unit, which is what lets :meth:`Tracer.adopt` stitch shard
traces back into one coherent tree in the parent.

The :data:`NULL_TRACER` is the disabled twin: its ``span()`` hands back
one shared no-op context manager, so un-guarded ``with tracer.span(...)``
sites cost two method calls and allocate nothing when tracing is off.

>>> with NULL_TRACER.span("ignored") as span:
...     pass
>>> NULL_TRACER.spans
[]
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs.ids import ROOT_PARENT_ID, derive_span_id

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One named timing interval with structured attributes.

    Use as a context manager via :meth:`Tracer.span`; ``duration`` is
    ``None`` until the span exits (exporters skip unfinished spans).
    ``span_id`` and ``parent_id`` are assigned on entry — they are
    deterministic functions of the span's tree position, never of time
    or process identity.
    """

    __slots__ = ("name", "attrs", "start", "duration", "depth",
                 "span_id", "parent_id", "_children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start: float = 0.0
        self.duration: float | None = None
        self.depth: int = 0
        self.span_id: str = ""
        self.parent_id: str = ROOT_PARENT_ID
        self._children: int = 0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            ordinal: int | str = parent._children
            parent._children += 1
        else:
            self.parent_id = tracer.root_parent_id
            ordinal = f"{tracer.root_ordinal_ns}{tracer._root_children}"
            tracer._root_children += 1
        self.depth = tracer.root_depth + len(stack)
        self.span_id = derive_span_id(self.parent_id, self.name, ordinal)
        stack.append(self)
        tracer.spans.append(self)
        self.start = tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        tracer = self._tracer
        self.duration = tracer._clock() - self.start
        tracer._stack.pop()
        return False

    @property
    def duration_ms(self) -> float:
        return (self.duration or 0.0) * 1000.0

    def set_attr(self, key: str, value: object) -> None:
        """Attach an attribute discovered mid-span (e.g. a result count)."""
        self.attrs[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"depth={self.depth}, duration={self.duration}, "
                f"attrs={self.attrs})")


class Tracer:
    """Collects spans on a context-manager stack.

    ``clock`` is any zero-argument callable returning seconds; the
    default is :func:`time.perf_counter`.  Tests inject a counting clock
    for deterministic durations; the shared-nothing executor injects the
    crawl's *simulated* clock, whose readings are deterministic by
    construction.

    ``root_parent_id``/``root_depth``/``root_ordinal_ns`` root the
    tracer under a foreign parent span — see the module docstring.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 *, root_parent_id: str = ROOT_PARENT_ID,
                 root_depth: int = 0, root_ordinal_ns: str = "") -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock
        self.root_parent_id = root_parent_id
        self.root_depth = root_depth
        self.root_ordinal_ns = root_ordinal_ns
        self._root_children = 0

    def span(self, name: str, **attrs: object) -> Span:
        """A new span, to be entered with ``with``."""
        return Span(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def finished_spans(self) -> list[Span]:
        """Spans that have exited, in start order."""
        return [span for span in self.spans if span.duration is not None]

    def adopt(self, records: list[dict]) -> None:
        """Graft exported span records into this tracer as finished spans.

        ``records`` are :func:`repro.obs.export.span_records` dicts —
        typically a crawl unit's span shard sent home by a pool worker.
        Their IDs, depths, and timings are taken verbatim (they were
        derived under this tracer's own span context, so they already
        cohere with the live tree); transport-only keys (``worker``)
        are dropped, because a merged trace is execution-independent.
        """
        for record in records:
            span = Span(self, record["name"], dict(record["attrs"]))
            span.span_id = record["span_id"]
            span.parent_id = record["parent_id"]
            span.depth = record["depth"]
            span.start = record["start_s"]
            span.duration = record["duration_ms"] / 1000.0
            self.spans.append(span)

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._root_children = 0


class _NullSpan:
    """The shared no-op span the null tracer hands out."""

    __slots__ = ()
    name = ""
    attrs: dict[str, object] = {}
    depth = 0
    start = 0.0
    duration: float | None = None
    duration_ms = 0.0
    span_id = ""
    parent_id = ROOT_PARENT_ID

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attr(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing."""

    enabled = False

    def span(self, name: str, **attrs: object):  # type: ignore[override]
        return _NULL_SPAN


NULL_TRACER = NullTracer()
