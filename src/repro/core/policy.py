"""Personalised acceptability policies — Section 6's closing proposal.

The paper ends its perception study: "each person views advertisements
differently — often vastly so.  Therefore, any single policy of
whitelisting is unlikely to serve the needs of a large and diverse user
community well," calling for "a more precise and flexible advertisement
blocking policy."  This module builds that flexible policy:

* :func:`derive_policy` turns one respondent's survey answers into a
  personal :class:`AcceptabilityPolicy` — which advertisement classes
  they actually find acceptable under the program's own criteria;
* :func:`policy_filter_list` compiles a policy into a personal filter
  list that re-blocks the whitelisted ad classes the user rejects;
* :func:`policy_disagreement` quantifies the paper's claim: the
  fraction of the population whose personal policy disagrees with the
  one-size-fits-all whitelist on at least one ad class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filters.filterlist import FilterList, parse_filter_list
from repro.perception.ads import AdClass, SURVEY_ADS
from repro.perception.survey import PerceptionResult

__all__ = [
    "AcceptabilityPolicy",
    "derive_policy",
    "policy_filter_list",
    "policy_disagreement",
    "CLASS_BLOCKING_FILTERS",
]

#: Re-blocking filters per advertisement class: what a personal policy
#: adds back when the user rejects a class the whitelist allows.
CLASS_BLOCKING_FILTERS: dict[AdClass, tuple[str, ...]] = {
    AdClass.SEM: (
        "||google.com/adsense/search/$script,third-party",
        "||google.com/afs/$script,subdocument",
        "##.ads-ad",
        "###tads",
    ),
    AdClass.BANNER: (
        "||adserv.genericnet.com^$third-party",
        "||pagead2.googlesyndication.com^$third-party",
        "##.banner-ad",
        "##.acceptable-unit",
    ),
    AdClass.CONTENT: (
        "||widgets.outbrain.com^$third-party",
        "||cdn.taboola.com^$third-party",
        "||engine.influads.com^$third-party",
        "##.grid-item.sponsored",
        "##.promoted-hover",
        "###siteTable_organic",
    ),
}


@dataclass(frozen=True)
class AcceptabilityPolicy:
    """One user's verdict per advertisement class.

    ``accepted`` holds the classes the user tolerates; everything else
    should be re-blocked despite the global whitelist.
    """

    respondent_id: int
    accepted: frozenset[AdClass]
    scores: dict[AdClass, float] = field(default_factory=dict, hash=False,
                                         compare=False)

    def accepts(self, ad_class: AdClass) -> bool:
        return ad_class in self.accepted

    @property
    def rejects_everything(self) -> bool:
        return not self.accepted

    @property
    def accepts_everything(self) -> bool:
        return self.accepted == frozenset(AdClass)


def _class_score(result: PerceptionResult, respondent_id: int,
                 ad_class: AdClass) -> float:
    """A respondent's acceptability score for one ad class.

    The Acceptable Ads criteria say acceptable ads are distinguished
    from content, unobtrusive, and not attention-grabbing; the score is
    the mean of (distinguished) − (obscuring) − ½(attention) over the
    class's ads, using this respondent's own ratings.
    """
    labels = {ad.label for ad in SURVEY_ADS if ad.ad_class is ad_class}
    per_statement: dict[str, list[int]] = {
        "attention": [], "distinguished": [], "obscuring": []}
    for response in result.responses:
        if response.respondent_id != respondent_id:
            continue
        if response.ad_label not in labels:
            continue
        per_statement[response.statement].append(int(response.rating))

    def mean(values: list[int]) -> float:
        return sum(values) / len(values) if values else 0.0

    return (mean(per_statement["distinguished"])
            - mean(per_statement["obscuring"])
            - 0.5 * mean(per_statement["attention"]))


def derive_policy(result: PerceptionResult, respondent_id: int,
                  *, threshold: float = 0.0) -> AcceptabilityPolicy:
    """Derive one respondent's personal policy from their answers."""
    scores = {
        ad_class: _class_score(result, respondent_id, ad_class)
        for ad_class in AdClass
    }
    accepted = frozenset(
        ad_class for ad_class, score in scores.items()
        if score > threshold)
    return AcceptabilityPolicy(respondent_id=respondent_id,
                               accepted=accepted, scores=scores)


def policy_filter_list(policy: AcceptabilityPolicy) -> FilterList:
    """Compile a personal policy into a re-blocking filter list.

    Subscribing to this list *after* the Acceptable Ads whitelist
    restores blocking for the rejected classes (blocking filters do not
    override exceptions in ABP, so the list uses fresh, more specific
    blocking filters the whitelist's exceptions do not cover — plus
    element hiding, which whitelisted request exceptions never disable).
    """
    lines = [f"! Personal acceptability policy "
             f"(respondent {policy.respondent_id})"]
    for ad_class in AdClass:
        if policy.accepts(ad_class):
            continue
        lines.append(f"! re-block {ad_class.value} advertisements")
        lines.extend(CLASS_BLOCKING_FILTERS[ad_class])
    return parse_filter_list(
        "\n".join(lines),
        name=f"personal-policy-{policy.respondent_id}")


def policy_disagreement(result: PerceptionResult,
                        *, threshold: float = 0.0) -> float:
    """Fraction of respondents whose policy rejects ≥1 whitelisted class.

    The global whitelist accepts all three classes; any respondent who
    rejects at least one disagrees with it — the paper predicts this is
    most of the population.
    """
    respondents = {r.respondent_id for r in result.population}
    disagreeing = sum(
        1 for rid in respondents
        if not derive_policy(result, rid,
                             threshold=threshold).accepts_everything)
    return disagreeing / len(respondents)
