"""The end-to-end study: one object that runs everything the paper ran.

:class:`AcceptableAdsStudy` is the library's headline API.  It wires the
substrates together in the paper's order:

1. reconstruct the whitelist history (Section 4.1);
2. classify the tip whitelist's scope (Section 4.2, Figure 4, Table 2);
3. scan the parking zone for sitekey domains (Section 4.2.3, Table 3);
4. run the site survey over the Alexa samples (Section 5, Table 4,
   Figures 6–8);
5. run the user-perception survey (Section 6, Figure 9);
6. mine undocumented A-filters (Section 7);
7. audit hygiene and assemble the transparency report (Section 8).

Every stage is cached on the instance, deterministic in the study seed,
and available piecemeal (benchmarks regenerate one table each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.filters.classify import ScopeReport, classify_whitelist
from repro.filters.filterlist import FilterList
from repro.filters.hygiene import HygieneReport, audit
from repro.history.afilters import AFilterReport, mine_a_filters
from repro.history.analysis import (
    Cadence,
    GrowthPoint,
    YearActivity,
    growth_series,
    update_cadence,
    yearly_activity,
)
from repro.history.generator import WhitelistHistory, generate_history
from repro.measurement.survey import SurveyConfig, SurveyResult, run_survey
from repro.perception.survey import PerceptionResult, run_perception_survey
from repro.sitekey.parking import (
    DEFAULT_SCALE_DIVISOR,
    ScanResult,
    ZoneScanner,
    synthesize_zone,
)
from repro.state.checkpoint import Checkpoint

__all__ = ["StudyConfig", "AcceptableAdsStudy"]


@dataclass(slots=True)
class StudyConfig:
    """Scale and determinism knobs for a full study run.

    ``checkpoint`` (optional, caller-owned) journals the two
    long-running stages — history generation and the site survey — so
    a crashed run resumes from its last completed unit of work instead
    of starting over (see :mod:`repro.state`)."""

    seed: int = 2015
    key_bits: int = 512
    survey: SurveyConfig = field(default_factory=SurveyConfig)
    zone_scale_divisor: int = DEFAULT_SCALE_DIVISOR
    zone_noise_domains: int = 2_000
    perception_respondents: int = 305
    checkpoint: Checkpoint | None = None


class AcceptableAdsStudy:
    """Run (and cache) every component of the reproduction.

    >>> study = AcceptableAdsStudy()
    >>> study.table1()[-1].filters_added     # doctest: +SKIP
    1227
    """

    def __init__(self, config: StudyConfig | None = None) -> None:
        self.config = config or StudyConfig()

    # -- Section 4.1: history ------------------------------------------

    @cached_property
    def history(self) -> WhitelistHistory:
        return generate_history(seed=self.config.seed,
                                key_bits=self.config.key_bits,
                                checkpoint=self.config.checkpoint)

    @cached_property
    def whitelist(self) -> FilterList:
        return self.history.tip_filter_list()

    def table1(self) -> list[YearActivity]:
        return yearly_activity(self.history.repository)

    def figure3(self) -> list[GrowthPoint]:
        return growth_series(self.history.repository)

    def cadence(self) -> Cadence:
        return update_cadence(self.history.repository)

    # -- Section 4.2: scope ---------------------------------------------

    @cached_property
    def scope(self) -> ScopeReport:
        return classify_whitelist(self.whitelist)

    # -- Section 4.2.3: parking / sitekeys -------------------------------

    @cached_property
    def parking_scan(self) -> dict[str, ScanResult]:
        zone = synthesize_zone(
            scale_divisor=self.config.zone_scale_divisor,
            noise_domains=self.config.zone_noise_domains,
            seed=self.config.seed,
        )
        scanner = ZoneScanner(key_bits=self.config.key_bits)
        return scanner.scan(zone)

    # -- Section 5: site survey -------------------------------------------

    @cached_property
    def site_survey(self) -> SurveyResult:
        return run_survey(self.history, self.config.survey,
                          checkpoint=self.config.checkpoint)

    def crawl_health(self):
        """Crawl telemetry for the survey: the resilience layer's view.

        Fault injection and retry depth are configured on
        ``config.survey`` (``fault_rate`` / ``fault_seed`` /
        ``max_retries``); with the defaults every visit succeeds on the
        first attempt and this is an all-success report.
        """
        return self.site_survey.crawl_health()

    # -- Section 6: perception ---------------------------------------------

    @cached_property
    def perception(self) -> PerceptionResult:
        return run_perception_survey(
            respondents=self.config.perception_respondents,
            seed=self.config.seed,
        )

    # -- Section 7: A-filters -----------------------------------------------

    @cached_property
    def a_filters(self) -> AFilterReport:
        return mine_a_filters(self.history.repository)

    # -- Section 8: hygiene ---------------------------------------------------

    @cached_property
    def hygiene(self) -> HygieneReport:
        return audit(self.whitelist)

    def transparency_report(self) -> str:
        from repro.core.transparency import build_transparency_report

        return build_transparency_report(self)
