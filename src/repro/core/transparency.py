"""Section 8: the transparency report.

The paper closes with five recommendations for the Acceptable Ads
program.  This module turns a completed study into the evidence base
for each one — a machine-checked audit a list maintainer (or watchdog)
could run against any whitelist revision:

1. *Disclose financial entanglements* — we can't see contracts, but we
   can enumerate which whitelisted publishers are large enough that the
   "free for small sites" policy can't explain their presence;
2. *Document all modifications* — undocumented (A-filter) groups and
   commits lacking forum links;
3. *Avoid overly general filters* — unrestricted and sitekey filters
   whose scope cannot be determined from the list;
4. *Identify whitelisted advertisements* — surfaced as engine
   instrumentation (the paper asks the extension to show it; our
   engine records it);
5. *Practice good whitelist hygiene* — duplicates, malformed and
   truncated filters, deprecated options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.filters.classify import ScopeClass, classify_filter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.study import AcceptableAdsStudy

__all__ = ["TransparencyFindings", "collect_findings",
           "build_transparency_report"]

_LARGE_SITE_RANK = 1_000


@dataclass(frozen=True)
class TransparencyFindings:
    """The quantified Section 8 evidence."""

    undocumented_groups: int
    undocumented_filters: int
    unrestricted_filters: int
    sitekey_filters: int
    sitekey_domains_lower_bound: int
    duplicate_filters: int
    malformed_filters: int
    truncated_filters: int
    deprecated_option_uses: int
    large_whitelisted_publishers: tuple[str, ...]

    @property
    def opaque_scope_filters(self) -> int:
        """Filters whose full scope a user cannot determine."""
        return self.unrestricted_filters + self.sitekey_filters


def collect_findings(study: "AcceptableAdsStudy") -> TransparencyFindings:
    """Quantify every Section 8 concern from a completed study."""
    scope = study.scope
    hygiene = study.hygiene
    a_report = study.a_filters
    ranking = study.history.population.ranking

    large: list[str] = []
    for domain in sorted(scope.effective_second_level_domains):
        rank = ranking.rank_of(domain)
        if rank is not None and rank <= _LARGE_SITE_RANK:
            large.append(domain)

    sitekey_domains = sum(
        result.scaled_confirmed(study.config.zone_scale_divisor)
        for result in study.parking_scan.values()
        if result.service.active
    )

    return TransparencyFindings(
        undocumented_groups=a_report.total_added,
        undocumented_filters=a_report.filters_in_groups(),
        unrestricted_filters=scope.unrestricted,
        sitekey_filters=scope.sitekey_filters,
        sitekey_domains_lower_bound=sitekey_domains,
        duplicate_filters=hygiene.duplicate_filter_count,
        malformed_filters=hygiene.malformed_count,
        truncated_filters=hygiene.truncated_count,
        deprecated_option_uses=sum(hygiene.deprecated_options.values()),
        large_whitelisted_publishers=tuple(large),
    )


def build_transparency_report(study: "AcceptableAdsStudy") -> str:
    """Render the findings as the Section 8 narrative."""
    findings = collect_findings(study)
    lines = [
        "TRANSPARENCY REPORT — Acceptable Ads whitelist",
        "=" * 54,
        "",
        "1. Financial entanglements",
        f"   {len(findings.large_whitelisted_publishers)} whitelisted "
        f"publishers rank in the Alexa top {_LARGE_SITE_RANK}; the "
        "'free for small sites' policy cannot explain their inclusion, "
        "and no fee disclosure exists for any of them.",
        "",
        "2. Undocumented modifications",
        f"   {findings.undocumented_groups} A-filter groups "
        f"({findings.undocumented_filters} filters) were added without "
        "community vetting or forum disclosure.",
        "",
        "3. Overly general filters",
        f"   {findings.unrestricted_filters} unrestricted filters and "
        f"{findings.sitekey_filters} sitekey filters have scope that "
        "cannot be determined from the list; the sitekeys alone admit "
        f"at least {findings.sitekey_domains_lower_bound:,} parked "
        "domains.",
        "",
        "4. Whitelisted-ad visibility",
        "   The instrumented engine records every exception activation; "
        "shipping equivalent UI would let users see what was allowed "
        "and why.",
        "",
        "5. Whitelist hygiene",
        f"   {findings.duplicate_filters} duplicate filters, "
        f"{findings.malformed_filters} malformed filters "
        f"({findings.truncated_filters} truncated at 4,095 chars), "
        f"{findings.deprecated_option_uses} deprecated-option uses.",
    ]
    return "\n".join(lines)


def opaque_filters(filters) -> list:
    """Every filter whose scope is opaque (unrestricted or sitekey)."""
    return [
        flt for flt in filters
        if classify_filter(flt) in (ScopeClass.UNRESTRICTED,
                                    ScopeClass.SITEKEY)
    ]
