"""Paper-level orchestration: the end-to-end study and Section 8 report."""

from repro.core.policy import (
    AcceptabilityPolicy,
    derive_policy,
    policy_disagreement,
    policy_filter_list,
)
from repro.core.study import AcceptableAdsStudy, StudyConfig
from repro.core.transparency import (
    TransparencyFindings,
    build_transparency_report,
    collect_findings,
)

__all__ = [
    "AcceptabilityPolicy",
    "AcceptableAdsStudy",
    "derive_policy",
    "policy_disagreement",
    "policy_filter_list",
    "StudyConfig",
    "TransparencyFindings",
    "build_transparency_report",
    "collect_findings",
]
