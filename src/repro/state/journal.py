"""The write-ahead run journal: append-only, checksummed, replayable.

A paper-scale survey is hours of crawling; a longitudinal blacklist
study is months of collection.  The journal is what makes that work
crash-safe: every *completed unit of work* (one crawled target, one
committed history revision) is appended as one self-verifying record
**before** the run moves on, so after a crash the pipeline knows
exactly which units are done and restarts from the first incomplete
one (:mod:`repro.state.checkpoint`).

Record format — one line per record::

    <crc32 of payload, 8 hex digits> <payload JSON>\\n

The payload always carries ``"seq"``, a dense 0-based sequence number.
Three defects are distinguished on replay:

* **torn tail** — the final record is half-written (the classic crash
  signature: no newline, truncated JSON, or a CRC that does not match
  because the line is incomplete).  This is *expected* damage:
  :func:`replay_journal` reports the clean prefix and
  :meth:`RunJournal.open` truncates the file back to it, so the unit
  whose record was torn simply runs again.
* **mid-file corruption** — a bad record *followed by valid ones*
  cannot be explained by a crash (appends are sequential); that is
  disk-level damage and raises :class:`JournalCorruption` rather than
  silently dropping data.
* **sequence gaps** — a record whose ``seq`` is not the expected next
  integer also raises :class:`JournalCorruption`.

Every append is flushed to the OS (one ``write`` syscall); the
expensive durability barrier — fsync — is deferred to
:meth:`RunJournal.sync`, which checkpoint owners call at natural
barriers and :meth:`close` always calls.  A crash between syncs can
therefore lose at most the not-yet-fsynced tail *on power loss* —
which resume simply re-executes — never the journal's integrity.

>>> import os, tempfile
>>> path = os.path.join(tempfile.mkdtemp(), "run.jnl")
>>> journal = RunJournal.create(path, {"run": "demo"})
>>> journal.append({"kind": "unit", "n": 1})
>>> journal.close()
>>> records, truncated = replay_journal(path)
>>> [r.get("kind") for r in records], truncated
(['header', 'unit'], False)
"""

from __future__ import annotations

import json
import os
import zlib

from repro.state.crashpoints import CRASH

__all__ = [
    "JournalError",
    "JournalCorruption",
    "RunJournal",
    "replay_journal",
]

#: First-record format marker, checked on every replay.
JOURNAL_FORMAT = "repro-journal/1"


class JournalError(ValueError):
    """Raised for unusable journals (missing header, wrong format...)."""


class JournalCorruption(JournalError):
    """Raised for damage a crash cannot explain (mid-file, seq gaps)."""


def _encode(seq: int, body: dict) -> bytes:
    payload = json.dumps({"seq": seq, **body}, ensure_ascii=False,
                         separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n".encode("utf-8")


def _decode_line(line: bytes) -> dict | None:
    """One record, or ``None`` when the line fails any integrity check."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or not isinstance(
            record.get("seq"), int):
        return None
    return record


def _scan(raw: bytes, path: str) -> tuple[list[dict], int]:
    """All valid records plus the byte length of the clean prefix.

    Raises :class:`JournalCorruption` when damage is not confined to
    the tail.
    """
    records: list[dict] = []
    offset = 0
    bad_at: int | None = None
    for line in raw.split(b"\n")[:-1]:  # final element: b"" or torn tail
        record = _decode_line(line)
        if record is None or record["seq"] != len(records):
            bad_at = offset
            break
        records.append(record)
        offset += len(line) + 1
    if bad_at is not None:
        # Anything valid *after* the bad line means mid-file damage.
        remainder = raw[bad_at:]
        for line in remainder.split(b"\n")[1:]:
            if _decode_line(line) is not None:
                raise JournalCorruption(
                    f"{path}: corrupt record at byte {bad_at} followed "
                    "by valid records — journal is damaged mid-file, "
                    "not torn")
        return records, offset
    # No bad full line; any bytes past the last newline are a torn tail.
    return records, offset


class RunJournal:
    """An open, appendable run journal.

    Use :meth:`create` for a fresh run and :meth:`open` to resume one;
    the constructor is internal.
    """

    def __init__(self, path: str, stream, next_seq: int) -> None:
        self.path = path
        self._stream = stream
        self._next_seq = next_seq
        self._appends_since_sync = 0

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(cls, path: str, meta: dict | None = None) -> "RunJournal":
        """Start a fresh journal at ``path`` (truncating any old one)."""
        stream = open(path, "wb")
        journal = cls(path, stream, next_seq=0)
        journal.append({"kind": "header", "format": JOURNAL_FORMAT,
                        "meta": meta or {}})
        journal.sync()
        return journal

    @classmethod
    def open(cls, path: str) -> tuple["RunJournal", list[dict], bool]:
        """Reopen ``path`` for appending after validating its contents.

        Returns ``(journal, records, truncated)`` where ``records`` is
        every intact record (header first) and ``truncated`` says a
        torn tail was cut off.  The file is physically truncated back
        to its clean prefix before appending resumes.
        """
        records, clean_length, truncated = cls._replay_file(path)
        stream = open(path, "r+b")
        if truncated:
            stream.truncate(clean_length)
            stream.flush()
            os.fsync(stream.fileno())
        stream.seek(clean_length)
        return cls(path, stream, next_seq=len(records)), records, truncated

    @staticmethod
    def _replay_file(path: str) -> tuple[list[dict], int, bool]:
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise JournalError(
                f"unreadable journal {path!r}: {exc}") from exc
        records, clean_length = _scan(raw, path)
        if not records:
            raise JournalError(
                f"{path}: no intact records (empty or fully torn journal)")
        header = records[0]
        if header.get("kind") != "header" \
                or header.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"{path}: first record is not a {JOURNAL_FORMAT} header")
        return records, clean_length, clean_length != len(raw)

    def close(self) -> None:
        if self._stream.closed:
            return
        self.sync()
        self._stream.close()

    @property
    def closed(self) -> bool:
        return self._stream.closed

    # -- writing ---------------------------------------------------------

    def append(self, body: dict) -> None:
        """Append one record (and count one crash step).

        Each append is also a crashpoint: when a
        :class:`~repro.state.crashpoints.CrashInjector` is about to
        fire, the process "dies" *before* the record lands — or, with
        ``torn=True``, after half of its bytes have been flushed,
        manufacturing exactly the torn tail a mid-``write`` power loss
        leaves behind.
        """
        data = _encode(self._next_seq, body)
        injector = CRASH.injector
        if injector is not None and injector.pending():
            if injector.torn:
                self._stream.write(data[:max(1, len(data) // 2)])
                self._stream.flush()
            injector.step(f"journal.append:{body.get('kind', '')}")
        self._stream.write(data)
        self._stream.flush()
        self._next_seq += 1
        self._appends_since_sync += 1
        if injector is not None:
            injector.step(f"journal.append:{body.get('kind', '')}")

    def sync(self) -> None:
        """Flush buffered appends and fsync the journal file."""
        if self._stream.closed or not self._appends_since_sync:
            return
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._appends_since_sync = 0


def replay_journal(path: str) -> tuple[list[dict], bool]:
    """Read-only replay: ``(records, torn_tail_truncated)``.

    Unlike :meth:`RunJournal.open` this never modifies the file, so it
    is safe for inspection while a run is (possibly) still alive.
    """
    records, _, truncated = RunJournal._replay_file(path)
    return records, truncated
