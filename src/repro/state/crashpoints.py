"""Deterministic crash injection for the pipeline's durability layer.

The resilience layer (:mod:`repro.web.faults`) injects *network*
failures; this module injects *process death*.  A long-running
measurement job can be killed at any instant — power loss, OOM kill,
preemption — and the crash-safety contract (journaled checkpoints,
atomic artifacts, torn-tail truncation) is only trustworthy if tests
actually kill the pipeline at every interesting step and prove the
resumed run converges on the uninterrupted one.

The model mirrors :data:`repro.obs.OBS`: one process-wide holder,
:data:`CRASH`, that instrumented code consults through
:func:`crashpoint`.  With no injector installed (the default) a
crashpoint costs one attribute check.  Tests install a
:class:`CrashInjector` scoped with :func:`crashing`::

    >>> from repro.state.crashpoints import (CrashInjector, SimulatedCrash,
    ...                                      crashing, crashpoint)
    >>> try:
    ...     with crashing(CrashInjector(at_step=2)):
    ...         crashpoint("unit")          # step 1: survives
    ...         crashpoint("unit")          # step 2: the process "dies"
    ... except SimulatedCrash as crash:
    ...     crash.step
    2

Steps are counted globally across every crashpoint the injector sees,
so ``at_step=N`` kills the pipeline at its N-th completed unit of work
no matter which subsystem (survey crawl, history commit) owns that
unit.  ``torn=True`` additionally asks the *journal* to flush half of
the fatal record's bytes before dying, producing the torn tail record
that :meth:`repro.state.checkpoint.Checkpoint.resume` must truncate.

:class:`SimulatedCrash` subclasses :class:`BaseException`, not
:class:`Exception`, so no ``except Exception`` handler anywhere in the
pipeline (the retry loop, tombstone conversion, CLI wrappers) can
accidentally swallow the "kill"; only the test harness catches it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "SimulatedCrash",
    "CrashInjector",
    "CRASH",
    "crashpoint",
    "crashing",
]


class SimulatedCrash(BaseException):
    """The injected process death.  Deliberately not an ``Exception``."""

    def __init__(self, step: int, label: str) -> None:
        super().__init__(f"simulated crash at step {step} ({label})")
        self.step = step
        self.label = label


class CrashInjector:
    """Kills the pipeline at crashpoint number ``at_step`` (1-based).

    ``torn`` asks the journal to leave a half-written final record
    behind (a torn write) instead of dying on a clean record boundary.
    ``steps_taken`` is the number of crashpoints survived so far, which
    tests can read after the dust settles.
    """

    def __init__(self, at_step: int, *, torn: bool = False) -> None:
        if at_step < 1:
            raise ValueError(f"at_step must be >= 1, got {at_step}")
        self.at_step = at_step
        self.torn = torn
        self.steps_taken = 0

    def pending(self) -> bool:
        """Will the *next* step be fatal?  (The journal asks before
        writing, so a torn record can be half-flushed first.)"""
        return self.steps_taken + 1 == self.at_step

    def step(self, label: str = "") -> None:
        """Count one step; raise :class:`SimulatedCrash` on the fatal one."""
        self.steps_taken += 1
        if self.steps_taken == self.at_step:
            # The black box gets the kill before the stack unwinds: the
            # dump-on-crash handler only sees the exception, not the
            # injector's schedule.
            from repro.obs import OBS
            OBS.flight.record("crash.injected", step=self.steps_taken,
                              label=label, torn=self.torn)
            raise SimulatedCrash(self.steps_taken, label)


class _CrashState:
    """Process-wide injector holder (one instance: :data:`CRASH`)."""

    __slots__ = ("injector",)

    def __init__(self) -> None:
        self.injector: CrashInjector | None = None


CRASH = _CrashState()


def crashpoint(label: str = "") -> None:
    """One potential kill site.  Free when no injector is installed."""
    injector = CRASH.injector
    if injector is not None:
        injector.step(label)


@contextmanager
def crashing(injector: CrashInjector) -> Iterator[CrashInjector]:
    """Install ``injector`` for the duration of the block.

    The previous injector (usually ``None``) is restored even when the
    block dies of :class:`SimulatedCrash` — which it usually does.
    """
    previous = CRASH.injector
    CRASH.injector = injector
    try:
        yield injector
    finally:
        CRASH.injector = previous
