"""The lease log: a supervision side-journal for work-stealing runs.

The main checkpoint journal (:mod:`repro.state.checkpoint`) records
*results* — and results are defined to be byte-identical for every
worker count and every kill schedule, so supervision events (which
worker held which lease, which unit killed whom) must never appear in
it.  They still need durability: a unit that has already killed one
worker must keep its strike across a *parent* crash, or a resumed run
would feed the same poison unit two fresh workers all over again.

The :class:`LeaseLog` is that side channel.  It is a standard
:class:`~repro.state.journal.RunJournal` (checksummed, torn-tail
tolerant) at ``<checkpoint>.leases`` holding three record kinds:

* ``lease-grant`` — lease id, worker slot/incarnation, unit indices;
* ``lease-revoke`` — lease id, the revocation reason, the suspect
  unit's global index and its strike count so far;
* ``quarantine`` — the unit index retired as poisoned.

On resume, :func:`read_lease_strikes` replays the log and returns the
per-unit strike counts and already-quarantined units for one scope, so
the scheduler starts exactly as suspicious as the crashed run ended.
The log is deleted when its scope's scheduling completes — a finished
checkpoint carries no supervision residue, keeping it byte-identical
to a serial run's.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.state.journal import JournalError, RunJournal, replay_journal

__all__ = ["LeaseLog", "discard_lease_log", "lease_log_path",
           "read_lease_strikes"]

_SUFFIX = ".leases"


def lease_log_path(checkpoint_path: str) -> str:
    """Where a checkpointed steal run journals supervision events."""
    return checkpoint_path + _SUFFIX


def read_lease_strikes(checkpoint_path: str,
                       scope: str) -> tuple[dict[int, int], set[int]]:
    """Replay a leftover lease log: ``(strikes, quarantined)`` for
    ``scope``.

    ``strikes`` maps global unit index to how many workers that unit
    has killed; ``quarantined`` lists units already retired as
    poisoned.  A missing or unreadable (crash-mangled beyond the torn
    tail) log yields empty state — the run merely rediscovers any
    poison the hard way, deterministically.
    """
    path = lease_log_path(checkpoint_path)
    strikes: dict[int, int] = {}
    quarantined: set[int] = set()
    if not os.path.exists(path):
        return strikes, quarantined
    try:
        records, _truncated = replay_journal(path)
    except JournalError:
        return strikes, quarantined
    for record in records:
        if record.get("scope") != scope:
            continue
        kind = record.get("kind")
        if kind == "lease-revoke" and record.get("suspect") is not None:
            suspect = record["suspect"]
            strikes[suspect] = max(strikes.get(suspect, 0),
                                   record.get("strikes", 0))
        elif kind == "quarantine":
            quarantined.add(record["index"])
    return strikes, quarantined


def discard_lease_log(checkpoint_path: str, scope: str) -> None:
    """Delete a leftover lease log iff it belongs to ``scope``.

    A resumed pass that restores every unit from the checkpoint never
    opens (and so never removes) a lease log of its own, but its
    crashed predecessor may have left one.  That file is either the
    same scope's — safe to clear, its strikes have nothing left to
    protect — or a *later* pass's, whose strikes must survive until
    that pass replays them; the journal header's scope tells the two
    apart.  An unreadable log is removed either way: no pass could
    replay it.
    """
    path = lease_log_path(checkpoint_path)
    if not os.path.exists(path):
        return
    try:
        records, _truncated = replay_journal(path)
        owner = records[0].get("meta", {}).get("scope")
    except JournalError:
        owner = scope
    if owner == scope:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass


class LeaseLog:
    """An open, appendable lease log for one scheduling pass.

    Create with :meth:`start`; the file is truncated (prior state must
    already have been folded in via :func:`read_lease_strikes`).  All
    appends carry the scope so two sequential survey passes sharing one
    checkpoint path never read each other's events.
    """

    def __init__(self, journal: RunJournal, scope: str) -> None:
        self._journal = journal
        self._scope = scope

    @classmethod
    def start(cls, checkpoint_path: str, scope: str) -> "LeaseLog":
        journal = RunJournal.create(lease_log_path(checkpoint_path),
                                    {"scope": scope})
        return cls(journal, scope)

    @property
    def path(self) -> str:
        return self._journal.path

    def grant(self, lease_id: int, worker: int, incarnation: int,
              indices: Iterable[int]) -> None:
        self._journal.append({"kind": "lease-grant", "scope": self._scope,
                              "lease": lease_id, "worker": worker,
                              "incarnation": incarnation,
                              "indices": list(indices)})

    def revoke(self, lease_id: int, *, reason: str,
               suspect: int | None, strikes: int) -> None:
        self._journal.append({"kind": "lease-revoke", "scope": self._scope,
                              "lease": lease_id, "reason": reason,
                              "suspect": suspect, "strikes": strikes})
        self._journal.sync()  # a strike must survive a parent crash

    def quarantine(self, index: int) -> None:
        self._journal.append({"kind": "quarantine", "scope": self._scope,
                              "index": index})
        self._journal.sync()

    def close(self) -> None:
        self._journal.close()

    def remove(self) -> None:
        """Close and delete the log (scope scheduling completed)."""
        self.close()
        try:
            os.remove(self._journal.path)
        except FileNotFoundError:
            pass
