"""Atomic, epoch-keyed snapshot artifacts for the serving daemon.

The serving daemon (:mod:`repro.serve`) compiles filter lists into a
frozen engine snapshot and hot-reloads new ones at runtime.  Each
*validated* snapshot's source material — the filter-list texts, keyed
on the engine's subscription epoch — is persisted here so that:

* a daemon restart can reload exactly the epoch it was serving, and
* a rejected reload leaves no artifact behind (only snapshots that
  passed validation and swapped in are ever written).

Artifacts are JSON-lines files written through
:func:`repro.state.atomic.atomic_write_jsonl` (temp + fsync + rename +
CRC footer), so a crash mid-save can never leave a torn snapshot — the
store either has the complete epoch or does not have it at all.  File
names embed the epoch and a content fingerprint::

    epoch-00000042-1a2b3c4d.jsonl

Two different list sets that happen to compile to the same epoch count
therefore never collide.  Like the rest of :mod:`repro.state`, this
module is stdlib-only and imports nothing from the rest of ``repro``:
it stores raw list *texts*; parsing and compiling belong to the caller.

The epoch counter tracks the engine's filter count, so a reload to a
*smaller* list set lowers it — epoch numbers record identity, not
serving order.  Serving order lives in a ``CURRENT`` pointer file,
atomically replaced on every save, which :meth:`SnapshotStore.load_latest`
follows so a restart resumes what was last served:

>>> import tempfile
>>> store = SnapshotStore(tempfile.mkdtemp())
>>> store.save(7, [("easylist", "||ads.example^")])  # doctest: +ELLIPSIS
'...epoch-00000007-....jsonl'
>>> store.latest_epoch()
7
>>> store.load(7)
[('easylist', '||ads.example^')]
>>> _ = store.save(2, [("easylist", "||b.example^\\n||c.example^")])
>>> store.load_latest()[0]        # last served, not highest epoch
2
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Iterable, Sequence

from repro.state.atomic import (
    ArtifactError,
    atomic_write_bytes,
    atomic_write_jsonl,
    atomic_write_text,
    read_jsonl,
)

__all__ = ["SnapshotStore", "SnapshotStoreError", "content_fingerprint"]

_NAME_RE = re.compile(r"^epoch-(\d{8})-([0-9a-f]{8})\.jsonl$")
_BLOB_KIND_RE = re.compile(r"^[a-z][a-z0-9]{0,15}$")
_CURRENT = "CURRENT"


class SnapshotStoreError(ValueError):
    """Raised for missing epochs or malformed snapshot artifacts."""


def content_fingerprint(lists: Sequence[tuple[str, str]]) -> str:
    """8-hex-char content identity of ordered ``(name, text)`` sources.

    This is the fingerprint embedded in snapshot artifact filenames;
    derived artifacts (the compiled filter-index blob foremost) key on
    it too, so "same bytes in → same artifact name" holds across every
    producer.

    >>> content_fingerprint([("easylist", "||ads.example^")])
    '97c15abe'
    """
    digest = hashlib.sha256()
    for name, text in lists:
        digest.update(name.encode("utf-8") + b"\x00")
        digest.update(text.encode("utf-8") + b"\x00")
    return digest.hexdigest()[:8]


# Backwards-compatible private alias (pre-compiled-index callers).
_fingerprint = content_fingerprint


class SnapshotStore:
    """A directory of epoch-keyed snapshot source artifacts."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    # -- writing -------------------------------------------------------

    def save(self, epoch: int,
             lists: Iterable[tuple[str, str]]) -> str:
        """Persist one validated snapshot's sources; returns the path.

        ``lists`` is the ordered ``(name, text)`` source material the
        snapshot was compiled from.  The write is atomic: concurrent
        readers see either nothing or the complete artifact.
        """
        ordered = [(str(name), str(text)) for name, text in lists]
        filename = (f"epoch-{epoch:08d}-{_fingerprint(ordered)}.jsonl")
        path = os.path.join(self.directory, filename)
        records = [{"type": "snapshot", "epoch": epoch,
                    "lists": [name for name, _ in ordered]}]
        records.extend({"type": "list", "name": name, "text": text}
                       for name, text in ordered)
        atomic_write_jsonl(path, records)
        # The epoch counter is not monotonic across reloads (it tracks
        # the engine's filter count), so "highest epoch" is not "most
        # recently served".  A CURRENT pointer, atomically replaced
        # after each successful save, records serving order explicitly.
        atomic_write_text(os.path.join(self.directory, _CURRENT),
                          filename + "\n")
        return path

    # -- derived sidecar blobs -----------------------------------------

    def _blob_name(self, epoch: int, fingerprint: str, kind: str) -> str:
        if not _BLOB_KIND_RE.match(kind):
            raise SnapshotStoreError(f"bad blob kind {kind!r}")
        return f"epoch-{epoch:08d}-{fingerprint}.{kind}"

    def save_blob(self, epoch: int, fingerprint: str, payload: bytes,
                  *, kind: str = "cidx") -> str:
        """Persist a derived binary artifact beside its source snapshot.

        The compiled filter-index artifact
        (:mod:`repro.filters.compiled.artifact`) is the flagship user:
        it is a pure function of the epoch's source lists, so it shares
        the snapshot's ``epoch`` + ``fingerprint`` identity and lives in
        the same directory as an ``epoch-XXXXXXXX-ffffffff.<kind>``
        sidecar.  The store treats the payload as opaque bytes —
        internal integrity (CRC, versioning) belongs to the format
        owner; the write itself is atomic like every other artifact.
        """
        path = os.path.join(self.directory,
                            self._blob_name(epoch, fingerprint, kind))
        atomic_write_bytes(path, payload)
        return path

    def load_blob(self, fingerprint: str,
                  *, kind: str = "cidx") -> tuple[int, bytes] | None:
        """The ``(epoch, payload)`` sidecar for ``fingerprint``, if any.

        Keyed on content fingerprint alone: a reload back to previously
        served lists finds the blob regardless of which epoch number is
        currently serving.  Returns ``None`` when absent (callers fall
        back to building from source); an unreadable blob is surfaced
        as :class:`SnapshotStoreError`.
        """
        pattern = re.compile(
            r"^epoch-(\d{8})-" + re.escape(fingerprint)
            + r"\." + re.escape(kind) + r"$")
        matches = sorted(
            (name, match) for name in os.listdir(self.directory)
            if (match := pattern.match(name)))
        if not matches:
            return None
        name, match = matches[-1]
        try:
            with open(os.path.join(self.directory, name), "rb") as handle:
                return int(match.group(1)), handle.read()
        except OSError as exc:
            raise SnapshotStoreError(
                f"unreadable snapshot blob {name}: {exc}") from exc

    # -- reading -------------------------------------------------------

    def epochs(self) -> list[int]:
        """All persisted epochs, ascending (duplicates collapsed)."""
        found = {int(m.group(1))
                 for m in map(_NAME_RE.match, os.listdir(self.directory))
                 if m}
        return sorted(found)

    def latest_epoch(self) -> int | None:
        epochs = self.epochs()
        return epochs[-1] if epochs else None

    def _paths_for(self, epoch: int) -> list[str]:
        return sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if (m := _NAME_RE.match(name)) and int(m.group(1)) == epoch)

    def load(self, epoch: int) -> list[tuple[str, str]]:
        """The ``(name, text)`` sources saved for ``epoch``.

        When several fingerprints exist for one epoch (lists changed
        but compiled to the same filter count), the lexicographically
        last artifact wins — matching :meth:`save`'s newest-write
        semantics is not possible without timestamps, so callers that
        care should key on content, not only epoch.
        """
        paths = self._paths_for(epoch)
        if not paths:
            raise SnapshotStoreError(
                f"no snapshot artifact for epoch {epoch} in "
                f"{self.directory}")
        return self._load_path(paths[-1], epoch)

    def _load_path(self, path: str, epoch: int) -> list[tuple[str, str]]:
        try:
            records = read_jsonl(path)
        except ArtifactError as exc:
            raise SnapshotStoreError(str(exc)) from exc
        if not records or records[0].get("type") != "snapshot":
            raise SnapshotStoreError(
                f"{path}: not a snapshot artifact")
        if records[0].get("epoch") != epoch:
            raise SnapshotStoreError(
                f"{path}: header epoch {records[0].get('epoch')} "
                f"does not match requested epoch {epoch}")
        return [(record["name"], record["text"])
                for record in records[1:] if record.get("type") == "list"]

    def _current_filename(self) -> str | None:
        """The CURRENT pointer's target, when present and still valid."""
        pointer = os.path.join(self.directory, _CURRENT)
        try:
            with open(pointer, "r", encoding="utf-8") as handle:
                filename = handle.readline().strip()
        except OSError:
            return None
        if (_NAME_RE.match(filename)
                and os.path.exists(os.path.join(self.directory,
                                                filename))):
            return filename
        return None

    def load_latest(self) -> tuple[int, list[tuple[str, str]]] | None:
        """The most recently *saved* snapshot, or ``None`` when empty.

        Follows the CURRENT pointer (serving order), not the highest
        epoch number: a reload to a smaller list set lowers the epoch
        counter, and a restart must resume what was last served, not
        what once had the most filters.  A missing or stale pointer
        (hand-pruned directory, pre-pointer store) falls back to the
        highest epoch.
        """
        filename = self._current_filename()
        if filename is not None:
            match = _NAME_RE.match(filename)
            assert match is not None  # _current_filename validated it
            epoch = int(match.group(1))
            return epoch, self._load_path(
                os.path.join(self.directory, filename), epoch)
        latest = self.latest_epoch()
        if latest is None:
            return None
        return latest, self.load(latest)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SnapshotStore({self.directory!r}, epochs={self.epochs()})"
