"""Resumable run checkpoints built on the write-ahead journal.

A :class:`Checkpoint` owns one :class:`~repro.state.journal.RunJournal`
and gives the pipeline a unit-of-work vocabulary on top of it:

* :meth:`Checkpoint.begin_scope` opens a named phase of the run (one
  survey engine-config/stratum group, the history commit loop) and
  pins that phase's *configuration fingerprint* — resuming a journal
  under different parameters is an error, not a silent wrong answer.
* :meth:`Checkpoint.record` journals one completed unit (a crawled
  target, a committed revision) with an identifying key and an
  arbitrary JSON payload.
* :meth:`Checkpoint.completed` replays what an earlier (crashed)
  process already finished so the caller can skip straight to the
  first incomplete unit.

:meth:`Checkpoint.resume` is deliberately forgiving about *when* the
crash happened: a missing journal file means the previous run died
before writing anything (or never ran) and is treated as a fresh
start, and a torn final record — the signature of dying mid-append —
is truncated away (:attr:`truncated_tail` reports it).  What it is
**not** forgiving about is identity: a run-level ``meta`` mismatch or
a scope fingerprint mismatch raises :class:`CheckpointError`, because
replaying units produced under different parameters would corrupt the
resumed run's results.

>>> import os, tempfile
>>> path = os.path.join(tempfile.mkdtemp(), "run.ckpt")
>>> ckpt = Checkpoint.start(path, {"study": "demo"})
>>> ckpt.begin_scope("survey", {"targets": 3})
[]
>>> ckpt.record("survey", "example.com", {"status": "success"})
>>> ckpt.close()
>>> resumed = Checkpoint.resume(path, {"study": "demo"})
>>> resumed.resumed
True
>>> resumed.begin_scope("survey", {"targets": 3})
[('example.com', {'status': 'success'})]
>>> resumed.close()
"""

from __future__ import annotations

import json
import os
import random

from repro.state.journal import JournalError, RunJournal

__all__ = ["CheckpointError", "Checkpoint", "snapshot_rng", "restore_rng"]


def snapshot_rng(rng: random.Random) -> list:
    """``random.Random`` internal state as a JSON-serializable list.

    Pipelines journal this *on change only* — the Mersenne state is
    ~2.5 KB of JSON, but most units of work never touch the rng.
    """
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def restore_rng(rng: random.Random, data: list) -> None:
    """Restore a state captured by :func:`snapshot_rng`."""
    rng.setstate((data[0], tuple(data[1]), data[2]))


class CheckpointError(ValueError):
    """Raised when a journal cannot be (safely) resumed."""


def _fingerprint(config: dict | None) -> str:
    """A stable, order-insensitive digest of a scope's parameters."""
    return json.dumps(config or {}, sort_keys=True, ensure_ascii=False,
                      separators=(",", ":"))


class Checkpoint:
    """One resumable run: scopes, completed units, and their journal.

    Construct via :meth:`start` (fresh run) or :meth:`resume`
    (continue a possibly-crashed one).
    """

    def __init__(self, journal: RunJournal, *, resumed: bool,
                 truncated_tail: bool, records: list[dict]) -> None:
        self._journal = journal
        self.resumed = resumed
        self.truncated_tail = truncated_tail
        # scope name -> fingerprint recorded in the journal
        self._scopes: dict[str, str] = {}
        # scope name -> ordered (key, payload) pairs already completed
        self._units: dict[str, list[tuple[str, dict]]] = {}
        self._done_keys: dict[str, set[str]] = {}
        for record in records:
            kind = record.get("kind")
            if kind == "scope":
                self._scopes[record["scope"]] = record["fingerprint"]
            elif kind == "unit":
                scope = record["scope"]
                key = record["key"]
                if key in self._done_keys.setdefault(scope, set()):
                    continue  # redone unit after a torn-tail resume
                self._done_keys[scope].add(key)
                self._units.setdefault(scope, []).append(
                    (key, record["payload"]))

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def start(cls, path: str, meta: dict | None = None) -> "Checkpoint":
        """Begin a fresh run at ``path``, truncating any prior journal."""
        journal = RunJournal.create(path, meta)
        return cls(journal, resumed=False, truncated_tail=False,
                   records=[])

    @classmethod
    def resume(cls, path: str,
               meta: dict | None = None) -> "Checkpoint":
        """Continue the run journaled at ``path``.

        A missing file is a fresh start (so ``--resume`` is safe on
        the very first run).  ``meta``, when given, must match the
        journal header's meta exactly.
        """
        if not os.path.exists(path):
            return cls.start(path, meta)
        try:
            journal, records, truncated = RunJournal.open(path)
        except JournalError as exc:
            raise CheckpointError(str(exc)) from exc
        header = records[0]
        if meta is not None and header.get("meta") != meta:
            journal.close()
            raise CheckpointError(
                f"{path}: journal belongs to a different run "
                f"(journal meta {header.get('meta')!r}, expected "
                f"{meta!r}); delete it or drop --resume")
        return cls(journal, resumed=True, truncated_tail=truncated,
                   records=records[1:])

    def close(self) -> None:
        self._journal.close()

    def sync(self) -> None:
        """Durability barrier: fsync everything journaled so far."""
        self._journal.sync()

    @property
    def path(self) -> str:
        return self._journal.path

    # -- scopes and units ------------------------------------------------

    def begin_scope(self, scope: str,
                    config: dict | None = None) -> list[tuple[str, dict]]:
        """Open (or re-open) a named phase of the run.

        Returns the ordered ``(key, payload)`` units this scope already
        completed in the crashed run — empty on a fresh start.  Raises
        :class:`CheckpointError` if the journal recorded the scope
        under a different configuration fingerprint.
        """
        fingerprint = _fingerprint(config)
        recorded = self._scopes.get(scope)
        if recorded is None:
            self._scopes[scope] = fingerprint
            self._journal.append({"kind": "scope", "scope": scope,
                                  "fingerprint": fingerprint})
        elif recorded != fingerprint:
            raise CheckpointError(
                f"{self.path}: scope {scope!r} was journaled with "
                f"configuration {recorded} but is being resumed with "
                f"{fingerprint}; results would not be comparable")
        return list(self._units.get(scope, ()))

    def completed(self, scope: str) -> list[tuple[str, dict]]:
        """Units already journaled for ``scope``, in completion order."""
        return list(self._units.get(scope, ()))

    def is_done(self, scope: str, key: str) -> bool:
        return key in self._done_keys.get(scope, ())

    def record(self, scope: str, key: str, payload: dict) -> None:
        """Journal one completed unit of work."""
        if scope not in self._scopes:
            raise CheckpointError(
                f"scope {scope!r} was never opened with begin_scope()")
        self._journal.append({"kind": "unit", "scope": scope,
                              "key": key, "payload": payload})
        self._done_keys.setdefault(scope, set()).add(key)
        self._units.setdefault(scope, []).append((key, payload))
