"""Atomic, corruption-detecting artifact writes.

A crash mid-``write()`` leaves a half-file; a crash between ``write()``
and ``close()`` leaves a file of unflushed length; a crash after a
plain in-place rewrite can leave *either* the old or a mangled hybrid.
Every artifact the pipeline emits (metrics/trace exports, rendered
tables, archives) goes through the classic write-to-temp → flush →
fsync → ``os.replace`` dance instead, so readers only ever observe the
old complete file or the new complete file — never a torn one.

For JSON-lines artifacts, :func:`atomic_write_jsonl` additionally
appends a CRC-checksummed *footer record* — itself a valid JSON line,
so ``jq``-style consumers are undisturbed::

    {"type": "footer", "records": 42, "crc32": "0a1b2c3d"}

The checksum covers every byte that precedes the footer, which lets
:func:`read_jsonl` distinguish "this file is complete and intact" from
silent corruption that atomic renames alone cannot detect (bit rot,
partial copies between machines).

>>> import tempfile, os
>>> path = os.path.join(tempfile.mkdtemp(), "demo.jsonl")
>>> atomic_write_jsonl(path, [{"a": 1}, {"b": 2}])
2
>>> read_jsonl(path)
[{'a': 1}, {'b': 2}]
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Iterable

__all__ = [
    "ArtifactError",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_jsonl",
    "jsonl_footer",
    "read_jsonl",
]

#: The ``type`` tag of the trailing checksum record.
FOOTER_TYPE = "footer"


class ArtifactError(ValueError):
    """Raised for missing, truncated, or corrupted artifacts."""


def _fsync_directory(directory: str) -> None:
    """Persist the rename itself (best-effort on exotic filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *,
                       fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` never crosses a filesystem boundary (cross-device
    renames are copies, which are not atomic).
    """
    target = os.path.abspath(path)
    directory = os.path.dirname(target)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(target) + ".",
        suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, target)
        if fsync:
            _fsync_directory(directory)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def atomic_write_text(path: str, text: str, *,
                      encoding: str = "utf-8", fsync: bool = True) -> None:
    """Atomic counterpart of ``Path.write_text``."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def _dump(record: dict) -> str:
    return json.dumps(record, ensure_ascii=False)


def jsonl_footer(body: bytes, records: int) -> dict:
    """The checksum footer for ``records`` JSON lines totalling ``body``."""
    return {"type": FOOTER_TYPE, "records": records,
            "crc32": f"{zlib.crc32(body) & 0xFFFFFFFF:08x}"}


def atomic_write_jsonl(path: str, records: Iterable[dict], *,
                       footer: bool = True, fsync: bool = True) -> int:
    """Atomically write ``records`` as JSON lines; returns the count.

    With ``footer=True`` (the default) the file ends with a
    :func:`jsonl_footer` record covering everything above it, so
    :func:`read_jsonl` can prove the artifact complete.
    """
    lines = [_dump(record) + "\n" for record in records]
    body = "".join(lines).encode("utf-8")
    payload = body
    if footer:
        payload += (_dump(jsonl_footer(body, len(lines))) + "\n").encode(
            "utf-8")
    atomic_write_bytes(path, payload, fsync=fsync)
    return len(lines)


def read_jsonl(path: str, *, verify: bool = True,
               require_footer: bool = True) -> list[dict]:
    """Read a JSON-lines artifact, verifying its checksum footer.

    Returns the data records (the footer is consumed, not returned).
    With ``verify=True`` a missing footer (when ``require_footer``),
    a record-count mismatch, or a CRC mismatch raises
    :class:`ArtifactError`; ``verify=False`` just strips any footer.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise ArtifactError(f"unreadable artifact {path!r}: {exc}") from exc
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    records: list[dict] = []
    for number, line in enumerate(lines, start=1):
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ArtifactError(
                f"{path}: line {number} is not valid JSON ({exc})") from exc
    footer = None
    if records and isinstance(records[-1], dict) \
            and records[-1].get("type") == FOOTER_TYPE:
        footer = records.pop()
    if not verify:
        return records
    if footer is None:
        if require_footer:
            raise ArtifactError(
                f"{path}: missing checksum footer (file truncated, or "
                "written without one)")
        return records
    body = raw[:raw.rfind(b"\n", 0, len(raw) - 1) + 1] if records \
        else b""
    expected = jsonl_footer(body, len(records))
    if footer.get("records") != expected["records"]:
        raise ArtifactError(
            f"{path}: footer claims {footer.get('records')} records, "
            f"found {len(records)}")
    if footer.get("crc32") != expected["crc32"]:
        raise ArtifactError(
            f"{path}: checksum mismatch (footer {footer.get('crc32')}, "
            f"computed {expected['crc32']}) — artifact is corrupted")
    return records
