"""Crash safety for long-running measurement jobs.

``repro.state`` is the durability layer under the survey pipeline:

* :mod:`repro.state.atomic` — write-to-temp + fsync + rename artifact
  writes with CRC-checksummed JSONL footers, so a crash can never
  leave a half-written metrics file or report behind.
* :mod:`repro.state.journal` — the append-only, checksummed
  write-ahead :class:`~repro.state.journal.RunJournal` that records
  each completed unit of work.
* :mod:`repro.state.checkpoint` — :class:`~repro.state.checkpoint.\
Checkpoint`, which replays a journal, truncates torn tail records,
  validates configuration fingerprints, and tells the pipeline which
  units to skip on ``--resume``.
* :mod:`repro.state.crashpoints` — deterministic process-death
  injection (:class:`~repro.state.crashpoints.CrashInjector`) used by
  the crash-resume test harness.
* :mod:`repro.state.snapshots` — atomic, epoch-keyed
  :class:`~repro.state.snapshots.SnapshotStore` artifacts holding the
  filter-list sources each validated serving snapshot was compiled
  from, so a daemon restart reloads exactly the epoch it was serving.
* :mod:`repro.state.leaselog` — the work-stealing scheduler's
  supervision side-journal (:class:`~repro.state.leaselog.LeaseLog`):
  lease grants, revocations with poison strikes, and quarantines, kept
  out of the result checkpoint so finished checkpoints stay
  byte-identical across kill schedules.

The package is deliberately stdlib-only and imports nothing from the
rest of :mod:`repro`, so every other layer (web, measurement, history,
obs, cli) can depend on it without cycles.
"""

from repro.state.atomic import (ArtifactError, atomic_write_bytes,
                                atomic_write_jsonl, atomic_write_text,
                                jsonl_footer, read_jsonl)
from repro.state.checkpoint import (Checkpoint, CheckpointError,
                                    restore_rng, snapshot_rng)
from repro.state.crashpoints import (CRASH, CrashInjector, SimulatedCrash,
                                     crashing, crashpoint)
from repro.state.journal import (JournalCorruption, JournalError,
                                 RunJournal, replay_journal)
from repro.state.leaselog import (LeaseLog, discard_lease_log,
                                  lease_log_path, read_lease_strikes)
from repro.state.snapshots import SnapshotStore, SnapshotStoreError

__all__ = [
    "ArtifactError",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_jsonl",
    "jsonl_footer",
    "read_jsonl",
    "JournalError",
    "JournalCorruption",
    "RunJournal",
    "replay_journal",
    "Checkpoint",
    "CheckpointError",
    "snapshot_rng",
    "restore_rng",
    "CRASH",
    "CrashInjector",
    "SimulatedCrash",
    "crashing",
    "crashpoint",
    "LeaseLog",
    "discard_lease_log",
    "lease_log_path",
    "read_lease_strikes",
    "SnapshotStore",
    "SnapshotStoreError",
]
