"""A synthetic EasyList — the blocking side of the default configuration.

EasyList contains tens of thousands of blocking filters covering the
common ad networks.  Our synthetic edition has three parts:

* the *real* blocking filters for every catalog ad network (these are
  the ones the survey actually exercises);
* element-hiding filters for the catalog's ad elements plus the classic
  generic selectors (``##.banner-ad``, ``###influads_block``);
* a large tail of filler filters for ad servers that never appear in
  the synthetic web — they make the list realistically large so the
  engine's keyword index earns its keep, and they exercise the
  "EasyList mostly doesn't match" behaviour of real pages.

Note what is deliberately absent: any filter matching ``gstatic.com``.
The paper points out that the whitelist's gstatic exception is
*needless* because EasyList never blocked those requests — reproducing
that requires the absence to be intentional here.
"""

from __future__ import annotations

from repro.filters.filterlist import FilterList, parse_filter_list
from repro.web.adnetworks import NETWORK_CATALOG

__all__ = ["build_easylist", "EASYLIST_FILLER_COUNT"]

EASYLIST_FILLER_COUNT = 2_000

_GENERIC_ELEMENT_FILTERS = (
    "##.banner-ad",
    "##.sponsored-links",
    "###ad-container",
    "###ad_top",
    "##.adsbox",
    "##.ad-banner",
    "##div[id^=\"div-gpt-ad\"]",
    "##.ad-slot",
)

_FILLER_WORDS = (
    "banner", "click", "pop", "track", "serve", "delivery", "impress",
    "traffic", "media", "cash", "profit", "revenue", "yield", "promo",
)


def build_easylist(name: str = "easylist") -> FilterList:
    """Construct the synthetic EasyList."""
    lines: list[str] = ["[Adblock Plus 2.0]", "! Title: EasyList"]

    lines.append("! -- catalog ad networks")
    seen: set[str] = set()
    for network in NETWORK_CATALOG:
        for flt in network.blocking_filters:
            if flt not in seen:
                seen.add(flt)
                lines.append(flt)

    lines.append("! -- generic element hiding")
    lines.extend(_GENERIC_ELEMENT_FILTERS)

    lines.append("! -- long tail")
    for i in range(EASYLIST_FILLER_COUNT):
        word = _FILLER_WORDS[i % len(_FILLER_WORDS)]
        style = i % 4
        if style == 0:
            lines.append(f"||{word}server{i}.com^$third-party")
        elif style == 1:
            lines.append(f"||ads.{word}net{i}.net^")
        elif style == 2:
            lines.append(f"/{word}-zone-{i}/$image")
        else:
            lines.append(f"||cdn{i}.{word}-delivery.com/js/$script")

    return parse_filter_list("\n".join(lines), name=name)
