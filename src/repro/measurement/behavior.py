"""Deeper filter-behaviour characterisation — the paper's future work.

Section 5 closes: "These results suggest the need for more complex
analysis techniques to fully characterize the whitelist's behavior.  We
leave such explorations for future work."  This module is that
exploration, quantifying three behaviours the paper could only gesture
at:

* **needless activation** — per filter, the fraction of activations
  with no blocking counterpart (content EasyList never would have
  blocked; the gstatic case);
* **visual impact** — whether a filter's activations put visible ad
  content on the page (versus pure conversion tracking), using the
  synthetic web's ground-truth ad labels;
* **scope utilisation** — for restricted filters, how many of their
  declared domains were ever observed activating them, i.e. how much
  declared scope is dead weight.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.filters.parser import parse_filter
from repro.measurement.survey import SurveyResult, WHITELIST_NAME
from repro.web.crawler import CrawlRecord

__all__ = [
    "FilterBehavior",
    "BehaviorReport",
    "characterize_filters",
    "scope_utilisation",
]

#: Ad networks whose resources render visible content (the catalog's
#: element-injecting resources); everything else is tracking-only.
_VISIBLE_NETWORKS = frozenset({
    "googlesyndication", "doubleclick-pagead", "criteo", "outbrain",
    "taboola", "influads", "adzerk", "generic-publisher-adserv",
    "generic-banner", "openx", "pubmatic", "zedo",
})


def _visible_filter_texts() -> frozenset[str]:
    """Whitelist filters belonging to ad-rendering networks.

    A filter's visual impact is a property of the network it excepts:
    if the network's resources inject DOM elements, allowing them puts
    ads on the page; a pure conversion pixel never does.  (Classifying
    by co-occurring page content would mislabel trackers that merely
    ride along on ad-heavy sites — gstatic fires on plenty of pages
    with visible ads it had nothing to do with.)
    """
    from repro.web.adnetworks import NETWORK_CATALOG

    texts: set[str] = set()
    for network in NETWORK_CATALOG:
        renders = (network.name in _VISIBLE_NETWORKS
                   or any(r.element is not None for r in network.resources))
        if renders:
            texts.update(network.whitelist_filters)
    return frozenset(texts)


_VISIBLE_FILTERS = _visible_filter_texts()


def _filter_renders_ads(filter_text: str) -> bool:
    if filter_text in _VISIBLE_FILTERS:
        return True
    # Restricted publisher exceptions and element exceptions surface
    # visible advertising; trackpix/conversion extras do not.
    if filter_text.startswith("@@||adserv.genericnet.com/"):
        return True
    if "#@#" in filter_text:
        return True
    return False


@dataclass(slots=True)
class FilterBehavior:
    """Observed behaviour of one whitelist filter across a survey."""

    filter_text: str
    activations: int = 0
    needless: int = 0
    domains: set = field(default_factory=set)
    visible_ad_domains: set = field(default_factory=set)

    @property
    def needless_fraction(self) -> float:
        return self.needless / self.activations if self.activations else 0.0

    renders_ads: bool = False

    @property
    def tracking_only(self) -> bool:
        """True when the filter's network renders no visible content."""
        return not self.renders_ads


@dataclass(slots=True)
class BehaviorReport:
    """Aggregate behaviour over all whitelist filters in a survey."""

    filters: dict[str, FilterBehavior] = field(default_factory=dict)

    @property
    def fully_needless(self) -> list[FilterBehavior]:
        """Filters 100% of whose activations were needless (gstatic)."""
        return [b for b in self.filters.values()
                if b.activations and b.needless_fraction == 1.0]

    @property
    def tracking_only_filters(self) -> list[FilterBehavior]:
        return [b for b in self.filters.values()
                if b.activations and b.tracking_only]

    @property
    def visible_ad_filters(self) -> list[FilterBehavior]:
        return [b for b in self.filters.values()
                if b.activations and not b.tracking_only]

    def needless_activation_rate(self) -> float:
        """Survey-wide fraction of whitelist activations that were
        needless."""
        total = sum(b.activations for b in self.filters.values())
        needless = sum(b.needless for b in self.filters.values())
        return needless / total if total else 0.0


def characterize_filters(records: list[CrawlRecord]) -> BehaviorReport:
    """Characterise every whitelist filter observed in ``records``."""
    report = BehaviorReport()
    for record in records:
        visible_site = _has_visible_ads(record)
        for activation in record.visit.whitelist_activations:
            if activation.list_name != WHITELIST_NAME:
                continue
            behavior = report.filters.get(activation.filter_text)
            if behavior is None:
                behavior = FilterBehavior(
                    filter_text=activation.filter_text,
                    renders_ads=_filter_renders_ads(
                        activation.filter_text))
                report.filters[activation.filter_text] = behavior
            behavior.activations += 1
            if activation.needless:
                behavior.needless += 1
            behavior.domains.add(record.domain)
            if visible_site:
                behavior.visible_ad_domains.add(record.domain)
    return report


def _has_visible_ads(record: CrawlRecord) -> bool:
    networks = set(record.profile.networks)
    if networks & _VISIBLE_NETWORKS:
        return True
    return bool(record.profile.first_party_ads)


def scope_utilisation(result: SurveyResult) -> dict[str, float]:
    """Declared-scope utilisation of restricted whitelist filters.

    For each restricted filter observed in the survey, the fraction of
    its declared ``domain=`` entries that were actually seen activating
    it.  Filters with enormous declared scopes and tiny observed scopes
    are the "overly general" rows of the Section 8 report.
    """
    observed: dict[str, set] = defaultdict(set)
    for record in result.all_records():
        for activation in record.visit.whitelist_activations:
            if activation.list_name != WHITELIST_NAME:
                continue
            observed[activation.filter_text].add(record.domain)

    utilisation: dict[str, float] = {}
    for text, domains in observed.items():
        parsed = parse_filter(text)
        declared = getattr(parsed, "restricted_domains", ())
        if not declared:
            continue
        from repro.web.url import registered_domain

        declared_e2lds = {registered_domain(d) for d in declared}
        used = sum(1 for d in declared_e2lds
                   if any(site == d or site.endswith("." + d)
                          for site in domains))
        utilisation[text] = used / len(declared_e2lds)
    return utilisation
