"""Synthetic Alexa ranking — the popularity substrate.

The paper draws every domain sample from the Alexa rankings of April
2015: the top 5,000 for the main survey, three 1,000-domain strata
(5K–50K, 50K–100K, 100K–1M) for the popularity comparison (Figure 8),
and the top-1M partitions of Table 2.

We synthesise a deterministic 1M-entry ranking:

* the domains the paper names are *pinned* at fixed plausible ranks
  (google.com at 1, reddit.com at 31, toyota.com at 1916, ...);
* every other rank gets a generated domain whose name embeds the rank
  (making rank lookup invertible) and a category drawn from a fixed
  distribution;
* :func:`whitelisted_rank_sets` designates which ranks belong to
  explicitly whitelisted publishers so that the Table 2 partition counts
  come out at the paper's values (33 of the top 100, 112 of the top
  500, 167 of the top 1,000, 316 of the top 5,000, 1,286 of the top 1M,
  1,990 total including 704 outside the ranking).
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass

from repro.web.sites import PINNED_PROFILES

__all__ = [
    "AlexaRanking",
    "GOOGLE_CCTLD_COUNT",
    "PARTITION_TARGETS",
    "StudyPopulation",
    "TOTAL_WHITELISTED_E2LDS",
    "WhitelistedPublisher",
    "WhitelistedRanks",
    "build_study_population",
    "google_cctld_domains",
    "whitelisted_rank_sets",
]

#: Cumulative Table 2 targets: partition upper bound -> whitelisted e2LDs.
PARTITION_TARGETS: dict[int, int] = {
    100: 33,
    500: 112,
    1_000: 167,
    5_000: 316,
    1_000_000: 1_286,
}

#: Table 2's "All" row: 1,990 effective second-level domains.
TOTAL_WHITELISTED_E2LDS = 1_990

_WORDS = (
    "news", "daily", "web", "tech", "shop", "store", "game", "play",
    "media", "live", "stream", "cloud", "data", "home", "world", "city",
    "sport", "auto", "travel", "food", "health", "style", "photo",
    "video", "music", "movie", "book", "art", "blog", "forum", "wiki",
    "deal", "coupon", "bank", "trade", "job", "mail", "chat", "social",
    "learn", "kids", "pet", "garden", "craft", "race", "star", "geek",
)
_TLDS = ("com", "com", "com", "com", "net", "org", "info", "co.uk",
         "de", "ru", "com.br", "fr", "it", "es", "jp", "in")

_CATEGORIES = (
    "news", "shopping", "social", "video", "games", "reference",
    "viral", "search", "travel", "isp", "humor", "general", "tech",
    "sports", "finance", "adult", "classifieds",
)
_CATEGORY_WEIGHTS = (
    12, 14, 6, 5, 7, 6, 3, 2, 4, 2, 2, 18, 6, 5, 4, 3, 1,
)

_GENERATED_RE = re.compile(r"^[a-z]+-r(\d+)\.[a-z.]+$")


class AlexaRanking:
    """The deterministic synthetic top-1M ranking."""

    def __init__(self, seed: int = 2015, size: int = 1_000_000) -> None:
        self.seed = seed
        self.size = size
        self._pinned_by_rank = {
            profile.rank: profile.domain
            for profile in PINNED_PROFILES.values()
            if profile.rank <= size
        }
        self._pinned_by_domain = {
            domain: rank for rank, domain in self._pinned_by_rank.items()
        }

    def pin(self, domain: str, rank: int) -> None:
        """Pin ``domain`` at ``rank`` (must be free, domain unseen).

        Used by the study population to place Google ccTLD properties and
        other whitelist identities at designated ranks.
        """
        if rank in self._pinned_by_rank:
            raise ValueError(f"rank {rank} already pinned to "
                             f"{self._pinned_by_rank[rank]!r}")
        if domain in self._pinned_by_domain:
            raise ValueError(f"domain {domain!r} already pinned")
        self._pinned_by_rank[rank] = domain
        self._pinned_by_domain[domain] = rank

    # -- lookup ------------------------------------------------------------

    def domain_at(self, rank: int) -> str:
        """The domain ranked ``rank`` (1-based)."""
        if not 1 <= rank <= self.size:
            raise IndexError(f"rank {rank} outside 1..{self.size}")
        pinned = self._pinned_by_rank.get(rank)
        if pinned is not None:
            return pinned
        rng = self._rng(f"name:{rank}")
        w1 = rng.choice(_WORDS)
        w2 = rng.choice(_WORDS)
        tld = rng.choice(_TLDS)
        return f"{w1}{w2}-r{rank}.{tld}"

    def rank_of(self, domain: str) -> int | None:
        """Inverse of :meth:`domain_at`; None for unranked domains."""
        pinned = self._pinned_by_domain.get(domain)
        if pinned is not None:
            return pinned
        match = _GENERATED_RE.match(domain)
        if match:
            rank = int(match.group(1))
            if 1 <= rank <= self.size and self.domain_at(rank) == domain:
                return rank
        return None

    def category_of(self, domain: str) -> str:
        profile = PINNED_PROFILES.get(domain)
        if profile is not None:
            return profile.category
        rng = self._rng(f"cat:{domain}")
        return rng.choices(_CATEGORIES, weights=_CATEGORY_WEIGHTS)[0]

    # -- sampling -----------------------------------------------------------

    def top(self, n: int) -> list[tuple[int, str]]:
        """The top ``n`` (rank, domain) pairs."""
        return [(rank, self.domain_at(rank)) for rank in range(1, n + 1)]

    def sample_stratum(self, low: int, high: int, n: int,
                       *, salt: str = "") -> list[tuple[int, str]]:
        """``n`` distinct random ranks in [low, high], rank-sorted.

        Deterministic given the ranking seed and ``salt`` (the survey
        uses one salt per sample group).
        """
        if high - low + 1 < n:
            raise ValueError("stratum smaller than requested sample")
        rng = self._rng(f"stratum:{low}:{high}:{salt}")
        ranks = rng.sample(range(low, high + 1), n)
        ranks.sort()
        return [(rank, self.domain_at(rank)) for rank in ranks]

    def _rng(self, salt: str) -> random.Random:
        digest = hashlib.sha256(f"{self.seed}:{salt}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class WhitelistedRanks:
    """The designated whitelisted-publisher ranks and unranked extras."""

    ranks: tuple[int, ...]            # sorted, within the ranking
    unranked_count: int               # whitelisted e2LDs outside the top 1M

    def count_within(self, bound: int) -> int:
        return sum(1 for r in self.ranks if r <= bound)

    @property
    def total(self) -> int:
        return len(self.ranks) + self.unranked_count


def whitelisted_rank_sets(ranking: AlexaRanking) -> WhitelistedRanks:
    """Choose which ranks host explicitly whitelisted publishers.

    Pinned publishers with whitelist filters occupy their own ranks;
    the rest are drawn deterministically so each Table 2 partition hits
    its target exactly.
    """
    pinned_whitelisted = sorted(
        profile.rank
        for profile in PINNED_PROFILES.values()
        if profile.is_whitelisted_publisher and profile.rank <= ranking.size
    )
    pinned_excluded = {
        profile.rank
        for profile in PINNED_PROFILES.values()
        if not profile.is_whitelisted_publisher
    }

    chosen: set[int] = set(pinned_whitelisted)
    boundaries = [(1, 100), (101, 500), (501, 1_000), (1_001, 5_000),
                  (5_001, 1_000_000)]
    cumulative_targets = list(PARTITION_TARGETS.values())
    rng = ranking._rng("whitelist-ranks")

    previous_cumulative = 0
    for (low, high), cumulative in zip(boundaries, cumulative_targets):
        needed = cumulative - previous_cumulative
        have = sum(1 for r in chosen if low <= r <= high)
        missing = needed - have
        if missing < 0:
            raise ValueError(
                f"pinned publishers already exceed the {high} partition "
                f"target ({have} > {needed})")
        candidates = [r for r in range(low, high + 1)
                      if r not in chosen and r not in pinned_excluded]
        chosen.update(rng.sample(candidates, missing))
        previous_cumulative = cumulative

    unranked = TOTAL_WHITELISTED_E2LDS - len(chosen)
    return WhitelistedRanks(ranks=tuple(sorted(chosen)),
                            unranked_count=unranked)


# ---------------------------------------------------------------------------
# Study population: ranking + whitelisted identities, fully resolved
# ---------------------------------------------------------------------------

#: How many of the 919 Google ccTLD e2LDs sit inside the top 1M.
GOOGLE_CCTLD_COUNT = 919
_GOOGLE_RANKED = 300


def google_cctld_domains(count: int = GOOGLE_CCTLD_COUNT) -> list[str]:
    """Deterministic list of Google country properties (google.ab,
    google.co.cd, ...) — stand-ins for the 919 ccTLD variants of
    Section 4.2.1."""
    import itertools
    import string

    domains: list[str] = []
    letters = string.ascii_lowercase
    for a, b in itertools.product(letters, letters):
        domains.append(f"google.{a}{b}")
        if len(domains) >= count:
            return domains
    for a, b in itertools.product(letters, letters):
        domains.append(f"google.co.{a}{b}")
        if len(domains) >= count:
            return domains
    raise ValueError("cannot generate that many ccTLD variants")


@dataclass(frozen=True)
class WhitelistedPublisher:
    """One whitelisted e2LD in the study population."""

    e2ld: str
    rank: int | None          # None = outside the top 1M
    kind: str                 # "pinned" | "google-cctld" | "generic"


@dataclass(frozen=True)
class StudyPopulation:
    """The resolved study universe: ranking plus whitelist identities."""

    ranking: AlexaRanking
    publishers: tuple[WhitelistedPublisher, ...]

    def by_kind(self, kind: str) -> list[WhitelistedPublisher]:
        return [p for p in self.publishers if p.kind == kind]

    @property
    def generic_pool(self) -> list[WhitelistedPublisher]:
        return self.by_kind("generic")


def build_study_population(seed: int = 2015) -> StudyPopulation:
    """Build the ranking and resolve every whitelisted e2LD's identity.

    Pinned publisher profiles keep their ranks; 300 of the designated
    5001–1M whitelist ranks become Google ccTLD properties (the rest of
    the 919 sit outside the top 1M); the remaining designated ranks are
    generic publishers, topped up with off-ranking generics so the total
    is exactly 1,990 e2LDs.
    """
    from repro.web.sites import PINNED_PROFILES as _PINNED

    ranking = AlexaRanking(seed=seed)
    designated = whitelisted_rank_sets(ranking)

    pinned_whitelisted_ranks = {
        profile.rank: profile.domain
        for profile in _PINNED.values()
        if profile.is_whitelisted_publisher and profile.rank <= ranking.size
    }

    cctlds = google_cctld_domains()
    deep_ranks = [r for r in designated.ranks
                  if r > 5_000 and r not in pinned_whitelisted_ranks]
    rng = ranking._rng("cctld-placement")
    cctld_ranks = sorted(rng.sample(deep_ranks, _GOOGLE_RANKED))
    for domain, rank in zip(cctlds, cctld_ranks):
        ranking.pin(domain, rank)
    ranked_cctlds = dict(zip(cctlds, cctld_ranks))
    unranked_cctlds = cctlds[_GOOGLE_RANKED:]

    publishers: list[WhitelistedPublisher] = []
    cctld_rank_set = set(cctld_ranks)
    for rank in designated.ranks:
        if rank in pinned_whitelisted_ranks:
            publishers.append(WhitelistedPublisher(
                e2ld=pinned_whitelisted_ranks[rank], rank=rank,
                kind="pinned"))
        elif rank in cctld_rank_set:
            domain = ranking.domain_at(rank)
            publishers.append(WhitelistedPublisher(
                e2ld=domain, rank=rank, kind="google-cctld"))
        else:
            publishers.append(WhitelistedPublisher(
                e2ld=ranking.domain_at(rank), rank=rank, kind="generic"))

    for domain in unranked_cctlds:
        publishers.append(WhitelistedPublisher(
            e2ld=domain, rank=None, kind="google-cctld"))

    generic_offlist = designated.unranked_count - len(unranked_cctlds)
    if generic_offlist < 0:
        raise ValueError("unranked ccTLDs exceed the unranked budget")
    for i in range(generic_offlist):
        publishers.append(WhitelistedPublisher(
            e2ld=f"smallpub{i}-offlist.com", rank=None, kind="generic"))

    assert len(publishers) == TOTAL_WHITELISTED_E2LDS
    return StudyPopulation(ranking=ranking, publishers=tuple(publishers))
