"""Survey statistics: Table 2, Table 4, Figures 6, 7 and 8.

Each function takes raw survey output (or the whitelist itself, for
Table 2) and produces exactly the quantity the paper reports, in a form
the benchmark harness can print as the paper's rows/series.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.filters.classify import ScopeReport, classify_whitelist
from repro.filters.filterlist import FilterList
from repro.measurement.alexa import AlexaRanking, PARTITION_TARGETS
from repro.measurement.survey import (
    EASYLIST_NAME,
    SurveyResult,
    WHITELIST_NAME,
)
from repro.web.crawler import CrawlRecord

__all__ = [
    "PartitionRow",
    "table2_partitions",
    "TopFilterRow",
    "table4_top_filters",
    "SiteMatchBar",
    "figure6_site_matches",
    "EcdfSeries",
    "figure7_ecdf",
    "GroupFilterMatrix",
    "figure8_group_matrix",
    "Section51Headline",
    "section51_headline",
]


# ---------------------------------------------------------------------------
# Table 2 — whitelisted domains per Alexa partition
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class PartitionRow:
    """One Table 2 row."""

    partition: int | None      # None = "All"
    count: int
    fraction: float | None     # of the partition size


def table2_partitions(whitelist: FilterList,
                      ranking: AlexaRanking,
                      *, scope: ScopeReport | None = None
                      ) -> list[PartitionRow]:
    """Whitelisted e2LDs falling inside each Alexa partition."""
    scope = scope or classify_whitelist(whitelist)
    e2lds = scope.effective_second_level_domains
    ranks = sorted(
        rank for rank in (ranking.rank_of(d) for d in e2lds)
        if rank is not None
    )
    rows = [PartitionRow(partition=None, count=len(e2lds), fraction=None)]
    for bound in sorted(PARTITION_TARGETS, reverse=True):
        inside = sum(1 for r in ranks if r <= bound)
        rows.append(PartitionRow(partition=bound, count=inside,
                                 fraction=inside / bound))
    return rows


# ---------------------------------------------------------------------------
# Table 4 — most common whitelist filters in the top-5K survey
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class TopFilterRow:
    """One Table 4 row: a whitelist filter and its activating domains."""

    rank: int
    filter_text: str
    domains: int
    fraction_of_group: float


def table4_top_filters(records: list[CrawlRecord],
                       top: int = 20) -> list[TopFilterRow]:
    """The ``top`` whitelist filters by number of activating domains."""
    domain_sets: dict[str, set[str]] = {}
    for record in records:
        for activation in record.visit.whitelist_activations:
            if activation.list_name != WHITELIST_NAME:
                continue
            domain_sets.setdefault(activation.filter_text, set()).add(
                record.domain)
    ranked = sorted(domain_sets.items(),
                    key=lambda item: (-len(item[1]), item[0]))
    group_size = max(1, len(records))
    return [
        TopFilterRow(rank=i + 1, filter_text=text, domains=len(domains),
                     fraction_of_group=len(domains) / group_size)
        for i, (text, domains) in enumerate(ranked[:top])
    ]


# ---------------------------------------------------------------------------
# Figure 6 — per-site matches, whitelist on vs off
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SiteMatchBar:
    """One Figure 6 bar pair: a site's matches in both configurations."""

    domain: str
    rank: int
    explicitly_whitelisted: bool     # bold label in the paper
    whitelist_matches: int           # with whitelist: whitelist-source
    easylist_matches_with: int       # with whitelist: EasyList-source
    easylist_matches_without: int    # whitelist disabled


def figure6_site_matches(result: SurveyResult,
                         *, group: str = "top-5k",
                         top: int = 50,
                         elide: tuple[str, ...] = ("sina.com.cn",)
                         ) -> list[SiteMatchBar]:
    """The ``top`` most popular sites with ≥1 match, as Figure 6 plots.

    The paper plots "the top 50 sites with at least one filter
    activation", ordered by Alexa rank; sites in ``elide`` are dropped
    ("we elide sina.com.cn for ease of presentation").
    """
    without = {r.domain: r for r in result.records_easylist_only.get(group, [])}
    bars: list[SiteMatchBar] = []
    for record in result.records[group]:
        if record.domain in elide:
            continue
        plain = without.get(record.domain)
        easylist_without = (
            sum(1 for a in plain.visit.activations
                if a.list_name == EASYLIST_NAME)
            if plain is not None else 0
        )
        whitelist_matches = sum(
            1 for a in record.visit.activations
            if a.list_name == WHITELIST_NAME)
        easylist_with = sum(
            1 for a in record.visit.activations
            if a.list_name == EASYLIST_NAME)
        if whitelist_matches + easylist_with + easylist_without == 0:
            continue
        bars.append(SiteMatchBar(
            domain=record.domain,
            rank=record.rank,
            explicitly_whitelisted=record.profile.is_whitelisted_publisher,
            whitelist_matches=whitelist_matches,
            easylist_matches_with=easylist_with,
            easylist_matches_without=easylist_without,
        ))
    bars.sort(key=lambda b: b.rank)
    return bars[:top]


# ---------------------------------------------------------------------------
# Figure 7 — ECDF of whitelist matches per surveyed domain
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class EcdfSeries:
    """An empirical CDF: sorted values with cumulative fractions."""

    values: tuple[int, ...]
    fractions: tuple[float, ...]

    @classmethod
    def from_values(cls, raw: list[int]) -> "EcdfSeries":
        ordered = sorted(raw)
        n = len(ordered)
        return cls(
            values=tuple(ordered),
            fractions=tuple((i + 1) / n for i in range(n)),
        )

    def quantile(self, q: float) -> int:
        """Value at cumulative fraction ``q`` (0 < q <= 1)."""
        if not self.values:
            raise ValueError("empty ECDF")
        index = min(len(self.values) - 1,
                    max(0, int(q * len(self.values)) - 1))
        return self.values[index]

    def fraction_at_least(self, threshold: int) -> float:
        return sum(1 for v in self.values if v >= threshold) / len(self.values)


@dataclass(frozen=True, slots=True)
class Figure7:
    """Both Figure 7 curves, over whitelist-activating domains only."""

    total_matches: EcdfSeries
    distinct_filters: EcdfSeries
    activating_domains: int


def figure7_ecdf(records: list[CrawlRecord]) -> Figure7:
    totals: list[int] = []
    distinct: list[int] = []
    for record in records:
        wl = [a for a in record.visit.whitelist_activations
              if a.list_name == WHITELIST_NAME]
        if not wl:
            continue
        totals.append(len(wl))
        distinct.append(len({a.filter_text for a in wl}))
    return Figure7(
        total_matches=EcdfSeries.from_values(totals),
        distinct_filters=EcdfSeries.from_values(distinct),
        activating_domains=len(totals),
    )


# ---------------------------------------------------------------------------
# Figure 8 — filter activation frequency per popularity group
# ---------------------------------------------------------------------------

@dataclass
class GroupFilterMatrix:
    """Figure 8's heat map: per-group activation frequency per filter."""

    filters: list[str]                       # columns, most-active first
    groups: list[str]                        # rows
    frequency: dict[str, Counter] = field(default_factory=dict)
    group_sizes: dict[str, int] = field(default_factory=dict)

    def rate(self, group: str, filter_text: str) -> float:
        return (self.frequency[group][filter_text]
                / max(1, self.group_sizes[group]))

    def peak_group(self, filter_text: str) -> str:
        """The group where a filter fires most frequently (by rate)."""
        return max(self.groups, key=lambda g: self.rate(g, filter_text))


def figure8_group_matrix(result: SurveyResult,
                         top_filters: int = 50) -> GroupFilterMatrix:
    """Per-group activation frequencies for the most active filters."""
    matrix = GroupFilterMatrix(filters=[], groups=[])
    overall: Counter = Counter()
    for group in result.groups:
        name = group.name
        matrix.groups.append(name)
        counts: Counter = Counter()
        for record in result.records[name]:
            for text in {a.filter_text for a in record.visit.activations}:
                counts[text] += 1
                overall[text] += 1
        matrix.frequency[name] = counts
        matrix.group_sizes[name] = len(result.records[name])
    matrix.filters = [text for text, _ in overall.most_common(top_filters)]
    return matrix


# ---------------------------------------------------------------------------
# Section 5.1 headline numbers
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Section51Headline:
    """The prose numbers of Section 5.1."""

    surveyed: int
    any_activation: int              # paper: 3,956 of 5,000
    whitelist_activation: int        # paper: 2,934 (59%)
    max_total_matches: int           # paper: 83 (toyota.com)
    max_domain: str
    max_distinct_filters: int        # paper: 8
    mean_distinct_filters: float     # paper: 2.6
    p95_total_matches: int           # paper: >= 12 for 5% of sites


def section51_headline(records: list[CrawlRecord]) -> Section51Headline:
    any_act = sum(1 for r in records if r.visit.activations)
    wl_records = []
    for record in records:
        wl = [a for a in record.visit.whitelist_activations
              if a.list_name == WHITELIST_NAME]
        if wl:
            wl_records.append((record, wl))
    if wl_records:
        max_record, max_wl = max(wl_records, key=lambda rw: len(rw[1]))
        distinct_counts = [len({a.filter_text for a in wl})
                           for _, wl in wl_records]
        mean_distinct = sum(distinct_counts) / len(distinct_counts)
        totals = EcdfSeries.from_values([len(wl) for _, wl in wl_records])
        p95 = totals.quantile(0.95)
        max_distinct = len({a.filter_text for a in max_wl})
    else:  # pragma: no cover - degenerate surveys only
        max_record, max_wl, mean_distinct, p95, max_distinct = (
            None, [], 0.0, 0, 0)
    return Section51Headline(
        surveyed=len(records),
        any_activation=any_act,
        whitelist_activation=len(wl_records),
        max_total_matches=len(max_wl),
        max_domain=max_record.domain if max_record else "",
        max_distinct_filters=max_distinct,
        mean_distinct_filters=mean_distinct,
        p95_total_matches=p95,
    )
