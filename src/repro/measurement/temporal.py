"""Temporal survey: how the user experience changed across revisions.

The paper measures the whitelist's impact at one instant (Rev 988) and
its content over time (Figure 3), but never connects them.  This
extension does: it rebuilds the engine against the whitelist *as of*
chosen historical revisions and reruns the site survey under each,
showing how the fraction of top sites with allowed advertising grew
from 2011's nine filters to 2015's 59%.

The whole apparatus is reused — the same crawler, the same site
population — only the whitelist snapshot changes, exactly as a user's
Adblock Plus would have behaved had they browsed on that date.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import TYPE_CHECKING, Sequence

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.measurement.easylist import build_easylist
from repro.measurement.survey import EASYLIST_NAME, WHITELIST_NAME, \
    make_profile_factory
from repro.web.crawler import Crawler, CrawlTarget

if TYPE_CHECKING:  # pragma: no cover
    from repro.history.generator import WhitelistHistory

__all__ = ["TemporalPoint", "engine_at_revision", "temporal_survey",
           "DEFAULT_SNAPSHOT_DATES"]

#: One snapshot per program year (the last survey date is the paper's).
DEFAULT_SNAPSHOT_DATES: tuple[date, ...] = (
    date(2011, 12, 30),
    date(2012, 12, 29),
    date(2013, 12, 30),
    date(2014, 12, 30),
    date(2015, 4, 28),
)


def engine_at_revision(history: "WhitelistHistory",
                       rev: int) -> AdblockEngine:
    """ABP's default configuration with the whitelist as of ``rev``."""
    lines = history.repository.checkout(rev)
    whitelist = parse_filter_list("\n".join(lines), name=WHITELIST_NAME)
    engine = AdblockEngine(record=True)
    engine.subscribe(build_easylist(name=EASYLIST_NAME))
    engine.subscribe(whitelist)
    # Each historical revision's engine probes many sites; freezing
    # compiles its indexes once so the whole sweep runs on the
    # compiled hot path.
    engine.freeze()
    return engine


@dataclass(frozen=True, slots=True)
class TemporalPoint:
    """Survey outcome under one historical whitelist snapshot."""

    when: date
    rev: int
    whitelist_filters: int
    surveyed: int
    whitelist_activation_fraction: float
    mean_allowed_requests: float


def temporal_survey(history: "WhitelistHistory",
                    *, top_n: int = 500,
                    snapshot_dates: Sequence[date] = DEFAULT_SNAPSHOT_DATES
                    ) -> list[TemporalPoint]:
    """Rerun the top-group survey under each historical snapshot."""
    ranking = history.population.ranking
    factory = make_profile_factory(history)
    targets = [
        CrawlTarget(domain=ranking.domain_at(rank), rank=rank,
                    group_index=0,
                    category=ranking.category_of(ranking.domain_at(rank)))
        for rank in range(1, top_n + 1)
    ]

    points: list[TemporalPoint] = []
    for when in snapshot_dates:
        rev = history.repository.rev_at_date(when)
        if rev is None:
            continue
        engine = engine_at_revision(history, rev)
        filter_count = sum(
            1 for line in history.repository.checkout(rev)
            if line and not line.startswith("!"))
        records = Crawler(engine,
                          profile_factory=factory).survey_records(targets)

        activating = sum(
            1 for record in records
            if any(a.list_name == WHITELIST_NAME
                   for a in record.visit.whitelist_activations))
        allowed = [record.visit.allowed_count for record in records]
        points.append(TemporalPoint(
            when=when,
            rev=rev,
            whitelist_filters=filter_count,
            surveyed=len(records),
            whitelist_activation_fraction=activating / len(records),
            mean_allowed_requests=sum(allowed) / len(allowed),
        ))
    return points
