"""The Section 5 site survey: engines, crawls, and raw results.

This is the reproduction of "we instrumented Adblock Plus to record
filter activations and used Selenium to visit each domain".  Given a
generated whitelist history, the survey:

1. builds the synthetic EasyList and extracts the tip whitelist;
2. assembles two engine configurations — the ABP default
   (EasyList + Acceptable Ads) and EasyList-only (for Figure 6's
   comparison panel);
3. materialises the four sample groups;
4. crawls every target in each configuration, wiring explicitly
   whitelisted publishers to their restricted filters via the
   history's publisher directory;
5. returns a :class:`SurveyResult` that the statistics module turns
   into Table 4 and Figures 6–8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import FilterList
from repro.measurement.easylist import build_easylist
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.history.generator import WhitelistHistory
from repro.measurement.samples import SampleGroup, build_samples
from repro.parallel.scheduler import run_stealing_survey
from repro.parallel.survey import run_sharded_survey
from repro.state.checkpoint import Checkpoint
from repro.web.crawlstate import journaled_survey
from repro.web.crawler import (
    Crawler,
    CrawlHealth,
    CrawlOutcome,
    CrawlRecord,
    CrawlTarget,
    crawl_health,
)
from repro.web.faults import FaultInjector, FaultPlan
from repro.web.resilience import RetryPolicy
from repro.web.sites import SiteProfile, profile_for_domain

__all__ = ["SurveyConfig", "SurveyResult", "run_survey",
           "WHITELIST_NAME", "EASYLIST_NAME"]

WHITELIST_NAME = "exceptionrules"
EASYLIST_NAME = "easylist"


@dataclass(slots=True)
class SurveyConfig:
    """Knobs for survey size (paper-scale by default) and resilience.

    ``fault_rate`` > 0 subjects every visit to an injected
    :class:`~repro.web.faults.FaultPlan` seeded by ``fault_seed``;
    ``max_retries`` is the number of *re*-attempts per target beyond
    the first (so ``max_retries=2`` means up to three visits).  At the
    default ``fault_rate=0.0`` the resilient pipeline is a clean
    pass-through and results match the bare crawler exactly.

    ``workers`` selects the execution model.  ``None`` (default) is the
    classic serial loop threading one rng/breaker registry through the
    crawl in target order.  Any integer >= 1 selects *shared-nothing*
    execution (:mod:`repro.parallel.survey`): each target gets a
    derived rng and fresh breaker, and targets are sharded across that
    many worker processes.  Shared-nothing results are byte-identical
    across all ``workers`` values (and match the serial loop whenever
    ``fault_rate == 0``, where the rng and breakers are never
    consulted); checkpoints resume across worker-count changes but not
    across execution models.

    ``scheduler`` picks the shared-nothing executor: ``"shards"`` (the
    PR-4 pre-dealt round-robin pool, any worker failure fatal) or
    ``"steal"`` (the supervised work-stealing scheduler of
    :mod:`repro.parallel.scheduler` — lease recovery from dead workers,
    poison-unit quarantine, streaming backpressure).  Both produce
    byte-identical results and share one checkpoint fingerprint, so a
    resume may switch schedulers freely.  ``lease_size`` and
    ``max_worker_restarts`` tune the steal scheduler only.
    ``steal_crash_injector`` is the deterministic worker-death harness
    (tests/benchmarks); like ``workers`` it never enters the
    fingerprint — a kill schedule is not a result.
    """

    top_n: int = 5_000
    stratum_size: int = 1_000
    with_whitelist: bool = True
    compare_without_whitelist: bool = True
    fault_rate: float = 0.0
    fault_seed: int = 0
    max_retries: int = 2
    workers: int | None = None
    scheduler: str = "shards"
    lease_size: int = 4
    max_worker_restarts: int = 4
    steal_crash_injector: object | None = None


@dataclass
class SurveyResult:
    """Raw survey output for all groups and both configurations.

    ``records`` holds only successful crawls (what the tables and
    figures aggregate); ``outcomes`` holds every target's
    :class:`~repro.web.crawler.CrawlOutcome` including failure
    tombstones, so the denominator of every downstream statistic is
    explicit.
    """

    groups: list[SampleGroup]
    records: dict[str, list[CrawlRecord]] = field(default_factory=dict)
    records_easylist_only: dict[str, list[CrawlRecord]] = field(
        default_factory=dict)
    outcomes: dict[str, list[CrawlOutcome]] = field(default_factory=dict)
    outcomes_easylist_only: dict[str, list[CrawlOutcome]] = field(
        default_factory=dict)
    whitelist: FilterList | None = None
    easylist: FilterList | None = None

    @property
    def top5k(self) -> list[CrawlRecord]:
        return self.records["top-5k"]

    def all_records(self) -> list[CrawlRecord]:
        return [record for group in self.groups
                for record in self.records[group.name]]

    def all_outcomes(self) -> list[CrawlOutcome]:
        """Every outcome from both engine configurations."""
        return [outcome
                for by_group in (self.outcomes,
                                 self.outcomes_easylist_only)
                for outcomes in by_group.values()
                for outcome in outcomes]

    def crawl_health(self) -> CrawlHealth:
        """Aggregate health across both configurations' crawls."""
        return crawl_health(self.all_outcomes())


def build_engines(history: "WhitelistHistory",
                  *, with_whitelist: bool = True
                  ) -> tuple[AdblockEngine, FilterList, FilterList]:
    """Build an engine (plus its two lists) in the requested config."""
    easylist = build_easylist(name=EASYLIST_NAME)
    whitelist = history.tip_filter_list()
    whitelist.name = WHITELIST_NAME
    engine = AdblockEngine(record=True)
    engine.subscribe(easylist)
    if with_whitelist:
        engine.subscribe(whitelist)
    # Freeze immediately: the survey never re-subscribes, and freezing
    # compiles the keyword indexes (packed automaton + prebuilt bucket
    # tuples) so every probe — serial or forked worker — takes the
    # compiled hot path.
    engine.freeze()
    return engine, easylist, whitelist


def make_profile_factory(history: "WhitelistHistory"):
    """Profile factory that wires whitelisted publishers to their filters.

    A surveyed domain whose FQD (or ``www.`` variant) appears in the
    history's publisher directory gets its restricted filters attached
    and the generic publisher ad server added to its network stack, so
    the filters can actually activate during the crawl.
    """
    directory = history.publisher_directory

    def factory(target: CrawlTarget) -> SiteProfile:
        profile = profile_for_domain(
            target.domain, target.rank,
            group_index=target.group_index,
            category=target.category,
        )
        if profile.is_whitelisted_publisher or profile.inert:
            return profile
        filters: list[str] = []
        for fqd in (target.domain, f"www.{target.domain}"):
            filters.extend(directory.get(fqd, ()))
        if not filters:
            return profile
        networks = list(profile.networks)
        if "generic-publisher-adserv" not in networks:
            networks.append("generic-publisher-adserv")
        return SiteProfile(
            domain=profile.domain,
            rank=profile.rank,
            category=profile.category,
            networks=networks,
            whitelist_filters=tuple(dict.fromkeys(filters)),
            first_party_ads=profile.first_party_ads,
            ad_intensity=profile.ad_intensity,
            inert=False,
            cookie_sensitive=profile.cookie_sensitive,
            adblock_detecting=profile.adblock_detecting,
        )

    return factory


def _survey_fingerprint(config: SurveyConfig, engine_config: str) -> dict:
    """The scope configuration a survey checkpoint is pinned to.

    The shared-nothing path adds an ``execution`` marker: its journals
    are *not* resumable by the serial loop (and vice versa) because the
    two models draw backoff jitter differently.  The worker *count* is
    deliberately absent — shared-nothing results are independent of it,
    so a resume may change it freely.
    """
    fingerprint = {"engine_config": engine_config,
                   "top_n": config.top_n,
                   "stratum_size": config.stratum_size,
                   "with_whitelist": config.with_whitelist,
                   "fault_rate": config.fault_rate,
                   "fault_seed": config.fault_seed,
                   "max_retries": config.max_retries}
    if config.workers is not None:
        fingerprint["execution"] = "shared-nothing"
    return fingerprint


def run_survey(history: "WhitelistHistory",
               config: SurveyConfig | None = None, *,
               checkpoint: Checkpoint | None = None) -> SurveyResult:
    """Run the full Section 5 survey.

    At paper scale (8,000 visits x 2 configurations) this takes a couple
    of minutes; tests shrink ``config``.

    With a :class:`~repro.state.checkpoint.Checkpoint`, every crawled
    target is journaled as a completed unit of work and a resumed run
    skips (and byte-identically restores) everything the crashed run
    already finished.  The checkpoint is caller-owned: the caller
    closes it, and crash-shaped exceptions propagate.
    """
    config = config or SurveyConfig()
    if config.scheduler not in ("shards", "steal"):
        raise ValueError(f"unknown scheduler {config.scheduler!r}; "
                         f"expected 'shards' or 'steal'")
    tracer = OBS.tracer
    with tracer.span("survey.run", top_n=config.top_n,
                     stratum_size=config.stratum_size,
                     fault_rate=config.fault_rate):
        with tracer.span("survey.build_samples"):
            groups = build_samples(history.population.ranking,
                                   top_n=config.top_n,
                                   stratum_size=config.stratum_size)
        factory = make_profile_factory(history)

        with tracer.span("survey.build_engines",
                         config="easylist+whitelist"):
            engine, easylist, whitelist = build_engines(
                history, with_whitelist=config.with_whitelist)
        result = SurveyResult(groups=groups, whitelist=whitelist,
                              easylist=easylist)

        def make_crawler(an_engine: AdblockEngine) -> Crawler:
            # Each configuration gets its own rng/injector chain seeded
            # identically, so both crawls see the same faults on the same
            # domains and the Figure 6 comparison stays apples-to-apples.
            rng = random.Random(config.fault_seed)
            injector = None
            if config.fault_rate > 0.0:
                injector = FaultInjector(
                    FaultPlan.uniform(config.fault_rate, rng=rng))
            return Crawler(an_engine, profile_factory=factory,
                           retry_policy=RetryPolicy(
                               max_attempts=config.max_retries + 1),
                           fault_injector=injector, rng=rng)

        if OBS.enabled:
            OBS.registry.gauge("measurement.survey.groups").set(
                len(groups))
            OBS.registry.gauge("measurement.survey.targets").set(
                sum(len(g.targets) for g in groups))

        def crawl_config(crawler_factory, engine_config: str,
                         outcomes_by_group: dict, records_by_group: dict
                         ) -> None:
            if config.workers is not None:
                # No ``workers`` attr: the merged trace is defined to be
                # byte-identical for every worker count, so execution
                # placement must not leak into span attributes.  The
                # span (and the fingerprint) are also identical across
                # schedulers — the two executors are interchangeable
                # views of the same result.
                with tracer.span("survey.crawl.parallel",
                                 config=engine_config):
                    if config.scheduler == "steal":
                        surveyed = run_stealing_survey(
                            groups, crawler_factory=crawler_factory,
                            workers=config.workers,
                            jitter_seed=config.fault_seed,
                            checkpoint=checkpoint,
                            scope=f"survey/{engine_config}",
                            scope_config=_survey_fingerprint(
                                config, engine_config),
                            lease_size=config.lease_size,
                            max_worker_restarts=config.max_worker_restarts,
                            crash_injector=config.steal_crash_injector)
                    else:
                        surveyed = run_sharded_survey(
                            groups, crawler_factory=crawler_factory,
                            workers=config.workers,
                            jitter_seed=config.fault_seed,
                            checkpoint=checkpoint,
                            scope=f"survey/{engine_config}",
                            scope_config=_survey_fingerprint(
                                config, engine_config))
                for group in groups:
                    outcomes = surveyed[group.name]
                    outcomes_by_group[group.name] = outcomes
                    records_by_group[group.name] = [
                        o.record for o in outcomes if o.record is not None]
                return
            crawler = crawler_factory()
            if checkpoint is None:
                from repro.obs import ProgressTracker
                progress = (ProgressTracker(
                    f"survey/{engine_config}",
                    sum(len(g.targets) for g in groups))
                    if OBS.registry.enabled or OBS.timeseries.enabled
                    else None)
                for group in groups:
                    with tracer.span("survey.crawl", group=group.name,
                                     config=engine_config):
                        outcomes = crawler.survey(group.targets)
                    outcomes_by_group[group.name] = outcomes
                    records_by_group[group.name] = [
                        o.record for o in outcomes if o.record is not None]
                    if progress is not None:
                        for outcome in outcomes:
                            progress.step(outcome.latency_ms)
                return
            surveyed = journaled_survey(
                crawler, groups, checkpoint=checkpoint,
                scope=f"survey/{engine_config}",
                scope_config=_survey_fingerprint(config, engine_config),
                span_factory=lambda name: tracer.span(
                    "survey.crawl", group=name, config=engine_config))
            for group in groups:
                outcomes = surveyed[group.name]
                outcomes_by_group[group.name] = outcomes
                records_by_group[group.name] = [
                    o.record for o in outcomes if o.record is not None]

        crawl_config(lambda: make_crawler(engine), "easylist+whitelist",
                     result.outcomes, result.records)

        if config.compare_without_whitelist:
            with tracer.span("survey.build_engines",
                             config="easylist-only"):
                engine_plain = build_engines(
                    history, with_whitelist=False)[0]
            crawl_config(lambda: make_crawler(engine_plain),
                         "easylist-only",
                         result.outcomes_easylist_only,
                         result.records_easylist_only)

    return result
