"""The four Section 5 sample groups.

The paper surveys *(i)* the 5,000 most popular domains and three
1,000-domain random samples from the *(ii)* 5K–50K, *(iii)* 50K–100K
and *(iv)* 100K–1M popularity strata.  This module materialises those
samples from the synthetic ranking as crawl targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.measurement.alexa import AlexaRanking
from repro.web.crawler import CrawlTarget

__all__ = ["SampleGroup", "SAMPLE_GROUP_SPECS", "build_samples"]


@dataclass(frozen=True, slots=True)
class SampleGroup:
    """One of the four survey sample groups."""

    name: str
    group_index: int
    targets: tuple[CrawlTarget, ...]

    def __len__(self) -> int:
        return len(self.targets)


#: (name, group index, low rank, high rank, sample size); the top group
#: is exhaustive rather than sampled.
SAMPLE_GROUP_SPECS: tuple[tuple[str, int, int, int, int | None], ...] = (
    ("top-5k", 0, 1, 5_000, None),
    ("5k-50k", 1, 5_001, 50_000, 1_000),
    ("50k-100k", 2, 50_001, 100_000, 1_000),
    ("100k-1m", 3, 100_001, 1_000_000, 1_000),
)


def build_samples(ranking: AlexaRanking,
                  *, top_n: int = 5_000,
                  stratum_size: int = 1_000) -> list[SampleGroup]:
    """Materialise all four sample groups.

    ``top_n`` and ``stratum_size`` shrink the samples proportionally for
    fast test runs (the group boundaries stay the paper's).
    """
    groups: list[SampleGroup] = []
    for name, index, low, high, size in SAMPLE_GROUP_SPECS:
        if size is None:
            pairs = [(rank, ranking.domain_at(rank))
                     for rank in range(1, top_n + 1)]
        else:
            scaled = min(stratum_size, size)
            pairs = ranking.sample_stratum(low, high, scaled, salt=name)
        targets = tuple(
            CrawlTarget(domain=domain, rank=rank, group_index=index,
                        category=ranking.category_of(domain))
            for rank, domain in pairs
        )
        groups.append(SampleGroup(name=name, group_index=index,
                                  targets=targets))
    return groups
