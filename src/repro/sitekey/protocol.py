"""The Adblock Plus sitekey protocol (Section 4.2.3).

A server claiming a sitekey must prove possession of the private key:

* the *signed string* is ``"<uri>\\0<host>\\0<user-agent>"`` — the URI,
  hostname, and User-Agent of the HTTP request;
* the proof travels in the ``X-Adblock-Key`` response header as
  ``<base64 DER public key>_<base64 signature>`` and, equivalently, in
  the ``data-adblockkey`` attribute of the returned page's root element;
* the extension verifies the signature and, if valid, treats the base64
  public key as the request's *sitekey*; ``$sitekey=`` filters whose key
  list contains it then activate.

This module implements both sides: :func:`make_header` for servers and
:func:`verify_presented_key` for the client/extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sitekey.der import (
    DerError,
    public_key_from_base64,
    public_key_to_base64,
)
from repro.sitekey.rsa import RsaPrivateKey, sign, verify

__all__ = [
    "SitekeyVerification",
    "signed_string",
    "make_header",
    "split_header",
    "verify_presented_key",
]

_SEPARATOR = "\x00"


def signed_string(uri: str, host: str, user_agent: str) -> bytes:
    """The exact byte string both sides sign/verify."""
    return _SEPARATOR.join((uri, host, user_agent)).encode("utf-8")


def make_header(uri: str, host: str, user_agent: str,
                key: RsaPrivateKey) -> str:
    """Produce the ``X-Adblock-Key`` header value for a request."""
    import base64

    signature = sign(signed_string(uri, host, user_agent), key)
    key_b64 = public_key_to_base64(key.public)
    sig_b64 = base64.b64encode(signature).decode("ascii")
    return f"{key_b64}_{sig_b64}"


def split_header(header: str) -> tuple[str, str]:
    """Split a header value into (key_b64, signature_b64).

    Raises ``ValueError`` when the separator is missing.  The public key
    base64 never contains ``_``, so the *first* underscore splits.
    """
    key_b64, sep, sig_b64 = header.partition("_")
    if not sep or not key_b64 or not sig_b64:
        raise ValueError("malformed X-Adblock-Key header")
    return key_b64, sig_b64


@dataclass(frozen=True, slots=True)
class SitekeyVerification:
    """Outcome of checking a presented sitekey."""

    valid: bool
    sitekey: str | None = None  # base64 public key, when valid
    reason: str = ""


def verify_presented_key(header: str | None, uri: str, host: str,
                         user_agent: str) -> SitekeyVerification:
    """Client-side check of an ``X-Adblock-Key`` header.

    Returns the verified base64 sitekey on success; a failed check says
    why (missing header, bad base64/DER, signature mismatch).  Only a
    *verified* key is ever handed to the filter engine.
    """
    import base64
    import binascii

    if header is None:
        return SitekeyVerification(valid=False, reason="no sitekey header")
    try:
        key_b64, sig_b64 = split_header(header)
    except ValueError as exc:
        return SitekeyVerification(valid=False, reason=str(exc))
    try:
        public = public_key_from_base64(key_b64)
    except DerError as exc:
        return SitekeyVerification(valid=False, reason=f"bad key: {exc}")
    try:
        signature = base64.b64decode(sig_b64.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        return SitekeyVerification(valid=False,
                                   reason=f"bad signature encoding: {exc}")
    if not verify(signed_string(uri, host, user_agent), signature, public):
        return SitekeyVerification(valid=False,
                                   reason="signature verification failed")
    return SitekeyVerification(valid=True, sitekey=key_b64)
