"""Domain-parking services and the Table 3 zone-file study.

All 4 active sitekeys (plus the removed Rook Media one) belong to domain
parking services.  The paper identifies parked domains in two steps:

1. scan the ``.com`` TLD zone file for domains whose nameservers belong
   to a parking service (e.g. ``ns1.sedoparking.com``);
2. visit each suspected domain with automated tools and record only the
   ones that actually present a valid sitekey signature.

The scan must survive the services' quirks: ParkingCrew 403s curl-like
user agents, and Uniregistry requires a cookie round-trip (first visit
sets a cookie and redirects; only the cookie-bearing second request gets
the ad page with the signature).

The real zone has ~117M entries and the paper finds 2,676,165 parked
domains; we synthesise a *scaled* zone (default 1/1000) whose per-service
counts are the paper's counts divided by ``scale_divisor``, so the scan's
output multiplies back to the paper's Table 3 exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date
from typing import Iterable

from repro.sitekey.protocol import make_header, verify_presented_key
from repro.sitekey.rsa import RsaPrivateKey, generate_keypair
from repro.web.dom import Document
from repro.web.http import (
    Handler,
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    Headers,
)

__all__ = [
    "ParkingService",
    "PARKING_SERVICES",
    "ZoneEntry",
    "synthesize_zone",
    "ParkedDomainServer",
    "ZoneScanner",
    "ScanResult",
    "DEFAULT_SCALE_DIVISOR",
]

DEFAULT_SCALE_DIVISOR = 1000


@dataclass(frozen=True, slots=True)
class ParkingService:
    """One parking service from Table 3."""

    name: str
    whitelisted: date
    com_domains: int                 # the paper's .com domain count
    nameservers: tuple[str, ...]
    key_seed: int
    removed: date | None = None
    ua_403: bool = False             # 403 for curl-ish user agents
    cookie_redirect: bool = False    # Uniregistry's cookie round-trip

    @property
    def active(self) -> bool:
        return self.removed is None

    def keypair(self, bits: int = 512) -> RsaPrivateKey:
        """The service's (deterministic, weak) sitekey keypair."""
        return generate_keypair(bits=bits, seed=self.key_seed)


PARKING_SERVICES: tuple[ParkingService, ...] = (
    ParkingService(
        name="Sedo", whitelisted=date(2011, 11, 30), com_domains=1_060_129,
        nameservers=("ns1.sedoparking.com", "ns2.sedoparking.com"),
        key_seed=0x5ED0,
    ),
    ParkingService(
        name="ParkingCrew", whitelisted=date(2013, 5, 27),
        com_domains=368_703,
        nameservers=("ns1.parkingcrew.net", "ns2.parkingcrew.net"),
        key_seed=0xBC1,
        ua_403=True,
    ),
    ParkingService(
        name="RookMedia", whitelisted=date(2013, 7, 31), com_domains=949,
        nameservers=("ns1.rookdns.com", "ns2.rookdns.com"),
        key_seed=0x400C, removed=date(2014, 9, 16),
    ),
    ParkingService(
        name="Uniregistry", whitelisted=date(2013, 9, 25),
        com_domains=1_246_359,
        nameservers=("ns1.uniregistrymarket.link",
                     "ns2.uniregistrymarket.link"),
        key_seed=0x0141, cookie_redirect=True,
    ),
    ParkingService(
        name="Digimedia", whitelisted=date(2014, 7, 2), com_domains=25,
        nameservers=("ns1.digimedia.com", "ns2.digimedia.com"),
        key_seed=0xD161,
    ),
)


@dataclass(frozen=True, slots=True)
class ZoneEntry:
    """One delegation in the synthetic ``.com`` zone."""

    domain: str
    nameservers: tuple[str, ...]


_WORDS = (
    "shop", "online", "best", "cheap", "deal", "insurance", "credit",
    "photo", "celeb", "dating", "travel", "hotel", "poker", "game",
    "music", "movie", "news", "auto", "car", "loan", "pill", "diet",
    "gold", "coin", "crypto", "host", "cloud", "app", "web", "tech",
)

#: Misspellings of popular sites are frequently parked (the paper's
#: reddit.cm example); we park .com-side typos.
_TYPO_DOMAINS = (
    "redddit.com", "gooogle.com", "facebok.com", "yotube.com",
    "wikipedai.com", "amazonn.com", "twiter.com", "linkedn.com",
)


def synthesize_zone(
    services: Iterable[ParkingService] = PARKING_SERVICES,
    *,
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    noise_domains: int = 2000,
    seed: int = 2015,
) -> list[ZoneEntry]:
    """Build the scaled synthetic zone file.

    Each service contributes ``max(1, com_domains // scale_divisor)``
    parked delegations; ``noise_domains`` non-parked delegations (random
    registrar nameservers) are interleaved, plus the typo-domain corpus
    (assigned to Sedo, mirroring the paper's reddit example).  The order
    is shuffled deterministically — zone files are not sorted by owner.
    """
    rng = random.Random(seed)
    entries: list[ZoneEntry] = []
    for service in services:
        count = max(1, service.com_domains // scale_divisor)
        prefix = service.name.lower()
        for i in range(count):
            word = rng.choice(_WORDS)
            word2 = rng.choice(_WORDS)
            domain = f"{word}{word2}{i}-{prefix[:4]}.com"
            entries.append(ZoneEntry(domain=domain,
                                     nameservers=service.nameservers))
    sedo = next(s for s in services if s.name == "Sedo")
    for typo in _TYPO_DOMAINS:
        entries.append(ZoneEntry(domain=typo, nameservers=sedo.nameservers))
    for i in range(noise_domains):
        word = rng.choice(_WORDS)
        ns = (f"ns1.registrar{i % 40}.com", f"ns2.registrar{i % 40}.com")
        entries.append(ZoneEntry(domain=f"{word}{i}-site.com",
                                 nameservers=ns))
    rng.shuffle(entries)
    return entries


class ParkedDomainServer:
    """HTTP behaviour of one parking service's domains.

    Produces a handler for any domain parked with the service; the
    handler enforces the service's countermeasures and attaches the
    sitekey proof to successful responses (both the ``X-Adblock-Key``
    header and the page's ``data-adblockkey`` attribute).
    """

    def __init__(self, service: ParkingService, *, key_bits: int = 512,
                 present_sitekey: bool = True) -> None:
        self.service = service
        self._key = service.keypair(bits=key_bits)
        self.present_sitekey = present_sitekey

    @property
    def private_key(self) -> RsaPrivateKey:
        return self._key

    def handler(self) -> Handler:
        def handle(request: HttpRequest) -> HttpResponse:
            host = request.url.host
            if self.service.ua_403 and _looks_like_tool(request.user_agent):
                return HttpResponse(status=403, body="Forbidden")
            if self.service.cookie_redirect and "pk_session" not in request.cookies:
                return HttpResponse(
                    status=302,
                    redirect_to=f"http://{host}/lander",
                    set_cookies={"pk_session": "1"},
                )
            doc = _parked_page(host, self.service.name)
            headers = Headers()
            if self.present_sitekey:
                header = make_header(
                    request.url.full_path, host, request.user_agent,
                    self._key)
                headers.set("X-Adblock-Key", header)
                doc.root.attributes["data-adblockkey"] = header
            return HttpResponse(status=200, headers=headers, body=doc)

        return handle


def _looks_like_tool(user_agent: str) -> bool:
    lowered = user_agent.lower()
    return (not lowered
            or any(tool in lowered
                   for tool in ("curl", "wget", "python", "scrapy")))


def _parked_page(host: str, service_name: str) -> Document:
    doc = Document(url=f"http://{host}/")
    listing = doc.body.new_child("div", class_="related-links")
    for i in range(6):
        link = listing.new_child("a", class_="parked-ad",
                                 href=f"http://{host}/click?{i}")
        link.ad_label = f"{service_name.lower()}-parked-link-{i}"
        link.text = f"Sponsored listing {i}"
    doc.body.new_child("div", class_="domain-for-sale").text = (
        f"{host} may be for sale")
    return doc


@dataclass(slots=True)
class ScanResult:
    """Outcome of scanning the zone for one service."""

    service: ParkingService
    suspected: int = 0
    confirmed: int = 0
    rejected: list[str] = field(default_factory=list)

    def scaled_confirmed(self, scale_divisor: int) -> int:
        return self.confirmed * scale_divisor


class ZoneScanner:
    """The two-step Table 3 measurement.

    ``resolver_overlay`` lets tests inject broken or hostile servers for
    specific domains.  The scanner uses a browser user-agent (learned the
    hard way, per the paper) and a cookie-carrying client.
    """

    def __init__(
        self,
        services: Iterable[ParkingService] = PARKING_SERVICES,
        *,
        key_bits: int = 512,
        resolver_overlay: dict[str, Handler] | None = None,
    ) -> None:
        self.services = tuple(services)
        self._servers = {
            service.name: ParkedDomainServer(service, key_bits=key_bits)
            for service in self.services
        }
        self._ns_to_service = {
            ns: service
            for service in self.services
            for ns in service.nameservers
        }
        self._overlay = dict(resolver_overlay or {})
        self._zone_ns: dict[str, tuple[str, ...]] = {}

    def service_for_entry(self, entry: ZoneEntry) -> ParkingService | None:
        """Step 1: nameserver attribution, or None for non-parked."""
        for ns in entry.nameservers:
            service = self._ns_to_service.get(ns)
            if service is not None:
                return service
        return None

    def _resolve(self, host: str) -> Handler | None:
        if host in self._overlay:
            return self._overlay[host]
        nameservers = self._zone_ns.get(host)
        if nameservers is None:
            return None
        for ns in nameservers:
            service = self._ns_to_service.get(ns)
            if service is not None:
                return self._servers[service.name].handler()
        return None

    def scan(self, zone: Iterable[ZoneEntry]) -> dict[str, ScanResult]:
        """Run the full two-step scan over ``zone``.

        Returns per-service :class:`ScanResult`s keyed by service name.
        A suspected domain is *confirmed* only when the visit (with
        redirects and cookies) yields a response whose sitekey signature
        verifies — exactly the paper's acceptance criterion.
        """
        results = {s.name: ScanResult(service=s) for s in self.services}
        zone_list = list(zone)
        self._zone_ns = {e.domain: e.nameservers for e in zone_list}
        client = HttpClient(self._resolve)

        for entry in zone_list:
            service = self.service_for_entry(entry)
            if service is None:
                continue
            result = results[service.name]
            result.suspected += 1
            try:
                response = client.get(f"http://{entry.domain}/")
            except HttpError:
                result.rejected.append(entry.domain)
                continue
            if not response.ok:
                result.rejected.append(entry.domain)
                continue
            verification = verify_presented_key(
                response.adblock_key_header,
                "/lander" if service.cookie_redirect else "/",
                entry.domain,
                client.user_agent,
            )
            if verification.valid:
                result.confirmed += 1
            else:
                result.rejected.append(entry.domain)
        return results

    def scan_with_user_agent(self, zone: Iterable[ZoneEntry],
                             user_agent: str) -> dict[str, ScanResult]:
        """Variant for the countermeasure study (e.g. curl's UA)."""
        original = HttpClient(self._resolve)
        original.user_agent = user_agent
        results = {s.name: ScanResult(service=s) for s in self.services}
        zone_list = list(zone)
        self._zone_ns = {e.domain: e.nameservers for e in zone_list}
        for entry in zone_list:
            service = self.service_for_entry(entry)
            if service is None:
                continue
            result = results[service.name]
            result.suspected += 1
            try:
                response = original.get(f"http://{entry.domain}/")
            except HttpError:
                result.rejected.append(entry.domain)
                continue
            if not response.ok:
                result.rejected.append(entry.domain)
                continue
            verification = verify_presented_key(
                response.adblock_key_header,
                "/lander" if service.cookie_redirect else "/",
                entry.domain,
                original.user_agent,
            )
            if verification.valid:
                result.confirmed += 1
            else:
                result.rejected.append(entry.domain)
        return results
