"""Sitekey subsystem: RSA, DER, the ABP sitekey protocol, parking, factoring.

Implements Section 4.2.3 end-to-end: sitekey generation and encoding,
server-side signing, client-side verification, the parked-domain scan of
Table 3, and the weak-key factoring attack of Figure 5.
"""

from repro.sitekey.der import (
    DerError,
    decode_public_key,
    encode_public_key,
    public_key_from_base64,
    public_key_to_base64,
)
from repro.sitekey.factoring import (
    BypassDemo,
    FactoredKey,
    FactoringError,
    factor_semiprime,
    factor_sitekey,
    pollard_p_minus_1,
    pollard_rho,
    recover_private_key,
    run_bypass_demo,
)
from repro.sitekey.parking import (
    DEFAULT_SCALE_DIVISOR,
    PARKING_SERVICES,
    ParkedDomainServer,
    ParkingService,
    ScanResult,
    ZoneEntry,
    ZoneScanner,
    synthesize_zone,
)
from repro.sitekey.protocol import (
    SitekeyVerification,
    make_header,
    signed_string,
    split_header,
    verify_presented_key,
)
from repro.sitekey.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    generate_prime,
    is_probable_prime,
    sign,
    verify,
)

__all__ = [
    "BypassDemo",
    "DEFAULT_SCALE_DIVISOR",
    "DerError",
    "FactoredKey",
    "FactoringError",
    "PARKING_SERVICES",
    "ParkedDomainServer",
    "ParkingService",
    "RsaPrivateKey",
    "RsaPublicKey",
    "ScanResult",
    "SitekeyVerification",
    "ZoneEntry",
    "ZoneScanner",
    "decode_public_key",
    "encode_public_key",
    "factor_semiprime",
    "factor_sitekey",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "make_header",
    "pollard_p_minus_1",
    "pollard_rho",
    "public_key_from_base64",
    "public_key_to_base64",
    "recover_private_key",
    "run_bypass_demo",
    "sign",
    "signed_string",
    "split_header",
    "verify",
    "verify_presented_key",
    "synthesize_zone",
]
