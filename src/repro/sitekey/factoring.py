"""Factoring weak sitekeys and the Figure 5 bypass proof-of-concept.

The paper factored deployed 512-bit sitekeys with CADO-NFS on an 8-node
cluster in about a week per key, then showed that the recovered private
key lets *any* publisher sign its own pages and bypass Adblock Plus
entirely.  A general number field sieve is out of scope for a pure-
Python reproduction, so we demonstrate the identical property on
genuinely weak keys (≤ ~80-bit moduli) using Pollard's rho and Pollard's
p−1 — real factoring, real key recovery, and then the real bypass flow:

1. factor the public modulus of a sitekey found in the whitelist;
2. reconstruct the private exponent;
3. stand up an adversarial site that serves intrusive ads *plus* a
   sitekey signature made with the recovered key;
4. show the instrumented engine blocks the site without the signature
   and allows everything with it (Figure 5 a/b).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass

from repro.filters.engine import AdblockEngine, Verdict
from repro.filters.options import ContentType
from repro.sitekey.der import public_key_to_base64
from repro.sitekey.protocol import make_header, verify_presented_key
from repro.sitekey.rsa import RsaPrivateKey, RsaPublicKey, is_probable_prime

__all__ = [
    "FactoringError",
    "pollard_rho",
    "pollard_p_minus_1",
    "factor_semiprime",
    "recover_private_key",
    "FactoredKey",
    "factor_sitekey",
    "BypassDemo",
    "run_bypass_demo",
]


class FactoringError(RuntimeError):
    """Raised when the modulus resists the implemented methods in time."""


def pollard_rho(n: int, *, seed: int = 1, max_iterations: int = 10_000_000
                ) -> int | None:
    """Pollard's rho with Brent's cycle detection; returns a factor or None."""
    if n % 2 == 0:
        return 2
    rng = random.Random(seed)
    for attempt in range(20):
        y = rng.randrange(1, n)
        c = rng.randrange(1, n)
        m = 128
        g = r = q = 1
        x = ys = y
        iterations = 0
        while g == 1 and iterations < max_iterations:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += m
            r *= 2
            iterations += r
        if g == n:
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if 1 < g < n:
            return g
    return None


def pollard_p_minus_1(n: int, bound: int = 100_000) -> int | None:
    """Pollard's p−1: finds p when p−1 is ``bound``-smooth."""
    a = 2
    for j in range(2, bound):
        a = pow(a, j, n)
        if j % 512 == 0:
            g = math.gcd(a - 1, n)
            if 1 < g < n:
                return g
            if g == n:
                return None
    g = math.gcd(a - 1, n)
    if 1 < g < n:
        return g
    return None


def factor_semiprime(n: int, *, time_budget: float = 30.0) -> tuple[int, int]:
    """Factor a semiprime ``n = p*q``; raises :class:`FactoringError`.

    Tries trial division, p−1, then rho with escalating effort until the
    time budget runs out.  Practical up to ~90-bit moduli on a laptop —
    the moral equivalent of the paper's 512-bit-on-a-cluster result.
    """
    if n <= 3:
        raise FactoringError("modulus too small to be a semiprime")
    if is_probable_prime(n):
        raise FactoringError(f"{n} is prime, not a semiprime")
    for p in range(2, 10_000):
        if n % p == 0:
            return p, n // p
    deadline = time.monotonic() + time_budget
    factor = pollard_p_minus_1(n)
    seed = 1
    while factor is None:
        if time.monotonic() > deadline:
            raise FactoringError(
                f"could not factor {n.bit_length()}-bit modulus within "
                f"{time_budget:.0f}s")
        factor = pollard_rho(n, seed=seed, max_iterations=2_000_000)
        seed += 1
    p, q = factor, n // factor
    if p * q != n:
        raise FactoringError("inconsistent factorisation")
    return (p, q) if p <= q else (q, p)


def recover_private_key(public: RsaPublicKey, p: int) -> RsaPrivateKey:
    """Rebuild the full private key from the public key and one factor."""
    if public.n % p != 0:
        raise FactoringError("p does not divide the modulus")
    q = public.n // p
    phi = (p - 1) * (q - 1)
    d = pow(public.e, -1, phi)
    return RsaPrivateKey(n=public.n, e=public.e, d=d, p=p, q=q)


@dataclass(frozen=True, slots=True)
class FactoredKey:
    """A successful sitekey factorisation."""

    public: RsaPublicKey
    private: RsaPrivateKey
    p: int
    q: int
    elapsed_seconds: float

    @property
    def bits(self) -> int:
        return self.public.bits


def factor_sitekey(public: RsaPublicKey, *,
                   time_budget: float = 30.0) -> FactoredKey:
    """Factor a sitekey's public modulus and recover the private key."""
    start = time.monotonic()
    p, q = factor_semiprime(public.n, time_budget=time_budget)
    private = recover_private_key(public, p)
    return FactoredKey(public=public, private=private, p=p, q=q,
                       elapsed_seconds=time.monotonic() - start)


# ---------------------------------------------------------------------------
# Figure 5: the adversarial-publisher bypass
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class BypassDemo:
    """Outcome of the Figure 5 proof-of-concept.

    ``blocked_without_key`` / ``blocked_with_key`` count blocked requests
    on the adversarial test page in each configuration; the paper's
    result is many -> zero.
    """

    test_requests: int
    blocked_without_key: int
    blocked_with_key: int
    hidden_without_key: int
    hidden_with_key: int
    sitekey_b64: str

    @property
    def fully_bypassed(self) -> bool:
        return (self.blocked_with_key == 0 and self.hidden_with_key == 0
                and self.blocked_without_key > 0)


#: The intrusive ad stack of the adversarial test site: all blocked by
#: EasyList, none whitelisted.
_TEST_REQUESTS: tuple[tuple[str, ContentType], ...] = (
    ("http://serve.popads.net/cas.js", ContentType.SCRIPT),
    ("http://cdn.bannerfarm.net/ad-frame/banner.gif", ContentType.IMAGE),
    ("http://ads.rubiconproject.com/header/1234.js", ContentType.SCRIPT),
    ("http://d3.zedo.com/jsc/d3/fo.js", ContentType.SCRIPT),
)


def run_bypass_demo(engine: AdblockEngine, factored: FactoredKey,
                    *, host: str = "adversarial-test-site.com") -> BypassDemo:
    """Replay Figure 5 against ``engine``.

    The engine must be subscribed to EasyList and a whitelist containing
    a ``$sitekey=`` filter for ``factored.public`` (that is the key the
    adversary stole).  Returns the before/after block counts.
    """
    from repro.web.dom import Document

    page_url = f"http://{host}/"
    user_agent = "Mozilla/5.0 (Figure5 PoC)"

    def load(sitekey: str | None) -> tuple[int, int]:
        privileges = engine.document_privileges(page_url, host,
                                                sitekey=sitekey)
        blocked = 0
        for url, content_type in _TEST_REQUESTS:
            from repro.web.url import parse_url

            decision = engine.check_request(
                url, content_type, host, parse_url(url).host,
                privileges=privileges, sitekey=sitekey)
            if decision.verdict is Verdict.BLOCK:
                blocked += 1
        doc = Document(url=page_url)
        banner = doc.body.new_child("img", class_="banner-ad")
        banner.ad_label = "intrusive-banner"
        hidden = len(engine.hidden_elements(
            doc.all_elements(), host, privileges=privileges))
        return blocked, hidden

    # (a) without sitekey: the page is blocked like any other.
    blocked_without, hidden_without = load(None)

    # (b) with sitekey: the adversary signs the request with the
    # *recovered* private key; the client verifies it exactly as it
    # would a legitimate signature.
    header = make_header("/", host, user_agent, factored.private)
    verification = verify_presented_key(header, "/", host, user_agent)
    if not verification.valid:  # pragma: no cover - would be a crypto bug
        raise FactoringError("recovered key failed to produce a valid "
                             "signature")
    blocked_with, hidden_with = load(verification.sitekey)

    return BypassDemo(
        test_requests=len(_TEST_REQUESTS),
        blocked_without_key=blocked_without,
        blocked_with_key=blocked_with,
        hidden_without_key=hidden_without,
        hidden_with_key=hidden_with,
        sitekey_b64=public_key_to_base64(factored.public),
    )
