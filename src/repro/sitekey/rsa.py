"""From-scratch RSA for the sitekey subsystem.

Adblock Plus sitekeys are DER-encoded RSA public keys; servers sign a
string derived from each HTTP request and the extension verifies the
signature (Section 4.2.3).  The paper's security result is that all
deployed sitekeys were 512-bit — weak enough to factor.

We implement RSA ourselves (keygen with Miller–Rabin, deterministic
PKCS#1-v1.5-style signing over SHA-256) rather than using a crypto
library, because the factoring study needs keys across the whole
strength range, including deliberately weak ones no library will mint.
Keys here must never be used for anything but this simulation.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_keypair",
    "sign",
    "verify",
    "is_probable_prime",
    "generate_prime",
    "KeyError_",
]

#: Public exponent used by every generated key (the RFC default).
PUBLIC_EXPONENT = 65537

_SHA256_PREFIX_LEN = 19  # DigestInfo overhead we emulate with a tag byte


class KeyError_(ValueError):
    """Raised for structurally invalid keys or unusable parameters."""


@dataclass(frozen=True, slots=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8


@dataclass(frozen=True, slots=True)
class RsaPrivateKey:
    """An RSA private key; retains ``p``/``q`` so tests can check factoring."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def bits(self) -> int:
        return self.n.bit_length()


# -- primality ---------------------------------------------------------------

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def is_probable_prime(n: int, rounds: int = 40,
                      rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test (probabilistic for large ``n``)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(n)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a ``bits``-bit probable prime with the top two bits set.

    Setting the top two bits guarantees the product of two such primes
    has exactly ``2 * bits`` bits — so a "512-bit key" really is 512 bits,
    like the deployed sitekeys.
    """
    if bits < 8:
        raise KeyError_("prime size below 8 bits is not supported")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_keypair(bits: int = 512,
                     seed: int | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair with an ``n`` of exactly ``bits`` bits.

    ``seed`` makes generation deterministic (all study keys are seeded).
    Raises :class:`KeyError_` for sizes below 16 bits.
    """
    if bits < 16:
        raise KeyError_("modulus below 16 bits cannot host a signature")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        e = PUBLIC_EXPONENT
        if phi % 2 == 0 and _gcd(e, phi) != 1:
            continue
        if e >= phi:
            # Tiny demo keys: fall back to the smallest workable odd e.
            e = 3
            while _gcd(e, phi) != 1:
                e += 2
                if e >= phi:
                    break
            if e >= phi:
                continue
        d = pow(e, -1, phi)
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


# -- signing -----------------------------------------------------------------

def _encode_digest(message: bytes, key_bytes: int) -> int:
    """PKCS#1-v1.5-style encoding: 0x00 0x01 FF.. 0x00 | digest.

    For tiny demo moduli (< digest+padding) the digest is truncated to
    fit — acceptable because those keys exist only to be factored.
    """
    digest = hashlib.sha256(message).digest()
    room = key_bytes - 3
    if room < 8:
        digest = digest[: max(1, room)]
        padded = b"\x00\x01\x00" + digest
    else:
        digest = digest[: min(len(digest), room - 1)]
        padding = b"\xff" * (key_bytes - 3 - len(digest))
        padded = b"\x00\x01" + padding + b"\x00" + digest
    return int.from_bytes(padded[:key_bytes], "big")


def sign(message: bytes, key: RsaPrivateKey) -> bytes:
    """Sign ``message``; returns a signature of the key's byte length."""
    key_bytes = (key.n.bit_length() + 7) // 8
    m = _encode_digest(message, key_bytes) % key.n
    s = pow(m, key.d, key.n)
    return s.to_bytes(key_bytes, "big")


def verify(message: bytes, signature: bytes, key: RsaPublicKey) -> bool:
    """Verify a signature produced by :func:`sign`.  Never raises."""
    key_bytes = (key.n.bit_length() + 7) // 8
    if len(signature) != key_bytes:
        return False
    s = int.from_bytes(signature, "big")
    if s >= key.n:
        return False
    recovered = pow(s, key.e, key.n)
    expected = _encode_digest(message, key_bytes) % key.n
    return recovered == expected
