"""Minimal DER for sitekey public keys.

Sitekey filters embed "a DER-encoded, base-64 representation of an RSA
public key" (Section 4.2.3) — concretely an X.509
``SubjectPublicKeyInfo`` wrapping a PKCS#1 ``RSAPublicKey``.  We encode
and decode exactly that structure:

    SubjectPublicKeyInfo ::= SEQUENCE {
        algorithm   SEQUENCE { OID rsaEncryption, NULL },
        subjectPublicKey BIT STRING {
            RSAPublicKey ::= SEQUENCE { modulus INTEGER,
                                        publicExponent INTEGER } } }

Keys encoded here round-trip bit-exactly, and the base64 form begins
with the ``MFww...``-style prefix quoted in the paper's example filter.
"""

from __future__ import annotations

import base64

from repro.sitekey.rsa import RsaPublicKey

__all__ = [
    "DerError",
    "encode_public_key",
    "decode_public_key",
    "public_key_to_base64",
    "public_key_from_base64",
]

#: OID 1.2.840.113549.1.1.1 (rsaEncryption), pre-encoded.
_RSA_OID = bytes.fromhex("06092a864886f70d010101")
_NULL = b"\x05\x00"

_TAG_INTEGER = 0x02
_TAG_BIT_STRING = 0x03
_TAG_SEQUENCE = 0x30


class DerError(ValueError):
    """Raised for malformed DER input."""


def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def _encode_tlv(tag: int, value: bytes) -> bytes:
    return bytes([tag]) + _encode_length(len(value)) + value


def _encode_integer(value: int) -> bytes:
    if value < 0:
        raise DerError("negative integers are not used in public keys")
    body = value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")
    if body[0] & 0x80:
        body = b"\x00" + body  # keep it positive
    return _encode_tlv(_TAG_INTEGER, body)


def encode_public_key(key: RsaPublicKey) -> bytes:
    """Encode ``key`` as a DER SubjectPublicKeyInfo."""
    rsa_key = _encode_tlv(
        _TAG_SEQUENCE, _encode_integer(key.n) + _encode_integer(key.e))
    bit_string = _encode_tlv(_TAG_BIT_STRING, b"\x00" + rsa_key)
    algorithm = _encode_tlv(_TAG_SEQUENCE, _RSA_OID + _NULL)
    return _encode_tlv(_TAG_SEQUENCE, algorithm + bit_string)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def read_tlv(self, expected_tag: int) -> bytes:
        if self.pos >= len(self.data):
            raise DerError("truncated DER: expected a tag")
        tag = self.data[self.pos]
        if tag != expected_tag:
            raise DerError(f"expected tag 0x{expected_tag:02x}, "
                           f"got 0x{tag:02x}")
        self.pos += 1
        length = self._read_length()
        end = self.pos + length
        if end > len(self.data):
            raise DerError("truncated DER: value runs past end")
        value = self.data[self.pos:end]
        self.pos = end
        return value

    def _read_length(self) -> int:
        if self.pos >= len(self.data):
            raise DerError("truncated DER: expected a length")
        first = self.data[self.pos]
        self.pos += 1
        if first < 0x80:
            return first
        count = first & 0x7F
        if count == 0 or count > 8:
            raise DerError("unsupported DER length encoding")
        if self.pos + count > len(self.data):
            raise DerError("truncated DER length")
        value = int.from_bytes(self.data[self.pos:self.pos + count], "big")
        self.pos += count
        return value


def decode_public_key(data: bytes) -> RsaPublicKey:
    """Decode a DER SubjectPublicKeyInfo into an :class:`RsaPublicKey`.

    Raises :class:`DerError` on any structural problem (wrong OID,
    truncation, trailing garbage inside sequences).
    """
    outer = _Reader(data)
    spki = _Reader(outer.read_tlv(_TAG_SEQUENCE))
    algorithm = spki.read_tlv(_TAG_SEQUENCE)
    if not algorithm.startswith(_RSA_OID):
        raise DerError("not an rsaEncryption key")
    bit_string = spki.read_tlv(_TAG_BIT_STRING)
    if not bit_string or bit_string[0] != 0:
        raise DerError("bit string with unused bits is not a valid key")
    inner = _Reader(bit_string[1:])
    rsa_seq = _Reader(inner.read_tlv(_TAG_SEQUENCE))
    n = int.from_bytes(rsa_seq.read_tlv(_TAG_INTEGER), "big")
    e = int.from_bytes(rsa_seq.read_tlv(_TAG_INTEGER), "big")
    if rsa_seq.pos != len(rsa_seq.data):
        raise DerError("trailing bytes inside RSAPublicKey")
    if n <= 0 or e <= 0:
        raise DerError("non-positive key parameters")
    return RsaPublicKey(n=n, e=e)


def public_key_to_base64(key: RsaPublicKey) -> str:
    """The base64 text that goes into ``$sitekey=`` filters."""
    return base64.b64encode(encode_public_key(key)).decode("ascii")


def public_key_from_base64(text: str) -> RsaPublicKey:
    """Inverse of :func:`public_key_to_base64`; raises DerError on junk."""
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise DerError(f"bad base64 sitekey: {exc}") from exc
    return decode_public_key(raw)
