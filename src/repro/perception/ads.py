"""The perception study's stimuli: 8 sites, 15 whitelisted advertisements.

Section 6 shows respondents eight popular sites, each with one or more
advertisements that Adblock Plus allows, chosen for "popularity and
diversity of ad placement": a search engine (Google), an image host
(Imgur), a retailer (Walmart), a Web service (IsItUp), a game forum
(Utopia), a humor site (Cracked), a viral curator (ViralNova), and a
user-content site (Reddit).

Each ad carries *latent stimulus* parameters per statement — how
attention-grabbing, how well distinguished from content, and how
obscuring it really is.  The respondent model turns those latents into
Likert responses; the latents are calibrated so the paper's headline
agreement levels reproduce (Google #2: 73% find it attention-grabbing;
Utopia #2: 45%; grid/content ads: ~90% say *not* distinguished;
sidebar/top-bar/first-result ads: ~1/3 say obscuring).

Figure 9(d) groups the ads into three classes: search-engine-marketing
(SEM), banner, and content advertisements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AdClass", "AdPlacement", "SURVEY_ADS", "SURVEY_SITES",
           "ads_in_class", "ad_by_label"]


class AdClass(enum.Enum):
    """Figure 9(d)'s three advertisement classes."""

    SEM = "search-engine-marketing"
    BANNER = "banner"
    CONTENT = "content"


@dataclass(frozen=True, slots=True)
class AdPlacement:
    """One surveyed advertisement.

    The three ``latent_*`` values are the population-level latent means
    feeding the Likert response model: positive = respondents lean
    "agree" with the corresponding statement (S1 eye-catching, S2
    clearly distinguished, S3 obscures content).
    """

    label: str               # e.g. "Google #2"
    site: str
    ad_class: AdClass
    placement: str           # sidebar / top-bar / grid / ...
    latent_attention: float
    latent_distinguished: float
    latent_obscuring: float


SURVEY_SITES: tuple[str, ...] = (
    "google.com", "imgur.com", "walmart.com", "isitup.org",
    "utopia-game.com", "cracked.com", "viralnova.com", "reddit.com",
)


SURVEY_ADS: tuple[AdPlacement, ...] = (
    # Google: the first search result ad and the image-based product ads.
    AdPlacement("Google #1", "google.com", AdClass.SEM,
                "first-search-result",
                latent_attention=0.05, latent_distinguished=0.75,
                latent_obscuring=-0.15),
    AdPlacement("Google #2", "google.com", AdClass.SEM,
                "image-product-ads",
                latent_attention=1.15, latent_distinguished=0.55,
                latent_obscuring=-0.45),
    AdPlacement("Walmart #1", "walmart.com", AdClass.SEM,
                "sponsored-products",
                latent_attention=-0.50, latent_distinguished=0.50,
                latent_obscuring=-0.35),
    # Banner advertisements.
    AdPlacement("Imgur #1", "imgur.com", AdClass.BANNER, "sidebar",
                latent_attention=0.10, latent_distinguished=0.95,
                latent_obscuring=-1.05),
    AdPlacement("Walmart #2", "walmart.com", AdClass.BANNER, "top-banner",
                latent_attention=0.15, latent_distinguished=0.90,
                latent_obscuring=-1.00),
    AdPlacement("IsItUp #1", "isitup.org", AdClass.BANNER, "sponsor-image",
                latent_attention=-0.35, latent_distinguished=1.05,
                latent_obscuring=-1.35),
    AdPlacement("Utopia #1", "utopia-game.com", AdClass.BANNER,
                "footer-banner",
                latent_attention=-0.10, latent_distinguished=0.95,
                latent_obscuring=-1.15),
    AdPlacement("Utopia #2", "utopia-game.com", AdClass.BANNER,
                "nav-ad-bar",
                latent_attention=0.45, latent_distinguished=0.75,
                latent_obscuring=-0.55),
    AdPlacement("Cracked #1", "cracked.com", AdClass.BANNER, "top-bar",
                latent_attention=0.45, latent_distinguished=0.80,
                latent_obscuring=-0.05),
    AdPlacement("Reddit #1", "reddit.com", AdClass.BANNER, "sidebar",
                latent_attention=0.20, latent_distinguished=0.90,
                latent_obscuring=-0.10),
    # Content advertisements: interleaved with, and barely separable
    # from, real content.
    AdPlacement("Reddit #2", "reddit.com", AdClass.CONTENT,
                "sponsored-link",
                latent_attention=-0.55, latent_distinguished=-0.40,
                latent_obscuring=-0.10),
    AdPlacement("Imgur #2", "imgur.com", AdClass.CONTENT, "promoted-post",
                latent_attention=-0.40, latent_distinguished=-0.70,
                latent_obscuring=0.00),
    AdPlacement("Cracked #2", "cracked.com", AdClass.CONTENT,
                "native-article",
                latent_attention=-0.35, latent_distinguished=-0.85,
                latent_obscuring=0.10),
    AdPlacement("ViralNova #1", "viralnova.com", AdClass.CONTENT,
                "content-grid",
                latent_attention=-0.15, latent_distinguished=-1.75,
                latent_obscuring=0.25),
    AdPlacement("ViralNova #2", "viralnova.com", AdClass.CONTENT,
                "content-grid",
                latent_attention=-0.10, latent_distinguished=-1.70,
                latent_obscuring=0.30),
)


def ads_in_class(ad_class: AdClass) -> list[AdPlacement]:
    return [ad for ad in SURVEY_ADS if ad.ad_class is ad_class]


def ad_by_label(label: str) -> AdPlacement:
    for ad in SURVEY_ADS:
        if ad.label == label:
            return ad
    raise KeyError(label)
