"""Likert-scale machinery: coding, distributions, aggregation.

The paper codes the five response levels to integers in [-2, 2]
("strongly disagree was given -2") and reports per-ad response
distributions (Figure 9 a–c) plus per-class mean and variance
(Figure 9 d).
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Likert", "LikertDistribution", "THRESHOLDS",
           "latent_to_likert"]


class Likert(enum.IntEnum):
    """The five response levels, integer-coded per the paper."""

    STRONGLY_DISAGREE = -2
    DISAGREE = -1
    NEUTRAL = 0
    AGREE = 1
    STRONGLY_AGREE = 2

    @property
    def label(self) -> str:
        return self.name.replace("_", " ").title()


#: Latent-variable cut points: a latent value below -1.5 codes as
#: strongly disagree, [-1.5, -0.5) as disagree, and so on.
THRESHOLDS = (-1.5, -0.5, 0.5, 1.5)


def latent_to_likert(latent: float) -> Likert:
    """Map a continuous latent opinion to a Likert level."""
    if latent < THRESHOLDS[0]:
        return Likert.STRONGLY_DISAGREE
    if latent < THRESHOLDS[1]:
        return Likert.DISAGREE
    if latent < THRESHOLDS[2]:
        return Likert.NEUTRAL
    if latent < THRESHOLDS[3]:
        return Likert.AGREE
    return Likert.STRONGLY_AGREE


@dataclass(frozen=True)
class LikertDistribution:
    """An aggregated set of Likert responses."""

    counts: tuple[int, int, int, int, int]  # SD, D, N, A, SA

    @classmethod
    def from_responses(cls, responses: Iterable[Likert]
                       ) -> "LikertDistribution":
        counter = Counter(responses)
        return cls(counts=tuple(
            counter.get(level, 0)
            for level in (Likert.STRONGLY_DISAGREE, Likert.DISAGREE,
                          Likert.NEUTRAL, Likert.AGREE,
                          Likert.STRONGLY_AGREE)
        ))

    @property
    def n(self) -> int:
        return sum(self.counts)

    def fraction(self, level: Likert) -> float:
        index = int(level) + 2
        return self.counts[index] / self.n if self.n else 0.0

    @property
    def agree_fraction(self) -> float:
        """Agree or strongly agree — the paper's headline percentages."""
        if not self.n:
            return 0.0
        return (self.counts[3] + self.counts[4]) / self.n

    @property
    def disagree_fraction(self) -> float:
        if not self.n:
            return 0.0
        return (self.counts[0] + self.counts[1]) / self.n

    @property
    def mean(self) -> float:
        if not self.n:
            return 0.0
        total = sum(count * (index - 2)
                    for index, count in enumerate(self.counts))
        return total / self.n

    @property
    def variance(self) -> float:
        """Population variance of the integer-coded responses."""
        if not self.n:
            return 0.0
        mean = self.mean
        total = sum(count * ((index - 2) - mean) ** 2
                    for index, count in enumerate(self.counts))
        return total / self.n

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merged(self, other: "LikertDistribution") -> "LikertDistribution":
        return LikertDistribution(counts=tuple(
            a + b for a, b in zip(self.counts, other.counts)))
