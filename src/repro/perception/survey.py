"""Running the Section 6 perception survey and aggregating Figure 9.

Response model: for respondent *r*, advertisement *a*, and statement
*s*, the latent opinion is

    latent = stimulus(a, s) + trait_shift(r, s) + acquiescence(r) + noise

mapped to the five Likert levels by fixed cut points.  Trait shifts
implement the psychology the paper observes:

* high-``annoyance`` respondents agree more with S1 (eye-catching) and
  S3 (obscuring) and *disagree* more with S2 (clearly distinguished);
* high-``discernment`` respondents distinguish ads better (positive S2
  shift) — this is why even the grid ads get some "distinguished"
  agreement;
* ``acquiescence`` shifts every statement slightly toward agreement.

Aggregation produces Figure 9(a–c) (per-ad distributions per statement)
and Figure 9(d) (mean and variance per advertisement class).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.perception.ads import AdClass, AdPlacement, SURVEY_ADS
from repro.perception.likert import (
    Likert,
    LikertDistribution,
    latent_to_likert,
)
from repro.perception.respondents import (
    Demographics,
    RESPONDENT_COUNT,
    Respondent,
    build_population,
    demographics,
)

__all__ = [
    "STATEMENTS",
    "Statement",
    "Response",
    "PerceptionResult",
    "run_perception_survey",
    "QUESTIONS_PER_RESPONDENT",
]


@dataclass(frozen=True, slots=True)
class Statement:
    """One of the three Acceptable-Ads-criteria statements."""

    key: str
    text: str


STATEMENTS: tuple[Statement, ...] = (
    Statement("attention",
              "The advertisements are eye catching and grab my attention."),
    Statement("distinguished",
              "The advertisements are clearly distinguished from page "
              "content."),
    Statement("obscuring",
              "The advertisements on this page obscure page content or "
              "obstruct reading flow."),
)

#: 15 ads x 3 statements, plus per-ad familiarity probes, site
#: familiarity, and demographics — the paper's 72 questions.
QUESTIONS_PER_RESPONDENT = (
    len(SURVEY_ADS) * len(STATEMENTS)   # 45 statement ratings
    + len(SURVEY_ADS)                   # 15 "had you seen this ad format"
    + 8                                 # site familiarity
    + 4                                 # demographics
)


@dataclass(frozen=True, slots=True)
class Response:
    """One respondent's rating of one statement about one ad."""

    respondent_id: int
    ad_label: str
    statement: str
    rating: Likert


@dataclass
class PerceptionResult:
    """All responses plus the Figure 9 aggregations."""

    population: list[Respondent]
    responses: list[Response] = field(default_factory=list)

    @property
    def demographics(self) -> Demographics:
        return demographics(self.population)

    def distribution(self, ad_label: str,
                     statement: str) -> LikertDistribution:
        """Figure 9(a–c): one ad's distribution for one statement."""
        return LikertDistribution.from_responses(
            r.rating for r in self.responses
            if r.ad_label == ad_label and r.statement == statement)

    def class_distribution(self, ad_class: AdClass,
                           statement: str) -> LikertDistribution:
        labels = {ad.label for ad in SURVEY_ADS if ad.ad_class is ad_class}
        return LikertDistribution.from_responses(
            r.rating for r in self.responses
            if r.ad_label in labels and r.statement == statement)

    def figure9d(self) -> dict[AdClass, dict[str, tuple[float, float]]]:
        """Figure 9(d): (mean, variance) per class per statement."""
        table: dict[AdClass, dict[str, tuple[float, float]]] = {}
        for ad_class in AdClass:
            row: dict[str, tuple[float, float]] = {}
            for statement in STATEMENTS:
                dist = self.class_distribution(ad_class, statement.key)
                row[statement.key] = (dist.mean, dist.variance)
            table[ad_class] = row
        return table


def _stimulus(ad: AdPlacement, statement_key: str) -> float:
    if statement_key == "attention":
        return ad.latent_attention
    if statement_key == "distinguished":
        return ad.latent_distinguished
    return ad.latent_obscuring


def _trait_shift(respondent: Respondent, statement_key: str) -> float:
    if statement_key == "attention":
        return 0.45 * respondent.annoyance
    if statement_key == "distinguished":
        return (0.55 * respondent.discernment
                - 0.35 * respondent.annoyance)
    return 0.55 * respondent.annoyance


def run_perception_survey(
    *,
    respondents: int = RESPONDENT_COUNT,
    seed: int = 2015,
    population: list[Respondent] | None = None,
) -> PerceptionResult:
    """Run the full survey and return all responses.

    Deterministic in ``seed``; the population can be supplied for
    counterfactual experiments (e.g. an all-ad-blocker population).
    """
    population = population or build_population(count=respondents,
                                                seed=seed ^ 0x5EED)
    rng = random.Random(seed)
    result = PerceptionResult(population=population)

    for respondent in population:
        for ad in SURVEY_ADS:
            for statement in STATEMENTS:
                latent = (
                    _stimulus(ad, statement.key)
                    + _trait_shift(respondent, statement.key)
                    + respondent.acquiescence
                    + rng.gauss(0.0, respondent.noise_scale)
                )
                result.responses.append(Response(
                    respondent_id=respondent.respondent_id,
                    ad_label=ad.label,
                    statement=statement.key,
                    rating=latent_to_likert(latent),
                ))
    return result
