"""The Mechanical Turk respondent population model.

The paper recruited 305 workers (>= 5,000 approved HITs, >= 98%
approval), paid $1 each for a 72-question, ~10-minute survey.  The
demographics it reports: 50% had used ad-blocking software; browser
shares 61% Chrome, 28% Firefox, 9% Safari, 1% Opera, 1% IE.

Respondents are heterogeneous — the paper's core perception finding is
*dissension*.  Each synthetic respondent carries latent traits:

* ``annoyance`` — general sensitivity to advertising (shifts all three
  statements in the "ads are bad" direction);
* ``discernment`` — ability to spot ads (shifts S2 responses);
* ``acquiescence`` — agree-bias common in survey populations;
* ``noise`` — per-question idiosyncrasy scale.

The trait variances are the dissension knob: they are set high enough
that every ad sees the full response range, matching Figure 9's spread.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["Respondent", "Demographics", "build_population",
           "RESPONDENT_COUNT", "BROWSER_SHARES"]

RESPONDENT_COUNT = 305

BROWSER_SHARES: tuple[tuple[str, float], ...] = (
    ("chrome", 0.61),
    ("firefox", 0.28),
    ("safari", 0.09),
    ("opera", 0.01),
    ("internet explorer", 0.01),
)

_ADBLOCK_SHARE = 0.50


@dataclass(frozen=True, slots=True)
class Respondent:
    """One survey participant."""

    respondent_id: int
    browser: str
    uses_adblock: bool
    annoyance: float
    discernment: float
    acquiescence: float
    noise_scale: float


@dataclass(frozen=True, slots=True)
class Demographics:
    """Aggregate demographics of a population."""

    total: int
    adblock_fraction: float
    browser_fractions: dict[str, float]


def build_population(count: int = RESPONDENT_COUNT,
                     seed: int = 305) -> list[Respondent]:
    """Generate a deterministic respondent population.

    Browser assignment uses exact quotas (the paper reports shares, not
    a sample), ad-block usage alternates to hit 50% exactly, and traits
    are Gaussian draws from the dissension-calibrated distributions.
    """
    rng = random.Random(seed)
    browsers: list[str] = []
    for name, share in BROWSER_SHARES:
        browsers.extend([name] * round(share * count))
    while len(browsers) < count:
        browsers.append(BROWSER_SHARES[0][0])
    browsers = browsers[:count]
    rng.shuffle(browsers)

    population: list[Respondent] = []
    for i in range(count):
        population.append(Respondent(
            respondent_id=i,
            browser=browsers[i],
            uses_adblock=(i % 2 == 0) if count % 2 == 0 or i < count - 1
            else rng.random() < _ADBLOCK_SHARE,
            annoyance=rng.gauss(0.0, 0.55),
            discernment=rng.gauss(0.0, 0.45),
            acquiescence=rng.gauss(0.05, 0.30),
            noise_scale=abs(rng.gauss(0.85, 0.25)) + 0.25,
        ))
    return population


def demographics(population: list[Respondent]) -> Demographics:
    """Summarise a population the way Section 6 reports it."""
    total = len(population)
    browser_counts: dict[str, int] = {}
    for respondent in population:
        browser_counts[respondent.browser] = (
            browser_counts.get(respondent.browser, 0) + 1)
    return Demographics(
        total=total,
        adblock_fraction=sum(
            1 for r in population if r.uses_adblock) / total,
        browser_fractions={name: n / total
                           for name, n in browser_counts.items()},
    )
