"""The Section 6 user-perception study."""

from repro.perception.ads import (
    AdClass,
    AdPlacement,
    SURVEY_ADS,
    SURVEY_SITES,
    ad_by_label,
    ads_in_class,
)
from repro.perception.likert import (
    Likert,
    LikertDistribution,
    THRESHOLDS,
    latent_to_likert,
)
from repro.perception.respondents import (
    BROWSER_SHARES,
    Demographics,
    RESPONDENT_COUNT,
    Respondent,
    build_population,
    demographics,
)
from repro.perception.survey import (
    PerceptionResult,
    QUESTIONS_PER_RESPONDENT,
    Response,
    STATEMENTS,
    Statement,
    run_perception_survey,
)

__all__ = [
    "AdClass",
    "AdPlacement",
    "BROWSER_SHARES",
    "Demographics",
    "Likert",
    "LikertDistribution",
    "PerceptionResult",
    "QUESTIONS_PER_RESPONDENT",
    "RESPONDENT_COUNT",
    "Respondent",
    "Response",
    "STATEMENTS",
    "SURVEY_ADS",
    "SURVEY_SITES",
    "Statement",
    "THRESHOLDS",
    "ad_by_label",
    "ads_in_class",
    "build_population",
    "demographics",
    "latent_to_likert",
    "run_perception_survey",
]
