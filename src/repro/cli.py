"""Command-line interface: every paper analysis from one entry point.

Usage::

    python -m repro table1                # yearly whitelist activity
    python -m repro growth                # Figure 3 sparkline
    python -m repro scope                 # Figure 4 scope classes
    python -m repro table2                # Alexa partitions
    python -m repro survey --top 800      # Section 5 crawl (scaled)
    python -m repro parking               # Table 3 zone scan (scaled)
    python -m repro exploit               # Figure 5 bypass PoC
    python -m repro perception            # Figure 9 summary
    python -m repro afilters              # Section 7 A-groups
    python -m repro transparency          # Section 8 report
    python -m repro blockable reddit.com  # Blockable Items panel
    python -m repro obs summary run.jsonl # re-render a run's summary
    python -m repro obs diff A B          # perf gate: compare two runs
    python -m repro obs watch ts.jsonl    # live telemetry view
    python -m repro obs flight dump.jsonl # post-mortem event sequence
    python -m repro serve --port 8791     # filter-match serving daemon

Heavy stages honour ``--fast`` (small demo RSA keys) and the scale
flags, so everything is runnable on a laptop in seconds to minutes.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.core.study import AcceptableAdsStudy, StudyConfig
from repro.measurement.survey import SurveyConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=2015)
    common.add_argument("--fast", action="store_true",
                        help="use small demo RSA keys (faster)")
    common.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="collect pipeline metrics (repro.obs) and "
                             "write them as JSON lines to PATH; also "
                             "prints the observability summary table")
    common.add_argument("--trace", metavar="PATH", default=None,
                        help="record nested timing spans and write them "
                             "as JSON lines to PATH; also prints the "
                             "observability summary table")
    common.add_argument("--timeseries-out", metavar="PATH", default=None,
                        help="stream periodic metric snapshots (one "
                             "sample per tick) to size-rotated JSONL "
                             "segments PATH.000, PATH.001, ...; watch "
                             "live with 'repro obs watch PATH'")
    common.add_argument("--timeseries-interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="seconds between time-series samples "
                             "(simulated seconds for survey/history "
                             "runs, wall seconds for serve; default 1)")
    common.add_argument("--flight-out", metavar="PATH", default=None,
                        help="keep a bounded ring of lifecycle events "
                             "and dump it to PATH on crash, SIGUSR2, "
                             "or exit ('repro obs flight PATH' renders "
                             "it)")
    common.add_argument("--flight-capacity", type=int, default=None,
                        metavar="N",
                        help="flight-recorder ring capacity "
                             "(default 2048)")
    common.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="journal completed units of work (history "
                             "revisions, crawled targets) to PATH so a "
                             "crashed run can be resumed")
    common.add_argument("--resume", action="store_true",
                        help="resume from an existing --checkpoint "
                             "journal instead of starting over (safe "
                             "when the journal does not exist yet)")

    parser = argparse.ArgumentParser(
        prog="repro", parents=[common],
        description="Reproduction of 'Measuring the Impact and "
                    "Perception of Acceptable Advertisements' (IMC'15)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str):
        return sub.add_parser(name, help=help_text, parents=[common])

    add("table1", "Table 1: yearly whitelist activity")
    add("growth", "Figure 3: whitelist growth curve")
    add("scope", "Figure 4: whitelist scope classes")
    add("table2", "Table 2: Alexa partitions")

    survey = add("survey", "Section 5 site survey (scaled)")
    survey.add_argument("--top", type=int, default=800,
                        help="size of the top group (paper: 5000)")
    survey.add_argument("--stratum", type=int, default=150,
                        help="per-stratum sample size (paper: 1000)")
    survey.add_argument("--fault-rate", type=float, default=0.0,
                        help="fraction of domains given an injected "
                             "fault (0 disables injection)")
    survey.add_argument("--fault-seed", type=int, default=0,
                        help="seed for fault plan + backoff jitter")
    survey.add_argument("--max-retries", type=int, default=2,
                        help="retries per target beyond the first "
                             "attempt")
    survey.add_argument("--workers", type=int, default=None,
                        metavar="N",
                        help="crawl shared-nothing across N worker "
                             "processes (results identical for every "
                             "N; default: classic serial loop)")
    survey.add_argument("--scheduler", choices=("shards", "steal"),
                        default="shards",
                        help="parallel execution strategy: 'shards' "
                             "pre-deals units round-robin, 'steal' "
                             "grants bounded leases on demand with "
                             "worker supervision and crash recovery "
                             "(results identical either way)")
    survey.add_argument("--lease-size", type=int, default=4,
                        metavar="K",
                        help="units per lease for --scheduler steal "
                             "(default 4; smaller = finer stealing, "
                             "more dispatch overhead)")
    survey.add_argument("--max-worker-restarts", type=int, default=4,
                        metavar="N",
                        help="replacement workers the steal scheduler "
                             "may fork across the whole run before "
                             "giving up (default 4)")

    parking = add("parking", "Table 3 zone scan")
    parking.add_argument("--divisor", type=int, default=5_000,
                         help="zone scale divisor")

    exploit = add("exploit", "Figure 5 sitekey bypass")
    exploit.add_argument("--bits", type=int, default=64,
                         help="weak-key size to factor")

    add("perception", "Figure 9 perception summary")
    add("afilters", "Section 7 A-filter mining")
    add("hygiene", "Section 8 hygiene audit")
    add("transparency", "Section 8 transparency report")

    temporal = add("temporal",
                   "survey under historical whitelist snapshots")
    temporal.add_argument("--top", type=int, default=300)

    blockable = add("blockable", "Blockable Items panel for one domain")
    blockable.add_argument("domain")

    serve = add("serve", "resilient filter-match serving daemon")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8791,
                       help="bind port; 0 picks a free one "
                            "(default 8791)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent requests executed at once")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="requests allowed to wait for a slot; "
                            "beyond this the daemon sheds (429)")
    serve.add_argument("--deadline-ms", type=float, default=1_000.0,
                       help="default per-request budget when the "
                            "client sends no X-Repro-Deadline-Ms")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="how long SIGTERM waits for in-flight "
                            "requests before exiting anyway")
    serve.add_argument("--snapshot-dir", metavar="DIR", default=None,
                       help="epoch-keyed snapshot store: boot from "
                            "the latest persisted epoch and persist "
                            "every swapped reload there")
    serve.add_argument("--lists", nargs="+", metavar="PATH",
                       default=None,
                       help="filter-list files to serve (list name = "
                            "file name stem); default: the study's "
                            "EasyList + Acceptable Ads whitelist")
    serve.add_argument("--allow-test-delay", action="store_true",
                       help="honour the X-Repro-Delay-Ms request "
                            "header (drain/chaos tests and the load "
                            "benchmark use it to stretch requests)")

    compile_index = add("compile-index",
                        "ahead-of-time compile the filter-index "
                        "artifact into a snapshot store")
    compile_index.add_argument("--snapshot-dir", metavar="DIR",
                               required=True,
                               help="snapshot store to write the "
                                    "sources and compiled-index "
                                    "artifact into")
    compile_index.add_argument("--lists", nargs="+", metavar="PATH",
                               default=None,
                               help="filter-list files to compile "
                                    "(list name = file name stem); "
                                    "default: the latest stored epoch, "
                                    "else the study's EasyList + "
                                    "Acceptable Ads whitelist")
    compile_index.add_argument("--verify", action="store_true",
                               help="load the artifact back and check "
                                    "candidate parity against the "
                                    "freshly built snapshot")

    obs = sub.add_parser(
        "obs", help="analyse exported observability artifacts")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    summary = obs_sub.add_parser(
        "summary", help="re-render the observability summary from "
                        "exported JSONL artifacts")
    summary.add_argument("paths", nargs="+", metavar="PATH",
                         help="one run's artifacts (--metrics-out "
                              "and/or --trace files)")

    slow = obs_sub.add_parser(
        "slow", help="the top-N most expensive spans in a trace")
    slow.add_argument("paths", nargs="+", metavar="PATH")
    slow.add_argument("--top", type=int, default=10,
                      help="how many spans to show")
    slow.add_argument("--by", choices=("cumulative", "self"),
                      default="cumulative",
                      help="rank by subtree time or own time")

    tree = obs_sub.add_parser(
        "tree", help="render the reconstructed span tree, with self "
                     "vs. cumulative time and the critical path")
    tree.add_argument("paths", nargs="+", metavar="PATH")

    diff = obs_sub.add_parser(
        "diff", help="compare two runs' metrics under a relative "
                     "tolerance; exits 1 on violations (the CI gate)")
    diff.add_argument("baseline", metavar="BASELINE",
                      help="JSONL export or committed BENCH_*.json")
    diff.add_argument("candidate", metavar="CANDIDATE")
    diff.add_argument("--tolerance", type=float, default=0.25,
                      help="max |relative change| before failing "
                           "(default 0.25)")
    diff.add_argument("--metric", action="append", default=None,
                      metavar="GLOB", dest="metric",
                      help="restrict the gate to metrics matching this "
                           "fnmatch pattern (repeatable)")
    diff.add_argument("--json", action="store_true",
                      help="emit the full report as one JSON document "
                           "(machine-readable; same exit codes)")

    watch = obs_sub.add_parser(
        "watch", help="live view of a --timeseries-out export: latest "
                      "sample, progress/ETA, worker table")
    watch.add_argument("path", metavar="PATH",
                       help="the --timeseries-out base path")
    watch.add_argument("--once", action="store_true",
                       help="render one frame and exit (CI smoke mode)")
    watch.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh period (default 2)")
    watch.add_argument("--metric", action="append", default=None,
                       metavar="GLOB", dest="metric",
                       help="only show metrics matching this fnmatch "
                            "pattern (repeatable)")

    timeline = obs_sub.add_parser(
        "timeline", help="sparkline selected metrics across every tick "
                         "of a --timeseries-out export")
    timeline.add_argument("path", metavar="PATH")
    timeline.add_argument("--metric", action="append", default=None,
                          metavar="GLOB", dest="metric",
                          help="metrics to plot (fnmatch, repeatable; "
                               "default: run.progress.* gauges)")
    timeline.add_argument("--width", type=int, default=60,
                          help="sparkline width in characters")

    flight = obs_sub.add_parser(
        "flight", help="render a flight-recorder dump: the event "
                       "sequence that led to a crash or drain")
    flight.add_argument("path", metavar="PATH",
                        help="the --flight-out dump file")
    flight.add_argument("--kind", action="append", default=None,
                        metavar="GLOB", dest="kind",
                        help="only show events whose kind matches this "
                             "fnmatch pattern (repeatable)")
    return parser


def _study(args) -> AcceptableAdsStudy:
    return AcceptableAdsStudy(StudyConfig(
        seed=args.seed,
        key_bits=128 if args.fast else 512,
        survey=SurveyConfig(
            top_n=getattr(args, "top", 800),
            stratum_size=getattr(args, "stratum", 150),
            fault_rate=getattr(args, "fault_rate", 0.0),
            fault_seed=getattr(args, "fault_seed", 0),
            max_retries=getattr(args, "max_retries", 2),
            workers=getattr(args, "workers", None),
            scheduler=getattr(args, "scheduler", "shards"),
            lease_size=getattr(args, "lease_size", 4),
            max_worker_restarts=getattr(
                args, "max_worker_restarts", 4)),
        zone_scale_divisor=getattr(args, "divisor", 5_000),
        checkpoint=getattr(args, "_checkpoint", None),
    ))


def _cmd_table1(args, out) -> int:
    from repro.reporting.tables import render_table

    study = _study(args)
    rows = study.table1()
    out.write(render_table(
        ("year", "revisions", "filters+", "filters-", "domains+",
         "domains-"),
        [(r.year, r.revisions, r.filters_added, r.filters_removed,
          r.domains_added, r.domains_removed) for r in rows],
        title="Table 1 — yearly whitelist activity") + "\n")
    cadence = study.cadence()
    out.write(f"one update every {cadence.days_per_update:.2f} days, "
              f"{cadence.changes_per_update:.1f} changes each\n")
    return 0


def _cmd_growth(args, out) -> int:
    from repro.reporting.series import find_jumps, sparkline

    study = _study(args)
    points = study.figure3()
    counts = [p.filters for p in points]
    out.write("Figure 3 — whitelist growth\n")
    out.write("  " + sparkline(counts, width=70) + "\n")
    out.write(f"  {counts[0]} filters (Rev 0) -> {counts[-1]:,} "
              f"(Rev {points[-1].rev})\n")
    for rev, delta in find_jumps(counts, top=2):
        out.write(f"  jump: Rev {rev} +{delta} "
                  f"({points[rev].when.isoformat()})\n")
    return 0


def _cmd_scope(args, out) -> int:
    study = _study(args)
    scope = study.scope
    out.write("Figure 4 — whitelist scope at Rev 988\n")
    out.write(f"  restricted:   {scope.restricted:,} "
              f"({scope.restricted_fraction:.1%})\n")
    out.write(f"  unrestricted: {scope.unrestricted}\n")
    out.write(f"  sitekey:      {scope.sitekey_filters} filters, "
              f"{len(scope.sitekeys)} keys\n")
    out.write(f"  FQ domains:   {len(scope.fq_domains):,}; e2LDs: "
              f"{len(scope.effective_second_level_domains):,}\n")
    return 0


def _cmd_table2(args, out) -> int:
    from repro.measurement.stats import table2_partitions
    from repro.reporting.tables import render_table

    study = _study(args)
    rows = table2_partitions(study.whitelist,
                             study.history.population.ranking,
                             scope=study.scope)
    out.write(render_table(
        ("partition", "whitelisted e2LDs", "%"),
        [("All" if r.partition is None else f"Top {r.partition:,}",
          r.count,
          "" if r.fraction is None else f"{r.fraction:.2%}")
         for r in rows],
        title="Table 2 — whitelisted domains by popularity") + "\n")
    return 0


def _cmd_survey(args, out) -> int:
    from repro.measurement.stats import (section51_headline,
                                         table4_top_filters)
    from repro.reporting.tables import render_crawl_health, render_table

    if (getattr(args, "scheduler", "shards") == "steal"
            and getattr(args, "workers", None) is None):
        out.write("error: --scheduler steal requires --workers N\n")
        return 2
    study = _study(args)
    result = study.site_survey
    head = section51_headline(result.top5k)
    n = head.surveyed
    out.write(f"surveyed {n:,} top-group domains: "
              f"{head.any_activation / n:.1%} any activation, "
              f"{head.whitelist_activation / n:.1%} whitelist "
              "(paper: 79.1% / 58.7%)\n")
    out.write(render_table(
        ("rank", "domains", "%", "filter"),
        [(r.rank, r.domains, f"{r.fraction_of_group:.1%}",
          r.filter_text[:54])
         for r in table4_top_filters(result.top5k, top=10)],
        title="Table 4 (top 10)") + "\n")
    out.write(render_crawl_health(result.crawl_health()) + "\n")
    return 0


def _cmd_parking(args, out) -> int:
    from repro.reporting.tables import render_table

    study = _study(args)
    results = study.parking_scan
    divisor = study.config.zone_scale_divisor
    rows = [(name, r.confirmed, r.scaled_confirmed(divisor))
            for name, r in results.items()]
    total = sum(r[2] for r in rows)
    out.write(render_table(
        ("service", "confirmed (scaled)", "extrapolated"),
        rows, title=f"Table 3 — zone divisor {divisor}") + "\n")
    out.write(f"total extrapolated: {total:,} (paper: 2,676,165)\n")
    return 0


def _cmd_exploit(args, out) -> int:
    from repro.filters.engine import AdblockEngine
    from repro.filters.filterlist import parse_filter_list
    from repro.measurement.easylist import build_easylist
    from repro.sitekey.der import public_key_to_base64
    from repro.sitekey.factoring import factor_sitekey, run_bypass_demo
    from repro.sitekey.rsa import generate_keypair

    victim = generate_keypair(args.bits, seed=args.seed)
    engine = AdblockEngine()
    engine.subscribe(build_easylist())
    engine.subscribe(parse_filter_list(
        f"@@$sitekey={public_key_to_base64(victim.public)},document",
        name="exceptionrules"))
    factored = factor_sitekey(victim.public, time_budget=300.0)
    demo = run_bypass_demo(engine, factored)
    out.write(f"factored {args.bits}-bit sitekey in "
              f"{factored.elapsed_seconds:.3f}s\n")
    out.write(f"without key: {demo.blocked_without_key}/"
              f"{demo.test_requests} blocked; with forged key: "
              f"{demo.blocked_with_key} blocked\n")
    out.write(f"full bypass: {demo.fully_bypassed}\n")
    return 0 if demo.fully_bypassed else 1


def _cmd_perception(args, out) -> int:
    from repro.perception.ads import AdClass
    from repro.perception.survey import run_perception_survey
    from repro.reporting.tables import render_table

    result = run_perception_survey(seed=args.seed)
    table = result.figure9d()
    out.write(render_table(
        ("class", "attention", "distinguished", "obscuring"),
        [(c.value,) + tuple(f"{table[c][s][0]:+.3f}"
                            for s in ("attention", "distinguished",
                                      "obscuring"))
         for c in AdClass],
        title="Figure 9(d) — class means") + "\n")
    from repro.core.policy import policy_disagreement

    out.write(f"respondents disagreeing with the global whitelist: "
              f"{policy_disagreement(result):.0%}\n")
    return 0


def _cmd_afilters(args, out) -> int:
    study = _study(args)
    report = study.a_filters
    out.write(f"A-filter groups: {report.total_added} added, "
              f"{len(report.removed)} removed, "
              f"{len(report.active)} active\n")
    for group in report.readded:
        out.write(f"  A{group.number} re-added as A{group.readded_as}\n")
    return 0


def _cmd_hygiene(args, out) -> int:
    study = _study(args)
    hygiene = study.hygiene
    out.write(f"duplicates: {hygiene.duplicate_filter_count}; "
              f"malformed: {hygiene.malformed_count}; "
              f"truncated: {hygiene.truncated_count}\n")
    return 0


def _cmd_transparency(args, out) -> int:
    out.write(_study(args).transparency_report() + "\n")
    return 0


def _cmd_temporal(args, out) -> int:
    from repro.measurement.temporal import temporal_survey
    from repro.reporting.tables import render_table

    study = _study(args)
    points = temporal_survey(study.history, top_n=args.top)
    out.write(render_table(
        ("snapshot", "rev", "filters", "sites w/ whitelist ads"),
        [(p.when.isoformat(), p.rev, p.whitelist_filters,
          f"{p.whitelist_activation_fraction:.1%}") for p in points],
        title="Survey under historical whitelists") + "\n")
    return 0


def _cmd_blockable(args, out) -> int:
    from repro.measurement.survey import build_engines, \
        make_profile_factory
    from repro.web.browser import InstrumentedBrowser
    from repro.web.crawler import CrawlTarget
    from repro.web.devtools import render_blockable_items

    study = _study(args)
    ranking = study.history.population.ranking
    rank = ranking.rank_of(args.domain) or 999_999
    engine, _, _ = build_engines(study.history)
    factory = make_profile_factory(study.history)
    browser = InstrumentedBrowser(engine)
    visit = browser.visit(factory(CrawlTarget(domain=args.domain,
                                              rank=rank)))
    out.write(render_blockable_items(visit) + "\n")
    return 0


def _serve_sources(args, out):
    """Resolve the daemon's boot filter lists, or ``None`` + error.

    Precedence: explicit ``--lists`` files, then the newest epoch in
    ``--snapshot-dir`` (a restart resumes exactly the epoch it last
    served), then the study's own EasyList + Acceptable Ads whitelist.
    """
    import os

    if args.lists:
        sources = []
        for path in args.lists:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                out.write(f"error: {exc}\n")
                return None
            name = os.path.splitext(os.path.basename(path))[0]
            sources.append((name, text))
        return sources
    if args.snapshot_dir:
        from repro.state.snapshots import SnapshotStore
        stored = SnapshotStore(args.snapshot_dir).load_latest()
        if stored is not None:
            epoch, sources = stored
            out.write(f"booting from stored snapshot epoch {epoch}\n")
            return sources
    from repro.measurement.survey import build_engines

    _, easylist, whitelist = build_engines(_study(args).history)
    return [(fl.name, "\n".join(entry.text for entry in fl.entries))
            for fl in (easylist, whitelist)]


def _cmd_serve(args, out) -> int:
    from repro.obs import OBS, observe
    from repro.serve import (ReloadError, Reloader, ServeConfig,
                             ServeDaemon, SnapshotHolder)
    from repro.state.snapshots import SnapshotStore

    sources = _serve_sources(args, out)
    if sources is None:
        return 2
    store = (SnapshotStore(args.snapshot_dir)
             if args.snapshot_dir else None)

    def run() -> int:
        try:
            # Store-aware boot: a persisted compiled-index artifact for
            # these exact lists skips automaton construction entirely.
            holder = SnapshotHolder.from_sources(sources, store)
        except ReloadError as exc:
            out.write(f"error: {exc}\n")
            return 2
        if store is not None:
            from repro.serve.reload import persist_snapshot_artifact
            persist_snapshot_artifact(store, holder.current(), sources)
        daemon = ServeDaemon(
            holder,
            ServeConfig(host=args.host, port=args.port,
                        max_inflight=args.max_inflight,
                        max_queue=args.max_queue,
                        default_deadline_ms=args.deadline_ms,
                        drain_timeout_s=args.drain_timeout,
                        allow_test_delay=args.allow_test_delay,
                        telemetry_interval_s=args.timeseries_interval),
            reloader=Reloader(holder, store=store))
        daemon.install_signal_handlers()
        host, port = daemon.start()
        snapshot = holder.current()
        out.write(f"serving epoch {snapshot.epoch} "
                  f"({snapshot.filter_count:,} filters) on "
                  f"http://{host}:{port}\n")
        if hasattr(out, "flush"):
            out.flush()
        daemon.wait_stopped()
        out.write("drained and stopped\n")
        return 0

    if OBS.enabled:
        # Already under main()'s --metrics-out/--trace wrapper; the
        # export happens after the daemon drains and run() returns.
        return run()
    with observe(run_id=_derive_run_id(args)):
        return run()


def _cmd_compile_index(args, out) -> int:
    """Pay the index-compilation cost now; every later boot loads it."""
    from repro.filters.compiled import parse_artifact
    from repro.filters.filterlist import parse_filter_list
    from repro.serve.reload import (ReloadError, build_snapshot_from_sources,
                                    persist_snapshot_artifact)
    from repro.state.snapshots import SnapshotStore, content_fingerprint

    sources = _serve_sources(args, out)
    if sources is None:
        return 2
    try:
        # Deliberately store-less: this command's whole point is a
        # fresh compile, so a stale blob can never be re-blessed.
        snapshot = build_snapshot_from_sources(sources)
    except ReloadError as exc:
        out.write(f"error: {exc}\n")
        return 2
    store = SnapshotStore(args.snapshot_dir)
    persist_snapshot_artifact(store, snapshot, sources)
    fingerprint = content_fingerprint(sources)
    out.write(f"compiled epoch {snapshot.epoch} "
              f"(fingerprint {fingerprint}, "
              f"{snapshot.filter_count:,} filters) -> {store.directory}\n")
    for name, stats in snapshot.compiled_stats().items():
        out.write(f"  {name:<11} {stats['filters']:>6} filters  "
                  f"{stats['keywords']:>6} keywords  "
                  f"{stats['fallback']:>5} fallback  "
                  f"{stats['automaton_states']:>6} automaton states\n")
    if args.verify:
        stored = store.load_blob(fingerprint)
        if stored is None:
            out.write("verify: FAILED (artifact not found after save)\n")
            return 1
        rebuilt = parse_artifact(stored[1]).build_snapshot(
            [parse_filter_list(text, name=name) for name, text in sources])
        mismatches = _compile_index_mismatches(snapshot, rebuilt)
        if mismatches:
            out.write(f"verify: FAILED ({mismatches} mismatches)\n")
            return 1
        out.write("verify: ok (round-trip candidate parity)\n")
    return 0


def _compile_index_mismatches(fresh, rebuilt) -> int:
    """Structural + probe parity between a snapshot and its round-trip.

    Compares by filter *text* because the rebuilt snapshot holds
    freshly parsed filter objects: identical keywords, identical
    bucket-by-bucket filter sequences, and identical candidate
    sequences for one probe URL per keyword.
    """
    mismatches = 0
    for name in ("blocking", "exceptions"):
        left = getattr(fresh, name)
        right = getattr(rebuilt, name)
        if left.keywords != right.keywords:
            mismatches += 1
        if [f.text for f in left] != [f.text for f in right]:
            mismatches += 1
        for keyword in left.keywords:
            url = f"http://probe.example/{keyword}?x=1"
            if ([f.text for f in left.candidates(url)]
                    != [f.text for f in right.candidates(url)]):
                mismatches += 1
    return mismatches


def _obs_load(paths, out):
    """Load artifacts, or write an error and return ``None``."""
    from repro.obs.analyze import load_artifact
    from repro.state.atomic import ArtifactError

    artifacts = []
    for path in paths:
        try:
            artifacts.append(load_artifact(path))
        except (OSError, ArtifactError) as exc:
            out.write(f"error: {exc}\n")
            return None
    return artifacts


def _obs_records(artifacts) -> list[dict]:
    """One run's records, re-assembled from its artifact files."""
    records: list[dict] = []
    run_id = next((a.run_id for a in artifacts if a.run_id), None)
    if run_id is not None:
        records.append({"type": "run", "run_id": run_id})
    for artifact in artifacts:
        records.extend(artifact.metrics)
    for artifact in artifacts:
        records.extend(artifact.spans)
    return records


def _obs_spans(artifacts) -> list[dict]:
    return [record for artifact in artifacts for record in artifact.spans]


def _obs_diff_json(report, out) -> int:
    """The machine-readable diff the CI perf-gate consumes.

    ``relative`` can be infinite (zero baseline moving); JSON has no
    Infinity, so non-finite values are serialised as strings (``"inf"``)
    and the document stays loadable by any strict parser.
    """
    import json
    import math

    def jsonable(value):
        if value is None or math.isfinite(value):
            return value
        return str(value)           # "inf" / "-inf" / "nan"

    document = {
        "tolerance": report.tolerance,
        "ok": report.ok,
        "metrics": len(report.deltas),
        "violations": len(report.violations),
        "deltas": [{
            "name": delta.name,
            "baseline": delta.baseline,
            "candidate": delta.candidate,
            "relative": jsonable(delta.relative),
            "violation": delta.violation,
        } for delta in report.deltas],
    }
    out.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return 0 if report.ok else 1


def _metric_selector(patterns):
    from fnmatch import fnmatchcase

    def selected(name: str) -> bool:
        if not patterns:
            return True
        return any(fnmatchcase(name, pattern) for pattern in patterns)
    return selected


def _cmd_obs_watch(args, out) -> int:
    """Render a --timeseries-out export, looping until interrupted."""
    import time as time_module

    from repro.obs.analyze import load_timeseries
    from repro.reporting.tables import render_table
    from repro.state.atomic import ArtifactError

    selected = _metric_selector(args.metric)
    try:
        while True:
            try:
                series = load_timeseries(args.path)
            except (OSError, ArtifactError) as exc:
                out.write(f"error: {exc}\n")
                return 2
            latest = series.samples[-1] if series.samples else None
            state = "sealed" if series.complete else "live"
            run = f" run {series.run_id}" if series.run_id else ""
            out.write(f"== {args.path}{run} — "
                      f"{len(series.samples)} samples ({state})\n")
            if latest is not None:
                rows = [(name, value) for name, value
                        in sorted(latest["metrics"].items())
                        if selected(name)]
                out.write(render_table(
                    ("metric", "value"), rows,
                    title=f"tick {latest['tick']} "
                          f"@ t={latest['t_s']}s") + "\n")
            if series.diagnostics:
                diag = series.diagnostics[-1]
                out.write(render_table(
                    ("diagnostic", "value"),
                    sorted(diag["metrics"].items()),
                    title=f"execution (wall t={diag['t_s']}s)") + "\n")
            if args.once:
                return 0
            if hasattr(out, "flush"):
                out.flush()
            time_module.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_obs_timeline(args, out) -> int:
    """Sparkline selected metrics across a time-series export's ticks."""
    from repro.obs.analyze import load_timeseries
    from repro.reporting.series import sparkline
    from repro.state.atomic import ArtifactError

    try:
        series = load_timeseries(args.path)
    except (OSError, ArtifactError) as exc:
        out.write(f"error: {exc}\n")
        return 2
    if not series.samples:
        out.write("(no samples)\n")
        return 0
    selected = _metric_selector(args.metric or ["run.progress.*"])
    names = sorted({name for sample in series.samples
                    for name in sample.get("metrics", {})
                    if selected(name)})
    if not names:
        out.write("(no matching metrics)\n")
        return 0
    ticks = len(series.samples)
    out.write(f"{args.path}: {ticks} ticks, "
              f"t={series.samples[-1]['t_s']}s\n")
    for name in names:
        values, last = [], 0.0
        for sample in series.samples:
            last = sample["metrics"].get(name, last)
            values.append(last)
        out.write(f"  {name}\n    "
                  f"{sparkline(values, width=args.width)}  "
                  f"last={values[-1]}\n")
    return 0


def _cmd_obs_flight(args, out) -> int:
    """Render one flight dump's event sequence."""
    from repro.obs.analyze import load_flight
    from repro.reporting.tables import render_table
    from repro.state.atomic import ArtifactError

    try:
        dump = load_flight(args.path)
    except (OSError, ArtifactError) as exc:
        out.write(f"error: {exc}\n")
        return 2
    selected = _metric_selector(args.kind)
    run = f" run {dump.run_id}" if dump.run_id else ""
    out.write(f"flight dump {args.path}{run}: reason={dump.reason}, "
              f"{len(dump.events)} events "
              f"(capacity {dump.capacity}, dropped {dump.dropped})\n")
    rows = []
    for event in dump.events:
        if not selected(event.get("kind", "")):
            continue
        attrs = ",".join(f"{key}={value}" for key, value
                         in sorted(event.get("attrs", {}).items()))
        rows.append((event.get("seq"), f"{event.get('t_s', 0.0):.3f}",
                     event.get("kind", ""), attrs,
                     event.get("span_id", "")))
    out.write(render_table(
        ("seq", "t_s", "kind", "attrs", "span"), rows,
        title="event sequence (oldest first)") + "\n")
    return 0


def _cmd_obs(args, out) -> int:
    """Dispatch the ``repro obs`` analysis subcommands.

    Every subcommand works from exported artifacts alone — no live
    registry or tracer — so any report printed during a run can be
    reproduced later from its ``--metrics-out``/``--trace`` files.
    """
    from repro.obs.analyze import (build_span_tree, critical_path,
                                   diff_runs, slowest_spans)
    from repro.reporting.tables import render_summary_records, render_table

    if args.obs_command == "watch":
        return _cmd_obs_watch(args, out)
    if args.obs_command == "timeline":
        return _cmd_obs_timeline(args, out)
    if args.obs_command == "flight":
        return _cmd_obs_flight(args, out)

    if args.obs_command == "diff":
        loaded = _obs_load([args.baseline, args.candidate], out)
        if loaded is None:
            return 2
        baseline, candidate = loaded
        report = diff_runs(baseline.flat, candidate.flat,
                           tolerance=args.tolerance, metrics=args.metric)
        if args.json:
            return _obs_diff_json(report, out)
        rows = []
        for delta in report.deltas:
            change = ("" if delta.relative is None
                      else f"{delta.relative:+.1%}")
            verdict = "FAIL" if delta.violation else (
                "" if delta.relative is None else "ok")
            rows.append((delta.name,
                         "-" if delta.baseline is None else delta.baseline,
                         "-" if delta.candidate is None else delta.candidate,
                         change, verdict))
        out.write(render_table(
            ("metric", "baseline", "candidate", "change", "verdict"),
            rows,
            title=f"Run diff — tolerance {args.tolerance:.0%}") + "\n")
        if report.ok:
            out.write(f"ok: {len(report.deltas)} metrics within "
                      f"tolerance\n")
            return 0
        out.write(f"FAIL: {len(report.violations)} of "
                  f"{len(report.deltas)} metrics moved more than "
                  f"{args.tolerance:.0%}\n")
        return 1

    artifacts = _obs_load(args.paths, out)
    if artifacts is None:
        return 2

    if args.obs_command == "summary":
        out.write(render_summary_records(_obs_records(artifacts)) + "\n")
        return 0

    if args.obs_command == "slow":
        nodes = slowest_spans(_obs_spans(artifacts), top=args.top,
                              by=args.by)
        out.write(render_table(
            ("span", "cumulative ms", "self ms", "attrs"),
            [(n.name, f"{n.cumulative_ms:.3f}", f"{n.self_ms:.3f}",
              ",".join(f"{k}={v}" for k, v in sorted(n.attrs.items())))
             for n in nodes],
            title=f"Slowest spans (by {args.by} time)") + "\n")
        return 0

    # tree
    roots = build_span_tree(_obs_spans(artifacts))
    if not roots:
        out.write("(no spans)\n")
        return 0
    hot = {id(node) for node in critical_path(roots)}

    def emit(node, indent: int) -> None:
        mark = " *" if id(node) in hot else ""
        attrs = ",".join(f"{k}={v}"
                         for k, v in sorted(node.attrs.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        out.write(f"{'  ' * indent}{node.name}  "
                  f"{node.cumulative_ms:.3f}ms "
                  f"(self {node.self_ms:.3f}ms){suffix}{mark}\n")
        for child in node.children:
            emit(child, indent + 1)

    for root in roots:
        emit(root, 0)
    out.write("(* = critical path)\n")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "growth": _cmd_growth,
    "scope": _cmd_scope,
    "table2": _cmd_table2,
    "survey": _cmd_survey,
    "parking": _cmd_parking,
    "exploit": _cmd_exploit,
    "perception": _cmd_perception,
    "afilters": _cmd_afilters,
    "hygiene": _cmd_hygiene,
    "transparency": _cmd_transparency,
    "temporal": _cmd_temporal,
    "blockable": _cmd_blockable,
    "serve": _cmd_serve,
    "compile-index": _cmd_compile_index,
    "obs": _cmd_obs,
}

#: Flags excluded from run-identity: execution placement and output
#: paths change *how* a run executes, never *what* it computes, so two
#: invocations differing only in these share a run ID (the property the
#: cross-worker trace-identity guarantee hangs off).
_RUN_ID_EXCLUDE = {"workers", "scheduler", "lease_size",
                   "max_worker_restarts", "checkpoint", "resume",
                   "metrics_out", "trace", "timeseries_out",
                   "timeseries_interval", "flight_out",
                   "flight_capacity"}


def _derive_run_id(args) -> str:
    from repro.obs import derive_run_id

    identity = {key: value for key, value in vars(args).items()
                if not key.startswith("_")
                and key not in _RUN_ID_EXCLUDE}
    return derive_run_id(identity)


def _open_checkpoint(args, out):
    """Create or resume the run's checkpoint from the CLI flags.

    Returns ``(checkpoint, status)``: a usable checkpoint (or ``None``
    when none was requested) and a non-zero status on refusal — an
    unsafe resume (journal from a different command/seed, mid-file
    corruption) aborts the run instead of quietly starting over.
    """
    path = getattr(args, "checkpoint", None)
    if not path:
        if getattr(args, "resume", False):
            out.write("error: --resume requires --checkpoint PATH\n")
            return None, 2
        return None, 0
    from repro.state import Checkpoint, CheckpointError

    meta = {"command": args.command, "seed": args.seed,
            "fast": bool(args.fast)}
    try:
        if getattr(args, "resume", False):
            checkpoint = Checkpoint.resume(path, meta)
        else:
            checkpoint = Checkpoint.start(path, meta)
    except CheckpointError as exc:
        out.write(f"error: {exc}\n")
        return None, 2
    if checkpoint.resumed:
        note = " (torn tail record truncated)" \
            if checkpoint.truncated_tail else ""
        out.write(f"resuming from checkpoint {path}{note}\n")
    return checkpoint, 0


def main(argv: list[str] | None = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    out = out or sys.stdout
    command = _COMMANDS[args.command]
    checkpoint, status = _open_checkpoint(args, out)
    if status:
        return status
    args._checkpoint = checkpoint
    try:
        metrics_out = getattr(args, "metrics_out", None)
        trace_out = getattr(args, "trace", None)
        timeseries_out = getattr(args, "timeseries_out", None)
        flight_out = getattr(args, "flight_out", None)
        if not (metrics_out or trace_out or timeseries_out or flight_out):
            return command(args, out)

        # Observability requested: run the command under a live registry
        # and tracer (plus the opt-in telemetry plane), export JSON
        # lines, and finish with the summary table.
        from repro.obs import (DEFAULT_FLIGHT_CAPACITY, FlightRecorder,
                               JsonLinesExporter, RotatingJsonlExporter,
                               TimeSeriesSampler, observe, summary_table)

        run_id = _derive_run_id(args)
        timeseries = None
        if timeseries_out:
            # Deterministic samples go to the main rotated segments;
            # wall-clock diagnostics (worker table) to the sidecar.
            timeseries = TimeSeriesSampler(
                RotatingJsonlExporter(timeseries_out, run_id=run_id),
                interval_s=args.timeseries_interval,
                diagnostics_exporter=RotatingJsonlExporter(
                    f"{timeseries_out}.diag", run_id=run_id))
        flight = None
        if flight_out:
            flight = FlightRecorder(
                args.flight_capacity or DEFAULT_FLIGHT_CAPACITY,
                path=flight_out, run_id=run_id)
        restore_usr2 = _install_flight_signal(flight)
        try:
            with observe(run_id=run_id, timeseries=timeseries,
                         flight=flight) as (registry, tracer):
                try:
                    status = command(args, out)
                except BaseException as exc:
                    # The black-box contract: a dying run dumps its
                    # ring, and the time-series exporter is left
                    # unsealed — an honest torn tail, exactly like the
                    # checkpoint journal's.
                    if flight is not None:
                        flight.dump(reason=type(exc).__name__)
                    raise
                if timeseries is not None:
                    timeseries.close()
                if flight is not None:
                    flight.dump(reason="exit")
                if metrics_out:
                    JsonLinesExporter(metrics_out, run_id=run_id).export(
                        registry=registry)
                if trace_out:
                    JsonLinesExporter(trace_out, run_id=run_id).export(
                        tracer=tracer)
                if metrics_out or trace_out:
                    out.write("\n" + summary_table(registry, tracer,
                                                   run_id=run_id) + "\n")
            return status
        finally:
            restore_usr2()
    finally:
        if checkpoint is not None:
            checkpoint.close()


def _install_flight_signal(flight):
    """SIGUSR2 → dump the flight ring without disturbing the run.

    Returns a restore callable.  A no-op off the main thread or on
    platforms without SIGUSR2 — the signal path is a convenience, not
    part of the telemetry contract.
    """
    if flight is None or not hasattr(signal, "SIGUSR2"):
        return lambda: None

    def _on_usr2(signum, _frame) -> None:
        flight.dump(reason="sigusr2")

    try:
        previous = signal.signal(signal.SIGUSR2, _on_usr2)
    except ValueError:        # not the main thread
        return lambda: None
    return lambda: signal.signal(signal.SIGUSR2, previous)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
