"""Filter-line parser implementing the Appendix-A BNF grammar.

One line of a filter list parses to exactly one of:

* :class:`Comment` — lines starting with ``!`` (including the ``!A<n>``
  group markers mined in Section 7, and the forum-link comments Eyeo
  attaches to vetted filters);
* :class:`RequestFilter` — blocking filters and ``@@`` exception filters
  over web-request URLs, with an optional ``$option`` clause.  Pure
  sitekey exceptions (``@@$sitekey=...,document``) are request filters
  with an empty pattern;
* :class:`ElementFilter` — ``##`` element-hiding filters and ``#@#``
  element exceptions, with optional prepended domain restrictions;
* :class:`InvalidFilter` — anything unparseable, kept (with its error)
  rather than dropped, because the paper's hygiene audit (Section 8)
  counts malformed filters in the live whitelist.

The module-level :func:`parse_filter` is the single entry point.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.filters.options import (
    ContentType,
    FilterOptions,
    OptionError,
    TriState,
    parse_options,
)
from repro.filters.pattern import (
    CompiledPattern,
    PatternError,
    compile_pattern,
    extract_keyword,
    keyword_candidates,
)
from repro.filters.selectors import SelectorError, SelectorList, parse_selector
from repro.obs import OBS

__all__ = [
    "Filter",
    "Comment",
    "RequestFilter",
    "ElementFilter",
    "InvalidFilter",
    "ParseError",
    "parse_filter",
    "FORUM_LINK_RE",
    "A_GROUP_RE",
]


class ParseError(ValueError):
    """Raised by strict parsing entry points on malformed filters."""


#: Eyeo's convention: vetted filters carry a comment linking the forum topic.
FORUM_LINK_RE = re.compile(
    r"adblockplus\.org/forum/viewtopic\.php\?[\w&=;%-]+", re.IGNORECASE)

#: Section 7's undocumented groups are introduced by nondescript ``!A<n>``.
A_GROUP_RE = re.compile(r"^!\s*A(\d+)\s*$")


@dataclass(frozen=True, slots=True)
class Filter:
    """Base class: any parsed line.  ``text`` is the raw source line."""

    text: str


@dataclass(frozen=True, slots=True)
class Comment(Filter):
    """A ``!`` comment line."""

    @property
    def body(self) -> str:
        return self.text[1:].strip()

    @property
    def forum_link(self) -> str | None:
        """The ABP forum URL named in the comment, if any."""
        match = FORUM_LINK_RE.search(self.text)
        return match.group(0) if match else None

    @property
    def a_group(self) -> int | None:
        """The A-group number for ``!A<n>`` markers, else ``None``."""
        match = A_GROUP_RE.match(self.text)
        return int(match.group(1)) if match else None


@dataclass(frozen=True, slots=True)
class RequestFilter(Filter):
    """A web-request filter (blocking, or exception when ``is_exception``)."""

    pattern_text: str
    pattern: CompiledPattern | None
    options: FilterOptions
    is_exception: bool

    @property
    def keyword_candidates(self) -> tuple[str, ...]:
        """Safe index keywords for this filter's pattern.

        Computed once per distinct pattern text and cached (see
        :func:`repro.filters.pattern.keyword_candidates`), so
        :meth:`~repro.filters.index.FilterIndex.add` can re-rank the
        candidates on every insertion without re-scanning the pattern.
        """
        if self.pattern is None:
            return ()
        return keyword_candidates(self.pattern_text)

    @property
    def keyword(self) -> str:
        """Index keyword used by the matching engine's fast path."""
        if self.pattern is None:
            return ""
        return extract_keyword(self.pattern_text)

    @property
    def is_sitekey(self) -> bool:
        """Pure sitekey filters carry a sitekey and (typically) no pattern."""
        return self.options.has_sitekey

    @property
    def is_domain_restricted(self) -> bool:
        """Restricted scope: explicit ``domain=``, or — for pure
        ``$document``/``$elemhide`` privileges — a ``||host`` anchored
        pattern, which pins the filter to that first-party host just as
        explicitly (the ``@@||ask.com^$elemhide`` shape)."""
        if self.options.is_domain_restricted:
            return True
        return self._pattern_restricted_host() is not None

    @property
    def restricted_domains(self) -> tuple[str, ...]:
        if self.options.domains_include:
            return self.options.domains_include
        host = self._pattern_restricted_host()
        return (host,) if host else ()

    def _pattern_restricted_host(self) -> str | None:
        """The anchored hostname, for privilege-only exception filters.

        A ``$document``/``$elemhide`` filter matches the *page's own*
        URL, so a ``||host`` anchor enumerates its first-party scope.
        """
        if not self.is_exception or self.pattern is None:
            return None
        privilege = ContentType.DOCUMENT | ContentType.ELEMHIDE
        include = self.options.include_types
        if not include or include & ~privilege:
            return None
        return self.pattern.anchored_hostname

    def matches(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        sitekey: str | None = None,
    ) -> bool:
        """Full ABP match: type mask, pattern, domain, party, sitekey.

        Checks are ordered cheapest-reject first: the integer mask test
        and the C-level regex eliminate almost all candidates before any
        Python-level domain or party logic runs — this ordering is what
        keeps a full-survey run fast.
        """
        from repro.web.url import is_third_party

        options = self.options
        if not options.effective_mask_int() & int(content_type):
            return False
        if self.pattern is not None and \
                self.pattern.regex.search(url) is None:
            return False
        if options.domains_include or options.domains_exclude:
            if not options.applies_on_domain(page_host):
                return False
        if options.third_party is not TriState.UNSET:
            third = is_third_party(request_host, page_host)
            if options.third_party is TriState.YES and not third:
                return False
            if options.third_party is TriState.NO and third:
                return False
        if options.sitekeys:
            if sitekey is None or sitekey not in options.sitekeys:
                return False
        return True


@dataclass(frozen=True, slots=True)
class ElementFilter(Filter):
    """An element-hiding filter (``##``) or element exception (``#@#``)."""

    selector: SelectorList
    is_exception: bool
    domains_include: tuple[str, ...] = ()
    domains_exclude: tuple[str, ...] = ()

    @property
    def selector_text(self) -> str:
        return self.selector.source

    @property
    def is_domain_restricted(self) -> bool:
        return bool(self.domains_include)

    @property
    def restricted_domains(self) -> tuple[str, ...]:
        return self.domains_include

    def applies_on_domain(self, page_host: str) -> bool:
        from repro.web.url import is_subdomain_of

        host = page_host.lower()
        if any(is_subdomain_of(host, d) for d in self.domains_exclude):
            return False
        if self.domains_include:
            return any(is_subdomain_of(host, d) for d in self.domains_include)
        return True


@dataclass(frozen=True, slots=True)
class InvalidFilter(Filter):
    """A line that failed to parse; ``error`` says why."""

    error: str = field(default="", compare=False)


_ELEMENT_SEPARATOR_RE = re.compile(r"(#@#|##)")


#: Metric label for each parse outcome (``filters.parse.lines``).
_PARSE_KIND = {
    Comment: "comment",
    RequestFilter: "request",
    ElementFilter: "element",
    InvalidFilter: "invalid",
}


def parse_filter(line: str) -> Filter:
    """Parse one filter-list line into its :class:`Filter` subtype.

    Never raises: malformed lines come back as :class:`InvalidFilter`,
    because real lists contain malformed entries that downstream analyses
    must count rather than crash on.
    """
    result = _parse_line(line)
    if OBS.enabled:
        OBS.registry.counter("filters.parse.lines",
                             kind=_PARSE_KIND[type(result)]).inc()
    return result


def _parse_line(line: str) -> Filter:
    text = line.rstrip("\n")
    stripped = text.strip()
    if not stripped:
        return InvalidFilter(text, error="blank line")
    if stripped.startswith("!"):
        return Comment(stripped)
    if stripped.startswith("[") and stripped.endswith("]"):
        return Comment("! " + stripped)  # header line, treated as metadata

    element_match = _ELEMENT_SEPARATOR_RE.search(stripped)
    if element_match and not stripped.startswith(("@@", "/")):
        return _parse_element(stripped, element_match)
    return _parse_request(stripped)


def _parse_element(text: str, match: re.Match[str]) -> Filter:
    separator = match.group(1)
    domain_part = text[: match.start()]
    selector_part = text[match.end():]
    include: list[str] = []
    exclude: list[str] = []
    if domain_part:
        for entry in domain_part.split(","):
            entry = entry.strip().lower()
            if not entry:
                return InvalidFilter(text, error="empty domain before ##")
            if entry.startswith("~"):
                if len(entry) == 1:
                    return InvalidFilter(text, error="bare ~ domain")
                exclude.append(entry[1:])
            else:
                include.append(entry)
    try:
        selector = parse_selector(selector_part)
    except SelectorError as exc:
        return InvalidFilter(text, error=f"bad selector: {exc}")
    return ElementFilter(
        text,
        selector=selector,
        is_exception=(separator == "#@#"),
        domains_include=tuple(include),
        domains_exclude=tuple(exclude),
    )


def _parse_request(text: str) -> Filter:
    is_exception = text.startswith("@@")
    body = text[2:] if is_exception else text

    pattern_text, options_text = _split_options(body)
    try:
        options = parse_options(options_text) if options_text else FilterOptions()
    except OptionError as exc:
        return InvalidFilter(text, error=f"bad options: {exc}")

    if options.has_sitekey and not is_exception:
        return InvalidFilter(text, error="sitekey= only valid on exceptions")
    if (options.include_types & (ContentType.DOCUMENT | ContentType.ELEMHIDE)
            and not is_exception):
        return InvalidFilter(
            text, error="document/elemhide only valid on exceptions")

    pattern: CompiledPattern | None
    if pattern_text in ("", "*"):
        if not options_text:
            return InvalidFilter(text, error="empty filter")
        pattern = None  # matches every URL; used by pure sitekey filters
    else:
        try:
            pattern = compile_pattern(pattern_text,
                                      match_case=options.match_case)
        except PatternError as exc:
            return InvalidFilter(text, error=str(exc))

    return RequestFilter(
        text,
        pattern_text=pattern_text,
        pattern=pattern,
        options=options,
        is_exception=is_exception,
    )


def _split_options(body: str) -> tuple[str, str]:
    """Split ``pattern$options`` at the last viable ``$``.

    A ``$`` inside a raw regex (``/.../``) or a ``$`` with no known
    option-ish text after it stays part of the pattern.
    """
    if body.startswith("/") and body.rstrip().endswith("/"):
        return body, ""
    index = body.rfind("$")
    if index <= 0:
        # ``$`` at position 0 means an empty pattern with options
        # (the pure-sitekey shape ``@@$sitekey=...,document``).
        if index == 0:
            return "", body[1:]
        return body, ""
    candidate = body[index + 1:]
    # ABP's own option recogniser: a comma-separated list of (optionally
    # negated) option words, each optionally carrying an ``=value`` whose
    # value may contain anything but a comma (base64 sitekeys included).
    if re.fullmatch(r"~?[\w-]+(=[^,]*)?(,~?[\w-]+(=[^,]*)?)*", candidate):
        return body[:index], candidate
    return body, ""
