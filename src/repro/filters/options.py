"""Filter options — the ``$option,option,...`` clause of Appendix A.

Options tune a request filter's scope: which content types it applies to
(``script``, ``image``, ...), whether it is limited to third-party
requests, which first-party domains it is restricted to (``domain=``),
which sitekeys activate it (``sitekey=``), and a handful of behavioural
flags (``match-case``, ``collapse``, ``donottrack``).

The paper's whitelist-scope analysis (Figure 4, Table 2) is driven almost
entirely by this module: a filter is *restricted* exactly when its
``domain=`` option names at least one non-negated domain (or, for element
filters, when domains are prepended), *sitekey* when it carries
``sitekey=``, and *unrestricted* otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "ContentType",
    "TriState",
    "FilterOptions",
    "OptionError",
    "parse_options",
    "DEPRECATED_OPTIONS",
]


class OptionError(ValueError):
    """Raised when an option clause cannot be parsed."""


class ContentType(enum.IntFlag):
    """Request content types, as a bitmask (mirrors ABP internals).

    ``DEFAULT_MASK`` covers the types a filter applies to when no type
    option is given; ``DOCUMENT`` and ``ELEMHIDE`` are *not* implied by
    default — they must be requested explicitly, exactly as in ABP.
    """

    SCRIPT = enum.auto()
    IMAGE = enum.auto()
    STYLESHEET = enum.auto()
    OBJECT = enum.auto()
    XMLHTTPREQUEST = enum.auto()
    OBJECT_SUBREQUEST = enum.auto()
    SUBDOCUMENT = enum.auto()
    OTHER = enum.auto()
    # Exception-only "privilege" types.
    DOCUMENT = enum.auto()
    ELEMHIDE = enum.auto()
    # Deprecated types kept for backwards compatibility (Appendix A.4).
    BACKGROUND = enum.auto()
    XBL = enum.auto()
    PING = enum.auto()
    DTD = enum.auto()

    @classmethod
    def default_mask(cls) -> "ContentType":
        """Types matched when the filter names no content-type option."""
        return (
            cls.SCRIPT | cls.IMAGE | cls.STYLESHEET | cls.OBJECT
            | cls.XMLHTTPREQUEST | cls.OBJECT_SUBREQUEST | cls.SUBDOCUMENT
            | cls.OTHER | cls.BACKGROUND | cls.XBL | cls.PING | cls.DTD
        )


#: option keyword -> content type
_TYPE_OPTIONS: dict[str, ContentType] = {
    "script": ContentType.SCRIPT,
    "image": ContentType.IMAGE,
    "stylesheet": ContentType.STYLESHEET,
    "object": ContentType.OBJECT,
    "xmlhttprequest": ContentType.XMLHTTPREQUEST,
    "object-subrequest": ContentType.OBJECT_SUBREQUEST,
    "subdocument": ContentType.SUBDOCUMENT,
    "other": ContentType.OTHER,
    "document": ContentType.DOCUMENT,
    "elemhide": ContentType.ELEMHIDE,
    "background": ContentType.BACKGROUND,
    "xbl": ContentType.XBL,
    "ping": ContentType.PING,
    "dtd": ContentType.DTD,
}

DEPRECATED_OPTIONS = frozenset({"background", "xbl", "ping", "dtd"})


class TriState(enum.Enum):
    """Three-valued option state: unset, required true, required false."""

    UNSET = "unset"
    YES = "yes"
    NO = "no"


@dataclass(slots=True)
class FilterOptions:
    """Parsed option clause of a request filter.

    ``include_types`` / ``exclude_types`` hold the explicitly requested and
    explicitly negated content types; :meth:`effective_mask` combines them
    with the default mask the way ABP does.
    """

    include_types: ContentType = ContentType(0)
    exclude_types: ContentType = ContentType(0)
    third_party: TriState = TriState.UNSET
    domains_include: tuple[str, ...] = ()
    domains_exclude: tuple[str, ...] = ()
    sitekeys: tuple[str, ...] = ()
    match_case: bool = False
    collapse: TriState = TriState.UNSET
    donottrack: bool = False
    raw: str = ""
    deprecated_used: tuple[str, ...] = field(default_factory=tuple)
    _mask_cache: int = field(default=-1, repr=False, compare=False)

    def effective_mask(self) -> ContentType:
        """The content-type mask this filter actually applies to.

        Cached: the mask is consulted on every candidate-filter check,
        millions of times over a survey.
        """
        return ContentType(self.effective_mask_int())

    def effective_mask_int(self) -> int:
        """The mask as a plain int — the hot-path form (no enum boxing)."""
        if self._mask_cache >= 0:
            return self._mask_cache
        if self.include_types:
            mask = self.include_types
        elif self.exclude_types:
            mask = ContentType.default_mask() & ~self.exclude_types
        else:
            mask = ContentType.default_mask()
        self._mask_cache = int(mask)
        return self._mask_cache

    @property
    def is_domain_restricted(self) -> bool:
        """True when at least one non-negated ``domain=`` entry exists."""
        return bool(self.domains_include)

    @property
    def has_sitekey(self) -> bool:
        return bool(self.sitekeys)

    def applies_to_type(self, content_type: ContentType | int) -> bool:
        """Does this filter apply to a request of ``content_type``?"""
        return bool(self.effective_mask_int() & int(content_type))

    def applies_on_domain(self, page_host: str) -> bool:
        """Does the ``domain=`` restriction admit ``page_host``?

        ABP semantics: an excluded domain always wins over a broader
        included one; with only exclusions, everything else is admitted;
        with inclusions, the page host must fall under one of them.
        """
        from repro.web.url import is_subdomain_of

        host = page_host.lower()
        best_include = -1
        best_exclude = -1
        for domain in self.domains_include:
            if is_subdomain_of(host, domain):
                best_include = max(best_include, domain.count(".") + 1)
        for domain in self.domains_exclude:
            if is_subdomain_of(host, domain):
                best_exclude = max(best_exclude, domain.count(".") + 1)
        if best_exclude >= 0 and best_exclude >= best_include:
            return False
        if self.domains_include:
            return best_include >= 0
        return True


def parse_options(text: str) -> FilterOptions:
    """Parse the text after ``$`` into a :class:`FilterOptions`.

    Raises :class:`OptionError` on unknown option keywords, on negating a
    non-negatable option (``domain=``, ``sitekey=``, ``match-case``,
    ``donottrack``), and on empty entries.
    """
    options = FilterOptions(raw=text)
    include = ContentType(0)
    exclude = ContentType(0)
    deprecated: list[str] = []

    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            raise OptionError(f"empty option in {text!r}")
        negated = piece.startswith("~")
        if negated:
            piece = piece[1:]
        keyword, eq, value = piece.partition("=")
        keyword = keyword.strip().lower()

        if eq:
            if negated:
                raise OptionError(f"option {keyword!r} cannot be negated")
            if keyword == "domain":
                _parse_domain_list(value, options)
            elif keyword == "sitekey":
                keys = tuple(k.strip() for k in value.split("|") if k.strip())
                if not keys:
                    raise OptionError("sitekey= requires at least one key")
                options.sitekeys = options.sitekeys + keys
            else:
                raise OptionError(f"unknown option {keyword!r}")
            continue

        if keyword in _TYPE_OPTIONS:
            if keyword in DEPRECATED_OPTIONS:
                deprecated.append(keyword)
            if negated:
                exclude |= _TYPE_OPTIONS[keyword]
            else:
                include |= _TYPE_OPTIONS[keyword]
        elif keyword == "third-party":
            options.third_party = TriState.NO if negated else TriState.YES
        elif keyword == "collapse":
            options.collapse = TriState.NO if negated else TriState.YES
        elif keyword == "match-case":
            if negated:
                raise OptionError("match-case cannot be negated")
            options.match_case = True
        elif keyword == "donottrack":
            if negated:
                raise OptionError("donottrack cannot be negated")
            options.donottrack = True
        else:
            raise OptionError(f"unknown option {keyword!r}")

    options.include_types = include
    options.exclude_types = exclude
    options.deprecated_used = tuple(deprecated)
    return options


def _parse_domain_list(value: str, options: FilterOptions) -> None:
    include: list[str] = list(options.domains_include)
    exclude: list[str] = list(options.domains_exclude)
    for entry in value.split("|"):
        entry = entry.strip().lower()
        if not entry:
            raise OptionError("empty domain entry in domain= option")
        if entry.startswith("~"):
            domain = entry[1:]
            if not domain:
                raise OptionError("bare ~ in domain= option")
            exclude.append(domain)
        else:
            include.append(entry)
    options.domains_include = tuple(include)
    options.domains_exclude = tuple(exclude)
