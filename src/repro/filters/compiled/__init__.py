"""Ahead-of-time compiled filter-index machinery.

Three modules, one pipeline: :mod:`~repro.filters.compiled.automaton`
packs the index's keyword set into flat Aho-Corasick tables,
:mod:`~repro.filters.compiled.index` wraps them (plus prebuilt bucket
tuples) as the frozen engine's probe structure, and
:mod:`~repro.filters.compiled.artifact` serializes the whole thing as a
versioned, CRC-checksummed artifact that
:class:`~repro.state.snapshots.SnapshotStore` keys by epoch + content
fingerprint, so fork workers and the serving daemon load it read-only
instead of rebuilding.  See docs/PERFORMANCE.md for the cost model.
"""

from repro.filters.compiled.artifact import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    CompiledArtifact,
    CompiledArtifactError,
    parse_artifact,
    serialize_artifact,
)
from repro.filters.compiled.automaton import (
    TOKEN_TABLE,
    KeywordAutomaton,
)
from repro.filters.compiled.index import CompiledFilterIndex

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "CompiledArtifact",
    "CompiledArtifactError",
    "CompiledFilterIndex",
    "KeywordAutomaton",
    "TOKEN_TABLE",
    "parse_artifact",
    "serialize_artifact",
]
