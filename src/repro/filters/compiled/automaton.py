"""A packed Aho-Corasick keyword automaton over URL bytes.

The keyword index (:mod:`repro.filters.index`) buckets filters under
literal tokens; probing asks "which of the index's keywords occur as a
full token of this URL?".  This module compiles the keyword set, once
per subscription epoch, into a classic Aho-Corasick automaton stored as
flat packed tables (``array('i')`` + ``bytes``) — no dicts of dicts, no
per-node objects — so the compiled form is

* cheap to share: forked survey workers inherit the arrays as read-only
  copy-on-write pages and never re-derive them;
* trivially serializable: the artifact writer
  (:mod:`repro.filters.compiled.artifact`) copies the tables verbatim
  and a loader reconstitutes the automaton without ever re-running the
  trie/fail-link construction;
* deterministic: identical keyword sequences produce identical tables
  byte-for-byte, which is what lets the CI perf gate diff artifacts.

Layout (CSR — compressed sparse rows — since trie fan-out collapses to
~1 past the first character):

* ``edge_offsets[s] .. edge_offsets[s+1]`` delimits state ``s``'s slice
  of ``edge_syms`` (the sorted outgoing byte labels) and
  ``edge_targets`` (the matching successor states);
* ``fail[s]`` is the standard failure link (longest proper suffix of
  ``s``'s string that is also a trie prefix);
* ``out[s]`` is the keyword id ending exactly at ``s``, or ``-1``;
* ``out_link[s]`` is the nearest failure-chain state with an output
  (dictionary suffix link), or ``-1``;
* ``depth[s]`` is ``s``'s distance from the root (= matched length).

Keywords are drawn from the token alphabet ``[a-z0-9%]`` (see
``_URL_KEYWORD_RE`` in :mod:`repro.filters.index`), so a single shared
256-byte translation table (:data:`TOKEN_TABLE`) both lowercases and
collapses every separator byte to a space; token boundaries are then
exactly ASCII-space boundaries.

>>> auto = KeywordAutomaton.build([b"ads", b"adserv", b"track"])
>>> auto.walk_token(b"adserv")          # exact full-token acceptance
1
>>> auto.walk_token(b"adservX") is None
True
>>> [auto.keywords[k] for _, k in auto.scan(b"xxadservyy track")]
[b'ads', b'adserv', b'track']
>>> [auto.keywords[k]                   # full tokens only: no 'ads'
...  for k in auto.token_hits(b"http://ADSERV.example/track?x=1")]
[b'adserv', b'track']
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Iterable, Iterator, Sequence

__all__ = ["KeywordAutomaton", "TOKEN_TABLE", "TOKEN_BYTES"]

#: The token alphabet: exactly the character class of the index's
#: ``_URL_KEYWORD_RE`` (``[a-z0-9%]``).
TOKEN_BYTES = b"abcdefghijklmnopqrstuvwxyz0123456789%"

def _build_token_table() -> bytes:
    table = bytearray(b" " * 256)
    for byte in TOKEN_BYTES:
        table[byte] = byte
    for byte in range(ord("A"), ord("Z") + 1):
        table[byte] = byte + 32          # lowercase, like str.lower()
    return bytes(table)

#: ``bytes.translate`` table: token bytes pass through (uppercase
#: lowercased), every other byte becomes a space.  After translation,
#: ``.split()`` yields exactly the URL's keyword-alphabet tokens.
TOKEN_TABLE = _build_token_table()

_SPACE = 0x20


class KeywordAutomaton:
    """Packed-table Aho-Corasick automaton over a fixed keyword set."""

    __slots__ = ("keywords", "edge_offsets", "edge_syms", "edge_targets",
                 "fail", "out", "out_link", "depth")

    def __init__(self, *, keywords: tuple[bytes, ...],
                 edge_offsets: array, edge_syms: bytes,
                 edge_targets: array, fail: array, out: array,
                 out_link: array, depth: array) -> None:
        self.keywords = keywords
        self.edge_offsets = edge_offsets
        self.edge_syms = edge_syms
        self.edge_targets = edge_targets
        self.fail = fail
        self.out = out
        self.out_link = out_link
        self.depth = depth

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, keywords: Iterable[bytes]) -> "KeywordAutomaton":
        """Compile ``keywords`` (unique, token-alphabet bytes) to tables.

        Keyword ids are positional: ``keywords[i]`` gets id ``i``, so
        the caller's ordering (the index's bucket ordering) is the
        automaton's output numbering.
        """
        kws = tuple(keywords)
        seen: set[bytes] = set()
        for kw in kws:
            if not kw:
                raise ValueError("empty keyword")
            if kw in seen:
                raise ValueError(f"duplicate keyword {kw!r}")
            seen.add(kw)
            if kw.translate(TOKEN_TABLE) != kw or b" " in kw:
                raise ValueError(
                    f"keyword {kw!r} outside the token alphabet")
        children: list[dict[int, int]] = [{}]
        out_list = [-1]
        depth_list = [0]
        for kid, kw in enumerate(kws):
            node = 0
            for byte in kw:
                nxt = children[node].get(byte)
                if nxt is None:
                    nxt = len(children)
                    children[node][byte] = nxt
                    children.append({})
                    out_list.append(-1)
                    depth_list.append(depth_list[node] + 1)
                node = nxt
            out_list[node] = kid
        states = len(children)
        fail_list = [0] * states
        out_link_list = [-1] * states
        queue: deque[int] = deque()
        for child in children[0].values():
            queue.append(child)
        while queue:
            node = queue.popleft()
            fail_node = fail_list[node]
            out_link_list[node] = (fail_node
                                   if out_list[fail_node] != -1
                                   else out_link_list[fail_node])
            for byte, child in children[node].items():
                probe = fail_node
                while True:
                    target = children[probe].get(byte)
                    if target is not None and target != child:
                        fail_list[child] = target
                        break
                    if probe == 0:
                        break
                    probe = fail_list[probe]
                queue.append(child)
        offsets = array("i", [0] * (states + 1))
        syms = bytearray()
        targets = array("i")
        for node in range(states):
            offsets[node] = len(syms)
            for byte in sorted(children[node]):
                syms.append(byte)
                targets.append(children[node][byte])
        offsets[states] = len(syms)
        return cls(keywords=kws, edge_offsets=offsets,
                   edge_syms=bytes(syms), edge_targets=targets,
                   fail=array("i", fail_list), out=array("i", out_list),
                   out_link=array("i", out_link_list),
                   depth=array("i", depth_list))

    @classmethod
    def from_tables(cls, *, keywords: Sequence[bytes],
                    edge_offsets: array, edge_syms: bytes,
                    edge_targets: array, fail: array, out: array,
                    out_link: array, depth: array) -> "KeywordAutomaton":
        """Reconstitute an automaton from previously packed tables.

        This is the artifact-load path: no trie construction, no fail
        links to derive — the arrays are adopted as-is after structural
        validation (sizes consistent, state ids in range), which keeps a
        corrupted artifact from turning into out-of-range indexing at
        probe time.
        """
        states = len(fail)
        edges = len(edge_syms)
        if (len(edge_offsets) != states + 1 or len(edge_targets) != edges
                or len(out) != states or len(out_link) != states
                or len(depth) != states or states == 0):
            raise ValueError("inconsistent automaton table sizes")
        if edge_offsets[0] != 0 or edge_offsets[states] != edges:
            raise ValueError("malformed edge offsets")
        last = 0
        for offset in edge_offsets:
            if offset < last:
                raise ValueError("edge offsets not monotonic")
            last = offset
        kws = tuple(keywords)
        for target in edge_targets:
            if not 1 <= target < states:
                raise ValueError("edge target out of range")
        for kid in out:
            if not -1 <= kid < len(kws):
                raise ValueError("output keyword id out of range")
        for link, node in zip(out_link, fail):
            if not -1 <= link < states or not 0 <= node < states:
                raise ValueError("fail/output link out of range")
        return cls(keywords=kws, edge_offsets=edge_offsets,
                   edge_syms=edge_syms, edge_targets=edge_targets,
                   fail=fail, out=out, out_link=out_link, depth=depth)

    # -- introspection -------------------------------------------------

    @property
    def states(self) -> int:
        return len(self.fail)

    @property
    def edges(self) -> int:
        return len(self.edge_syms)

    def stats(self) -> dict[str, int]:
        return {"keywords": len(self.keywords), "states": self.states,
                "edges": self.edges}

    # -- walking -------------------------------------------------------

    def _step(self, state: int, byte: int) -> int:
        """Goto function: successor of ``state`` on ``byte``, or ``-1``."""
        lo = self.edge_offsets[state]
        hi = self.edge_offsets[state + 1]
        where = self.edge_syms.find(byte, lo, hi)
        return self.edge_targets[where] if where >= 0 else -1

    def walk_token(self, token: bytes) -> int | None:
        """Keyword id of ``token`` under exact full-token acceptance.

        Returns ``None`` when the walk dies or ends on a non-output
        state — i.e. a keyword that is merely a prefix, suffix, or
        substring of ``token`` is *not* accepted.  This mirrors the
        index's probe semantics exactly: buckets are keyed by whole
        tokens, so ``ads`` inside ``adserv`` must not fire.
        """
        state = 0
        step = self._step
        for byte in token:
            state = step(state, byte)
            if state < 0:
                return None
        kid = self.out[state]
        return kid if kid >= 0 else None

    def scan(self, data: bytes) -> Iterator[tuple[int, int]]:
        """Classic AC substring scan: yields ``(end_pos, keyword_id)``.

        One linear pass; every occurrence of every keyword is reported
        (including overlapping ones, via the dictionary suffix links).
        ``end_pos`` is the index one past the occurrence's last byte.
        This is the reference the differential-fuzz suite holds the
        optimised probe driver to.
        """
        state = 0
        step = self._step
        fail = self.fail
        out = self.out
        out_link = self.out_link
        for pos, byte in enumerate(data):
            target = step(state, byte)
            while target < 0 and state:
                state = fail[state]
                target = step(state, byte)
            state = target if target >= 0 else 0
            node = state
            if out[node] < 0:
                node = out_link[node]
            while node is not None and node >= 0:
                yield pos + 1, out[node]
                node = out_link[node]

    def token_hits(self, data: bytes) -> list[int]:
        """Distinct keyword ids occurring as *full tokens* of ``data``.

        ``data`` is raw URL bytes; normalization (lowercasing, separator
        collapsing) happens here via :data:`TOKEN_TABLE`.  Order is
        first occurrence, which is exactly the bucket-probe order of the
        legacy ``FilterIndex.candidates`` (distinct tokens in
        first-occurrence order).  A match only counts when flanked by
        token boundaries on both sides — this is the automaton-walk
        reference implementation of the probe; the production driver in
        :class:`~repro.filters.compiled.index.CompiledFilterIndex`
        computes the same set with C-level primitives.
        """
        norm = data.translate(TOKEN_TABLE)
        size = len(norm)
        hits: list[int] = []
        seen: set[int] = set()
        for end, kid in self.scan(norm):
            if kid in seen:
                continue
            start = end - len(self.keywords[kid])
            if start > 0 and norm[start - 1] != _SPACE:
                continue
            if end < size and norm[end] != _SPACE:
                continue
            seen.add(kid)
            hits.append(kid)
        return hits

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"KeywordAutomaton(keywords={len(self.keywords)}, "
                f"states={self.states}, edges={self.edges})")
