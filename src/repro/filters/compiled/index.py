"""The compiled, frozen form of :class:`~repro.filters.index.FilterIndex`.

``FilterIndex`` is the mutable build-time structure: it chooses keywords
as filters arrive and grows dict buckets.  Once an engine freezes
(:meth:`repro.filters.engine.AdblockEngine.freeze`), the index is
compiled into this read-only form, which fixes the PR-4 hot path's two
remaining costs:

* **per-probe tokenisation** — the legacy path ran a regex over every
  URL (memoised in an 8192-entry ``lru_cache`` that forked workers had
  to re-warm and that thrashes once the survey's working set exceeds
  it).  The compiled probe is a single pass over the URL bytes with
  C-level primitives: one 256-byte ``translate`` (lowercase + collapse
  separators), one ``split``, one ``set.intersection`` against the
  keyword set.  No cache, nothing to warm after ``fork``.
* **per-candidate generator machinery** — ``candidates()`` was a
  generator resuming once per yielded filter, which dominates when the
  fallback bucket is large (the synthetic EasyList routes ~25% of its
  filters there).  The compiled index returns *prebuilt tuples*:
  the zero-hit answer is one shared ``fallback`` tuple, a single-hit
  answer is the bucket's precomputed ``bucket + fallback`` tuple.

The candidate *sequence* is byte-identical to the legacy index's:
distinct URL tokens in first-occurrence order select buckets (bucket
contents in insertion order), then the fallback bucket, always, last —
the never-filter-out-a-match guarantee is untouched.  The
differential-fuzz suite (``tests/filters/test_compiled_fuzz.py``) holds
this equivalence against both the legacy index and the packed
:class:`~repro.filters.compiled.automaton.KeywordAutomaton`, which is
compiled alongside as the index's serialized identity and reference
matcher.

Non-ASCII URLs take a conservative detour through the legacy string
tokeniser: ``str.lower()`` can fold non-ASCII code points *into* ASCII
(``'K'.lower() == 'k'``), so byte-level lowercasing of such URLs
could miss a bucket and break the completeness guarantee.

>>> from repro.filters.index import FilterIndex
>>> from repro.filters.parser import parse_filter
>>> legacy = FilterIndex([parse_filter("||adzerk.net^"),
...                       parse_filter("/banner[0-9]+/")])
>>> compiled = CompiledFilterIndex.compile(legacy)
>>> [f.text for f in compiled.candidates("http://adzerk.net/x")]
['||adzerk.net^', '/banner[0-9]+/']
>>> [f.text for f in compiled.candidates("http://example.com/page")]
['/banner[0-9]+/']
"""

from __future__ import annotations

from itertools import chain
from typing import Iterator, Sequence

from repro.filters.compiled.automaton import TOKEN_TABLE, KeywordAutomaton
from repro.filters.index import FilterIndex, _url_tokens
from repro.filters.options import ContentType
from repro.filters.parser import RequestFilter
from repro.obs import OBS

__all__ = ["CompiledFilterIndex"]


class _MultiCandidates:
    """A reusable, lazily chained multi-bucket candidate sequence.

    The fallback bucket routinely holds hundreds of filters, so
    materialising ``bucket + bucket + fallback`` into a list would copy
    hundreds of pointers per multi-hit probe.  This object keeps the
    (two or three) hit buckets plus the fallback as a tuple of tuples
    and iterates them back-to-back with C-level ``chain`` iteration —
    each ``__iter__`` call yields a fresh iterator, so callers may
    re-iterate it just like the prebuilt single-hit tuples.
    """

    __slots__ = ("_parts", "_length")

    def __init__(self, parts: tuple[tuple[RequestFilter, ...], ...]) -> None:
        self._parts = parts
        self._length = sum(map(len, parts))

    def __iter__(self) -> Iterator[RequestFilter]:
        return chain.from_iterable(self._parts)

    def __len__(self) -> int:
        return self._length


class CompiledFilterIndex:
    """Read-only keyword index: packed automaton + prebuilt bucket tuples.

    Construction goes through :meth:`compile` (from a built
    ``FilterIndex``) or :meth:`from_parts` (the artifact-load path).
    The probe surface mirrors ``FilterIndex`` — ``candidates``,
    ``match_first``, ``match_all``, iteration, ``len`` — so engines and
    sessions use either interchangeably; ``candidates`` returns a
    reusable sequence rather than a one-shot generator.
    """

    __slots__ = ("name", "automaton", "_keywords", "_buckets", "_fallback",
                 "_kwset", "_single", "_raw", "_bucket_of", "_count")

    def __init__(self, *, name: str,
                 keywords: tuple[str, ...],
                 buckets: tuple[tuple[RequestFilter, ...], ...],
                 fallback: tuple[RequestFilter, ...],
                 automaton: KeywordAutomaton) -> None:
        if len(keywords) != len(buckets):
            raise ValueError("one bucket per keyword required")
        self.name = name
        self.automaton = automaton
        self._keywords = keywords
        self._buckets = buckets
        self._fallback = fallback
        encoded = [keyword.encode("ascii") for keyword in keywords]
        # A plain set (not frozenset): ``set.intersection`` then returns
        # a mutable set the multi-hit assembler can drain in place.
        self._kwset = set(encoded)
        # Single-hit probes (the overwhelmingly common non-empty case)
        # return one precomputed ``bucket + fallback`` tuple: memory is
        # O(buckets x fallback) pointers, traded for zero per-probe
        # concatenation.  ``_raw`` keeps the bare buckets for the rare
        # multi-hit assembly.
        self._single = {token: bucket + fallback
                        for token, bucket in zip(encoded, buckets)}
        self._raw = dict(zip(encoded, buckets))
        self._bucket_of = {id(flt): kid
                           for kid, bucket in enumerate(buckets)
                           for flt in bucket}
        self._bucket_of.update((id(flt), -1) for flt in fallback)
        self._count = sum(map(len, buckets)) + len(fallback)

    # -- construction --------------------------------------------------

    @classmethod
    def compile(cls, index: FilterIndex,
                name: str = "index") -> "CompiledFilterIndex":
        """Compile a built ``FilterIndex`` (bucket order preserved)."""
        keywords = tuple(index._by_keyword)
        buckets = tuple(tuple(bucket)
                        for bucket in index._by_keyword.values())
        fallback = tuple(index._fallback)
        automaton = KeywordAutomaton.build(
            keyword.encode("ascii") for keyword in keywords)
        compiled = cls(name=name, keywords=keywords, buckets=buckets,
                       fallback=fallback, automaton=automaton)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("filters.index.automaton_builds",
                        index=name, source="compile").inc()
            reg.gauge("filters.index.automaton_states",
                      index=name).set(automaton.states)
        return compiled

    @classmethod
    def from_parts(cls, *, name: str, keywords: Sequence[str],
                   buckets: Sequence[Sequence[RequestFilter]],
                   fallback: Sequence[RequestFilter],
                   automaton: KeywordAutomaton) -> "CompiledFilterIndex":
        """Assemble from deserialized parts (no automaton rebuild)."""
        compiled = cls(name=name, keywords=tuple(keywords),
                       buckets=tuple(tuple(b) for b in buckets),
                       fallback=tuple(fallback), automaton=automaton)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("filters.index.automaton_builds",
                        index=name, source="artifact").inc()
            reg.gauge("filters.index.automaton_states",
                      index=name).set(automaton.states)
        return compiled

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[RequestFilter]:
        for bucket in self._buckets:
            yield from bucket
        yield from self._fallback

    @property
    def keywords(self) -> tuple[str, ...]:
        return self._keywords

    @property
    def fallback(self) -> tuple[RequestFilter, ...]:
        return self._fallback

    def bucket_filters(self, keyword_id: int) -> tuple[RequestFilter, ...]:
        return self._buckets[keyword_id]

    def bucket_of(self, flt: RequestFilter) -> int:
        """Bucket id holding ``flt`` (``-1`` = fallback); serialization."""
        return self._bucket_of[id(flt)]

    def stats(self) -> dict[str, int]:
        """Size figures for health endpoints and the CLI."""
        return {"filters": self._count,
                "keywords": len(self._keywords),
                "fallback": len(self._fallback),
                **{f"automaton_{key}": value
                   for key, value in self.automaton.stats().items()
                   if key != "keywords"}}

    # -- probing -------------------------------------------------------

    def candidates(self, url: str) -> Sequence[RequestFilter]:
        """Candidate filters for ``url``, as a reusable sequence.

        Same completeness guarantee and same ordering as
        :meth:`FilterIndex.candidates`; the zero- and single-hit cases
        return prebuilt tuples, so callers may iterate them repeatedly
        without re-probing.
        """
        if OBS.enabled:
            return self._instrumented_candidates(url)
        if url.isascii():
            toks = url.encode("ascii").translate(TOKEN_TABLE).split()
            hits = self._kwset.intersection(toks)
        else:
            toks = [token.encode("ascii")
                    for token in _url_tokens(url)]
            hits = self._kwset.intersection(toks)
        if not hits:
            return self._fallback
        if len(hits) == 1:
            # ``hits`` is a fresh mutable set; pop() beats building an
            # iterator just to read the lone element.
            return self._single[hits.pop()]
        return self._multi_hit(toks, hits)

    def _multi_hit(self, toks: Sequence[bytes],
                   pending: set[bytes]) -> Sequence[RequestFilter]:
        """Assemble a multi-bucket answer in first-occurrence order."""
        parts: list[tuple[RequestFilter, ...]] = []
        raw = self._raw
        for token in toks:
            if token in pending:
                pending.discard(token)
                parts.append(raw[token])
                if not pending:
                    break
        parts.append(self._fallback)
        return _MultiCandidates(tuple(parts))

    def _instrumented_candidates(self, url: str) -> Sequence[RequestFilter]:
        """:meth:`candidates` plus ``filters.index.*`` accounting.

        Probes the *identical* bucket sequence as the fast path (same
        driver, same ordering); ``bucket_misses`` counts distinct
        keyword-eligible tokens (length >= 3) absent from the index,
        and ``automaton_transitions`` counts the symbols the probe
        drives through the completed automaton — one transition per
        byte of every distinct token offered.
        """
        if url.isascii():
            raw_tokens = url.encode("ascii").translate(TOKEN_TABLE).split()
            distinct = [token for token in dict.fromkeys(raw_tokens)
                        if len(token) >= 3]
        else:
            raw_tokens = distinct = [token.encode("ascii")
                                     for token in _url_tokens(url)]
        kwset = self._kwset
        order = [token for token in distinct if token in kwset]
        reg = OBS.registry
        reg.counter("filters.index.probes").inc()
        reg.counter("filters.index.bucket_hits").inc(len(order))
        reg.counter("filters.index.bucket_misses").inc(
            len(distinct) - len(order))
        reg.counter("filters.index.automaton_transitions").inc(
            sum(map(len, distinct)))
        raw = self._raw
        yielded = sum(len(raw[token]) for token in order)
        reg.counter("filters.index.candidates_yielded").inc(
            yielded + len(self._fallback))
        if self._fallback:
            reg.counter("filters.index.fallback_scanned").inc(
                len(self._fallback))
        if not order:
            return self._fallback
        if len(order) == 1:
            return self._single[order[0]]
        out: list[RequestFilter] = []
        for token in order:
            out.extend(raw[token])
        out.extend(self._fallback)
        return out

    # -- matching ------------------------------------------------------

    def match_first(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        sitekey: str | None = None,
    ) -> RequestFilter | None:
        """First matching filter, or ``None``."""
        for flt in self.candidates(url):
            if flt.matches(url, content_type, page_host, request_host,
                           sitekey=sitekey):
                return flt
        return None

    def match_all(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        sitekey: str | None = None,
    ) -> list[RequestFilter]:
        """Every matching filter (the survey records all activations)."""
        return [
            flt
            for flt in self.candidates(url)
            if flt.matches(url, content_type, page_host, request_host,
                           sitekey=sitekey)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CompiledFilterIndex({self.name!r}, "
                f"filters={self._count}, "
                f"keywords={len(self._keywords)}, "
                f"fallback={len(self._fallback)})")
