"""Versioned, CRC-checksummed serialization of compiled filter indexes.

A frozen :class:`~repro.filters.engine.EngineSnapshot` owns two compiled
indexes (blocking + exceptions).  Building them is the expensive part of
a snapshot — keyword extraction per filter, least-crowded bucket
assignment, Aho-Corasick table construction — and it is a pure function
of the source filter lists.  This module captures that work as one
artifact so it is paid **once per subscription epoch**:

* the serving daemon's hot-reload path stores the artifact beside the
  epoch's source snapshot (``SnapshotStore.save_blob``) and a daemon
  restart (or a parallel run over the same lists) loads it instead of
  re-deriving bucket assignments and automaton tables;
* fork workers inherit the deserialized packed arrays as read-only
  copy-on-write pages — there is no per-worker warmup left to do.

Wire format (all integers little-endian ``struct`` fields)::

    magic  b"RPROCIDX"
    u32    version (= ARTIFACT_VERSION)
    u32    header length
    bytes  header JSON: {"epoch", "fingerprint", "byteorder",
                         "indexes": [{name, filters, keywords,
                                      states, edges, fallback}, ...]}
    per index, length-prefixed blobs in fixed order:
           keywords ("\\n"-joined), assignment (i32 x filters),
           edge_offsets, edge_syms, edge_targets, fail, out,
           out_link, depth
    u32    CRC32 of every preceding byte

The artifact stores *bucket assignments*, not filter texts: attaching it
to freshly parsed lists walks the filters in subscription order and
places filter ``i`` into bucket ``assignment[i]`` (``-1`` = fallback).
Safety is layered — truncation and bit-flips fail the CRC; a version or
byte-order mismatch is rejected before any table is adopted; an epoch or
per-index filter-count mismatch (stale artifact against changed lists)
raises :class:`CompiledArtifactError`; and a deterministic sample of
bucket assignments is re-validated against each filter's own keyword
candidates, so an artifact from *different same-sized lists* cannot
silently misbucket.  Every rejection path leaves the caller free to fall
back to a from-scratch build.

>>> from repro.filters.filterlist import parse_filter_list
>>> from repro.filters.engine import EngineSnapshot
>>> lists = [parse_filter_list("||ads.example^\\n||track.example^",
...                            name="easylist")]
>>> snap = EngineSnapshot.build(lists)
>>> blob = serialize_artifact(snap, fingerprint="f" * 8)
>>> artifact = parse_artifact(blob)
>>> artifact.epoch, artifact.fingerprint
(2, 'ffffffff')
>>> rebuilt = artifact.build_snapshot(lists)
>>> rebuilt.blocking.keywords == snap.blocking.keywords
True
>>> parse_artifact(blob[:-1])           # doctest: +ELLIPSIS
Traceback (most recent call last):
    ...
repro.filters.compiled.artifact.CompiledArtifactError: ...
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from typing import Iterable, Sequence

from repro.filters.compiled.automaton import KeywordAutomaton
from repro.filters.compiled.index import CompiledFilterIndex
from repro.filters.engine import EngineSnapshot
from repro.filters.filterlist import FilterList
from repro.filters.parser import ElementFilter, RequestFilter
from repro.obs import OBS

__all__ = ["ARTIFACT_MAGIC", "ARTIFACT_VERSION", "CompiledArtifactError",
           "CompiledArtifact", "serialize_artifact", "parse_artifact"]

ARTIFACT_MAGIC = b"RPROCIDX"
ARTIFACT_VERSION = 1

#: How many bucketed filters per index get their assignment re-checked
#: against their own keyword candidates at attach time.
_VERIFY_SAMPLE = 32

_U32 = struct.Struct("<I")


class CompiledArtifactError(ValueError):
    """Artifact rejected: corrupt, wrong version, or stale vs the lists."""


def _count_artifact(event: str) -> None:
    if OBS.enabled:
        OBS.registry.counter("filters.index.automaton_artifact",
                             event=event).inc()


def _pack_blob(payload: bytes) -> bytes:
    return _U32.pack(len(payload)) + payload


def _pack_i32(values: Iterable[int]) -> bytes:
    arr = array("i", values)
    if sys.byteorder != "little":  # pragma: no cover - big-endian host
        arr.byteswap()
    return _pack_blob(arr.tobytes())


class _Reader:
    """Bounds-checked cursor over the artifact bytes."""

    def __init__(self, data: bytes, offset: int) -> None:
        self.data = data
        self.offset = offset

    def blob(self) -> bytes:
        if self.offset + 4 > len(self.data):
            raise CompiledArtifactError("artifact truncated (blob length)")
        (length,) = _U32.unpack_from(self.data, self.offset)
        self.offset += 4
        end = self.offset + length
        if end > len(self.data):
            raise CompiledArtifactError("artifact truncated (blob body)")
        payload = self.data[self.offset:end]
        self.offset = end
        return payload

    def i32(self, expect: int) -> array:
        payload = self.blob()
        if len(payload) != 4 * expect:
            raise CompiledArtifactError(
                f"array blob holds {len(payload) // 4} ints, "
                f"expected {expect}")
        arr = array("i")
        arr.frombytes(payload)
        if sys.byteorder != "little":  # pragma: no cover - big-endian host
            arr.byteswap()
        return arr


def serialize_artifact(snapshot: EngineSnapshot, *,
                       fingerprint: str) -> bytes:
    """Serialize a frozen snapshot's compiled indexes.

    ``fingerprint`` is the content fingerprint of the snapshot's source
    lists (``repro.state.snapshots.content_fingerprint``); together with
    the epoch it names the artifact's identity.  The snapshot must hold
    :class:`CompiledFilterIndex` instances (every frozen snapshot does).
    """
    indexes = [("blocking", snapshot.blocking),
               ("exceptions", snapshot.exceptions)]
    for name, index in indexes:
        if not isinstance(index, CompiledFilterIndex):
            raise CompiledArtifactError(
                f"snapshot's {name} index is not compiled "
                f"({type(index).__name__}); freeze the engine first")
    filter_orders = _request_filters_by_index(snapshot.lists)
    header_indexes = []
    sections: list[bytes] = []
    for name, index in indexes:
        auto = index.automaton
        ordered = filter_orders[name]
        if len(ordered) != len(index):
            raise CompiledArtifactError(
                f"{name} index holds {len(index)} filters but the "
                f"snapshot lists contribute {len(ordered)}")
        header_indexes.append({
            "name": name,
            "filters": len(ordered),
            "keywords": len(index.keywords),
            "states": auto.states,
            "edges": auto.edges,
            "fallback": len(index.fallback),
        })
        sections.append(_pack_blob(
            "\n".join(index.keywords).encode("ascii")))
        sections.append(_pack_i32(
            index.bucket_of(flt) for flt in ordered))
        sections.append(_pack_i32(auto.edge_offsets))
        sections.append(_pack_blob(auto.edge_syms))
        sections.append(_pack_i32(auto.edge_targets))
        sections.append(_pack_i32(auto.fail))
        sections.append(_pack_i32(auto.out))
        sections.append(_pack_i32(auto.out_link))
        sections.append(_pack_i32(auto.depth))
    header = json.dumps({
        "epoch": snapshot.epoch,
        "fingerprint": fingerprint,
        "byteorder": "little",
        "indexes": header_indexes,
    }, sort_keys=True).encode("utf-8")
    body = (ARTIFACT_MAGIC + _U32.pack(ARTIFACT_VERSION)
            + _pack_blob(header) + b"".join(sections))
    _count_artifact("saved")
    return body + _U32.pack(zlib.crc32(body))


def _request_filters_by_index(
        lists: Sequence[FilterList]) -> dict[str, list[RequestFilter]]:
    """Request filters per index, in subscription order.

    This is the canonical ordering both serialization and attach use:
    it must mirror ``AdblockEngine._add_filter``'s routing exactly so
    ``assignment[i]`` refers to the same filter on both sides.
    """
    orders: dict[str, list[RequestFilter]] = {"blocking": [],
                                              "exceptions": []}
    for filter_list in lists:
        for flt in filter_list.filters:
            if isinstance(flt, RequestFilter):
                key = "exceptions" if flt.is_exception else "blocking"
                orders[key].append(flt)
    return orders


class CompiledArtifact:
    """A parsed (CRC-verified) artifact, ready to attach to lists."""

    __slots__ = ("epoch", "fingerprint", "_sections")

    def __init__(self, *, epoch: int, fingerprint: str,
                 sections: dict[str, dict]) -> None:
        self.epoch = epoch
        self.fingerprint = fingerprint
        self._sections = sections

    @property
    def index_names(self) -> tuple[str, ...]:
        return tuple(self._sections)

    def stats(self) -> dict[str, dict[str, int]]:
        return {name: {"filters": len(section["assignment"]),
                       "keywords": len(section["keywords"]),
                       "states": len(section["fail"])}
                for name, section in self._sections.items()}

    def build_snapshot(self,
                       filter_lists: Iterable[FilterList]
                       ) -> EngineSnapshot:
        """Attach to freshly parsed lists, skipping index construction.

        Raises :class:`CompiledArtifactError` when the artifact is stale
        for these lists (epoch mismatch, per-index filter-count
        mismatch, or a sampled bucket assignment whose keyword is not
        among the filter's own candidates).
        """
        lists = tuple(filter_lists)
        epoch = sum(len(tuple(fl.filters)) for fl in lists)
        if epoch != self.epoch:
            _count_artifact("rejected")
            raise CompiledArtifactError(
                f"stale artifact: compiled at epoch {self.epoch}, "
                f"lists now total {epoch} filters")
        orders = _request_filters_by_index(lists)
        try:
            indexes = {
                name: self._attach_index(name, orders[name])
                for name in ("blocking", "exceptions")
            }
        except CompiledArtifactError:
            _count_artifact("rejected")
            raise
        element_hide: list[tuple[str, ElementFilter]] = []
        element_exceptions: list[tuple[str, ElementFilter]] = []
        list_of_filter: dict[int, str] = {}
        for filter_list in lists:
            for flt in filter_list.filters:
                list_of_filter[id(flt)] = filter_list.name
                if not isinstance(flt, RequestFilter):
                    target = (element_exceptions if flt.is_exception
                              else element_hide)
                    target.append((filter_list.name, flt))
        return EngineSnapshot(
            blocking=indexes["blocking"],
            exceptions=indexes["exceptions"],
            element_hide=element_hide,
            element_exceptions=element_exceptions,
            lists=lists,
            list_of_filter=list_of_filter,
            epoch=epoch,
        )

    def _attach_index(self, name: str,
                      ordered: list[RequestFilter]) -> CompiledFilterIndex:
        section = self._sections.get(name)
        if section is None:
            raise CompiledArtifactError(f"artifact lacks index {name!r}")
        assignment: array = section["assignment"]
        keywords: tuple[str, ...] = section["keywords"]
        if len(assignment) != len(ordered):
            raise CompiledArtifactError(
                f"stale artifact: {name} index assigns "
                f"{len(assignment)} filters, lists provide "
                f"{len(ordered)}")
        buckets: list[list[RequestFilter]] = [[] for _ in keywords]
        fallback: list[RequestFilter] = []
        for flt, kid in zip(ordered, assignment):
            if kid == -1:
                fallback.append(flt)
            elif 0 <= kid < len(buckets):
                buckets[kid].append(flt)
            else:
                raise CompiledArtifactError(
                    f"{name} assignment references bucket {kid} "
                    f"of {len(buckets)}")
        self._verify_sample(name, keywords, ordered, assignment)
        automaton = KeywordAutomaton.from_tables(
            keywords=[keyword.encode("ascii") for keyword in keywords],
            edge_offsets=section["edge_offsets"],
            edge_syms=section["edge_syms"],
            edge_targets=section["edge_targets"],
            fail=section["fail"],
            out=section["out"],
            out_link=section["out_link"],
            depth=section["depth"],
        )
        return CompiledFilterIndex.from_parts(
            name=name, keywords=keywords, buckets=buckets,
            fallback=fallback, automaton=automaton)

    @staticmethod
    def _verify_sample(name: str, keywords: tuple[str, ...],
                       ordered: list[RequestFilter],
                       assignment: array) -> None:
        """Spot-check assignments against the filters' own candidates.

        Deterministic sample (evenly strided over the bucketed filters):
        the assigned keyword must be one the filter itself could have
        chosen, which catches an artifact attached to different lists
        that merely happen to have the same shape.
        """
        bucketed = [pos for pos, kid in enumerate(assignment) if kid >= 0]
        if not bucketed:
            return
        stride = max(1, len(bucketed) // _VERIFY_SAMPLE)
        for pos in bucketed[::stride][:_VERIFY_SAMPLE]:
            flt = ordered[pos]
            keyword = keywords[assignment[pos]]
            if keyword not in flt.keyword_candidates:
                raise CompiledArtifactError(
                    f"stale artifact: {name} filter {flt.text!r} "
                    f"cannot live in bucket {keyword!r}")


def parse_artifact(data: bytes) -> CompiledArtifact:
    """Verify and decode artifact bytes (see the wire format above)."""
    if len(data) < len(ARTIFACT_MAGIC) + 12:
        raise CompiledArtifactError("artifact too short")
    if not data.startswith(ARTIFACT_MAGIC):
        raise CompiledArtifactError("bad artifact magic")
    (crc_stored,) = _U32.unpack_from(data, len(data) - 4)
    if zlib.crc32(data[:-4]) != crc_stored:
        _count_artifact("rejected")
        raise CompiledArtifactError("artifact CRC mismatch")
    (version,) = _U32.unpack_from(data, len(ARTIFACT_MAGIC))
    if version != ARTIFACT_VERSION:
        raise CompiledArtifactError(
            f"artifact version {version}, expected {ARTIFACT_VERSION}")
    reader = _Reader(data[:-4], len(ARTIFACT_MAGIC) + 4)
    try:
        header = json.loads(reader.blob().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CompiledArtifactError(f"bad artifact header: {exc}") from exc
    if header.get("byteorder") != "little":
        # Arrays are normalized to little-endian on write (and byte-
        # swapped back by _Reader.i32 on big-endian hosts), so any other
        # header value means a foreign or corrupted producer.
        raise CompiledArtifactError(
            f"artifact byte order {header.get('byteorder')!r}, "
            f"expected 'little'")
    sections: dict[str, dict] = {}
    for meta in header.get("indexes", ()):
        name = meta["name"]
        states = int(meta["states"])
        edges = int(meta["edges"])
        keyword_blob = reader.blob()
        keywords = (tuple(keyword_blob.decode("ascii").split("\n"))
                    if keyword_blob else ())
        if len(keywords) != int(meta["keywords"]):
            raise CompiledArtifactError(
                f"{name}: keyword count drifted from header")
        sections[name] = {
            "keywords": keywords,
            "assignment": reader.i32(int(meta["filters"])),
            "edge_offsets": reader.i32(states + 1),
            "edge_syms": reader.blob(),
            "edge_targets": reader.i32(edges),
            "fail": reader.i32(states),
            "out": reader.i32(states),
            "out_link": reader.i32(states),
            "depth": reader.i32(states),
        }
        if len(sections[name]["edge_syms"]) != edges:
            raise CompiledArtifactError(
                f"{name}: edge symbols drifted from header")
    if reader.offset != len(reader.data):
        raise CompiledArtifactError("trailing bytes after last section")
    if set(sections) != {"blocking", "exceptions"}:
        raise CompiledArtifactError(
            f"artifact indexes {sorted(sections)} != "
            f"['blocking', 'exceptions']")
    return CompiledArtifact(epoch=int(header["epoch"]),
                            fingerprint=str(header["fingerprint"]),
                            sections=sections)
