"""Whitelist hygiene audit — the Section 8 findings.

The paper reports that the live whitelist contains "redundant, obsolete,
and malformed filters": 35 duplicate filters and at least 8 malformed
exception filters that were erroneously truncated at a maximum length of
4,095 characters (introduced in Rev 326).  This module detects exactly
those defect classes so the audit can be re-run against any list.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.filters.filterlist import FilterList
from repro.filters.parser import InvalidFilter

__all__ = ["HygieneReport", "audit", "TRUNCATION_LENGTH"]

#: The erroneous maximum filter length of Rev 326 (Section 8).
TRUNCATION_LENGTH = 4095


@dataclass
class HygieneReport:
    """Defects found in one filter list."""

    duplicates: dict[str, int] = field(default_factory=dict)
    malformed: list[InvalidFilter] = field(default_factory=list)
    truncated: list[str] = field(default_factory=list)
    deprecated_options: Counter = field(default_factory=Counter)

    @property
    def duplicate_filter_count(self) -> int:
        """Number of *surplus* copies (paper counts 35 duplicate filters)."""
        return sum(n - 1 for n in self.duplicates.values())

    @property
    def malformed_count(self) -> int:
        return len(self.malformed)

    @property
    def truncated_count(self) -> int:
        return len(self.truncated)

    @property
    def clean(self) -> bool:
        return not (self.duplicates or self.malformed or self.truncated
                    or self.deprecated_options)


def audit(filter_list: FilterList) -> HygieneReport:
    """Audit ``filter_list`` for the Section 8 defect classes.

    * duplicates: byte-identical active filters appearing more than once;
    * malformed: entries that failed to parse;
    * truncated: filters whose text length is exactly
      :data:`TRUNCATION_LENGTH` — the signature of the Rev 326 bug
      (legitimate filters never land exactly on the limit);
    * deprecated options: ``background``/``xbl``/``ping``/``dtd`` usage.
    """
    report = HygieneReport()
    seen: Counter[str] = Counter(f.text for f in filter_list.filters)
    report.duplicates = {text: n for text, n in seen.items() if n > 1}
    for entry in filter_list.entries:
        if isinstance(entry, InvalidFilter):
            if entry.error != "blank line":
                report.malformed.append(entry)
        if len(entry.text) >= TRUNCATION_LENGTH:
            report.truncated.append(entry.text)
        options = getattr(entry, "options", None)
        if options is not None:
            for keyword in options.deprecated_used:
                report.deprecated_options[keyword] += 1
    return report
