"""Keyword-indexed request-filter store — the engine's fast path.

Real Adblock Plus does not test every filter against every request; it
buckets filters by a *keyword* (a literal substring every matching URL
must contain) and, per request, only evaluates the buckets whose keyword
occurs in the URL.  We reproduce that design: it keeps the top-5K survey
tractable (tens of thousands of filters x dozens of requests per page)
and it is itself benchmarked against the naive linear scan.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Iterable, Iterator

from repro.filters.options import ContentType
from repro.filters.parser import RequestFilter

__all__ = ["FilterIndex"]

_URL_KEYWORD_RE = re.compile(r"[a-z0-9%]{3,}")


class FilterIndex:
    """A keyword-bucketed collection of :class:`RequestFilter`.

    Filters whose pattern yields no usable keyword (raw regexes, very
    short patterns, pattern-less sitekey filters) live in an always-probed
    fallback bucket.
    """

    def __init__(self, filters: Iterable[RequestFilter] = ()) -> None:
        self._by_keyword: dict[str, list[RequestFilter]] = defaultdict(list)
        self._fallback: list[RequestFilter] = []
        self._count = 0
        for flt in filters:
            self.add(flt)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[RequestFilter]:
        for bucket in self._by_keyword.values():
            yield from bucket
        yield from self._fallback

    def add(self, flt: RequestFilter) -> None:
        keyword = self._choose_keyword(flt)
        if keyword:
            self._by_keyword[keyword].append(flt)
        else:
            self._fallback.append(flt)
        self._count += 1

    def _choose_keyword(self, flt: RequestFilter) -> str:
        """Pick the least-crowded candidate keyword (real-ABP heuristic).

        Thousands of filters can share a common token (an ad server's
        hostname); bucketing by the rarest token each pattern offers
        keeps every bucket small, which is the whole point of the index.
        """
        from repro.filters.pattern import keyword_candidates

        if flt.pattern is None:
            return ""
        candidates = keyword_candidates(flt.pattern_text)
        if not candidates:
            return ""
        return min(candidates,
                   key=lambda w: (len(self._by_keyword.get(w, ())), -len(w)))

    def candidates(self, url: str) -> Iterator[RequestFilter]:
        """Filters whose keyword occurs in ``url`` plus the fallback set.

        Every filter that *matches* the URL is guaranteed to be yielded
        (keyword extraction only picks substrings required by the
        pattern); non-matching filters may be yielded too — callers must
        still run the full match.
        """
        seen_buckets: set[str] = set()
        for word in _URL_KEYWORD_RE.findall(url.lower()):
            # Keyword extraction only emits separator-delimited tokens, so
            # every matching filter's keyword appears as a full token of
            # the URL; tokenising the URL the same way and probing each
            # token covers all candidate buckets.
            if word in self._by_keyword and word not in seen_buckets:
                seen_buckets.add(word)
                yield from self._by_keyword[word]
        yield from self._fallback

    def match_first(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        sitekey: str | None = None,
    ) -> RequestFilter | None:
        """First matching filter, or ``None``."""
        for flt in self.candidates(url):
            if flt.matches(url, content_type, page_host, request_host,
                           sitekey=sitekey):
                return flt
        return None

    def match_all(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        sitekey: str | None = None,
    ) -> list[RequestFilter]:
        """Every matching filter (the survey records all activations)."""
        return [
            flt
            for flt in self.candidates(url)
            if flt.matches(url, content_type, page_host, request_host,
                           sitekey=sitekey)
        ]
