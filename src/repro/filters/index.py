"""Keyword-indexed request-filter store — the engine's fast path.

Real Adblock Plus does not test every filter against every request; it
buckets filters by a *keyword* (a literal substring every matching URL
must contain) and, per request, only evaluates the buckets whose keyword
occurs in the URL.  We reproduce that design: it keeps the Section 5
survey tractable at any scale (tens of thousands of filters x dozens of
requests per page) and it is itself benchmarked against the naive
linear scan (``benchmarks/bench_ablation_engine.py``).

Two semantics downstream code relies on, documented precisely because
the engine's correctness depends on them:

**Fallback-bucket probing.**  Not every filter can be keyword-bucketed:
raw ``/regex/`` patterns, patterns whose only literals are shorter than
three characters or wildcard-adjacent, and pattern-less pure-sitekey
exceptions offer no token guaranteed to appear in every matching URL.
Those filters land in a *fallback* bucket that :meth:`FilterIndex.candidates`
yields on **every** probe, after all keyword buckets.  The guarantee the
engine's verdicts rest on: every filter that matches a URL is yielded
for that URL — keyword-bucketed ones because their keyword must occur
as a token of the URL, fallback ones unconditionally.  The index never
filters *out* a match; it only skips buckets that provably cannot match.

>>> from repro.filters.parser import parse_filter
>>> index = FilterIndex([parse_filter("||adzerk.net^"),
...                      parse_filter("/banner[0-9]+/")])
>>> [f.text for f in index.candidates("http://example.com/page")]
['/banner[0-9]+/']
>>> [f.text for f in index.candidates("http://adzerk.net/x")]
['||adzerk.net^', '/banner[0-9]+/']

**Keyword choice.**  :meth:`FilterIndex._choose_keyword` picks, among a
pattern's candidate keywords, the one whose bucket is currently
smallest, breaking ties toward the *longest* keyword (rarer in URLs, so
probed less often).  Insertion order therefore shapes the buckets —
see the method docstring for the exact tie-breaking doctest.

``FilterIndex`` is the *build-time* structure; freezing an engine
compiles it into the read-only
:class:`~repro.filters.compiled.index.CompiledFilterIndex` (packed
keyword automaton, prebuilt candidate tuples), which preserves both
semantics above byte-for-byte — the differential-fuzz suite holds the
two implementations equal.

When observability is enabled (:mod:`repro.obs`), every probe records
bucket hit/miss counts and fallback scan sizes under
``filters.index.*``; with the default null registry the only cost is
one flag check per probe.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Iterable, Iterator

from repro.filters.options import ContentType
from repro.filters.parser import RequestFilter
from repro.obs import OBS

__all__ = ["FilterIndex"]

_URL_KEYWORD_RE = re.compile(r"[a-z0-9%]{3,}")


def _url_tokens(url: str) -> tuple[str, ...]:
    """The URL's distinct keyword tokens, first-occurrence order.

    One probe tokenises the URL exactly once; the dedup that
    :meth:`FilterIndex.candidates` used to do per probe with a seen-set
    is folded into the token tuple itself.  This used to be an
    ``lru_cache``-backed process cache; the cache (and its per-worker
    re-warming after ``fork``) is gone now that frozen engines probe
    through :class:`~repro.filters.compiled.index.CompiledFilterIndex`,
    which tokenises with C-level byte primitives and needs no memo.
    The uncached path here serves the mutable build-time index (tests,
    unfrozen engines) and the compiled index's non-ASCII detour.
    """
    return tuple(dict.fromkeys(_URL_KEYWORD_RE.findall(url.lower())))


class FilterIndex:
    """A keyword-bucketed collection of :class:`RequestFilter`.

    Filters whose pattern yields no usable keyword (raw regexes, very
    short patterns, pattern-less sitekey filters) live in an always-probed
    fallback bucket.
    """

    def __init__(self, filters: Iterable[RequestFilter] = ()) -> None:
        self._by_keyword: dict[str, list[RequestFilter]] = defaultdict(list)
        self._fallback: list[RequestFilter] = []
        self._count = 0
        for flt in filters:
            self.add(flt)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[RequestFilter]:
        for bucket in self._by_keyword.values():
            yield from bucket
        yield from self._fallback

    def add(self, flt: RequestFilter) -> None:
        keyword = self._choose_keyword(flt)
        if keyword:
            self._by_keyword[keyword].append(flt)
        else:
            self._fallback.append(flt)
        self._count += 1
        if OBS.enabled:
            OBS.registry.counter(
                "filters.index.filters",
                bucket="keyword" if keyword else "fallback").inc()

    def _choose_keyword(self, flt: RequestFilter) -> str:
        """Pick the least-crowded candidate keyword (real-ABP heuristic).

        Thousands of filters can share a common token (an ad server's
        hostname); bucketing by the rarest token each pattern offers
        keeps every bucket small, which is the whole point of the index.

        The exact rule: among the pattern's candidate keywords (see
        :func:`repro.filters.pattern.keyword_candidates`), minimise
        ``(current bucket size, -len(keyword))`` — i.e. prefer the
        emptiest bucket *at insertion time*, and between equally empty
        buckets prefer the longest keyword, which occurs in fewer URLs
        and is therefore probed less often.  Filters with no candidates
        (raw regexes, pattern-less sitekey exceptions) get ``""``,
        routing them to the fallback bucket.

        >>> from repro.filters.parser import parse_filter
        >>> index = FilterIndex()
        >>> flt = parse_filter("||ads.examplecdn.org/banner")
        >>> index._choose_keyword(flt)   # all buckets empty: longest wins
        'examplecdn'
        >>> index.add(parse_filter("||static.examplecdn.org/px"))
        >>> index._choose_keyword(flt)   # that bucket is now crowded
        'ads'
        >>> index._choose_keyword(parse_filter("/^ad[0-9]/"))
        ''
        """
        candidates = flt.keyword_candidates
        if not candidates:
            return ""
        return min(candidates,
                   key=lambda w: (len(self._by_keyword.get(w, ())), -len(w)))

    def candidates(self, url: str) -> Iterator[RequestFilter]:
        """Filters whose keyword occurs in ``url`` plus the fallback set.

        Every filter that *matches* the URL is guaranteed to be yielded
        (keyword extraction only picks substrings required by the
        pattern); non-matching filters may be yielded too — callers must
        still run the full match.  The fallback bucket is yielded last,
        unconditionally (see the module docstring).
        """
        if not OBS.enabled:
            # The bare fast path of the *mutable* index (frozen engines
            # probe the compiled index instead).  Keyword extraction
            # only emits separator-delimited tokens, so every matching
            # filter's keyword appears as a full token of the URL;
            # probing each distinct token covers all candidate buckets.
            by_keyword = self._by_keyword
            for word in _url_tokens(url):
                bucket = by_keyword.get(word)
                if bucket is not None:
                    yield from bucket
            yield from self._fallback
            return
        yield from self._instrumented_candidates(url)

    def _instrumented_candidates(self, url: str) -> Iterator[RequestFilter]:
        """:meth:`candidates` with ``filters.index.*`` accounting.

        Counts are recorded eagerly (before any bucket is yielded), so a
        caller that stops at the first match still leaves an accurate
        probe record behind.  Tokenisation goes through the same
        :func:`_url_tokens` as the fast path — enabled and disabled
        observability probe *identical* bucket sequences — so
        ``bucket_hits`` and ``bucket_misses`` both count **distinct**
        URL tokens (hits: present in the index; misses: absent).
        """
        reg = OBS.registry
        hits = 0
        misses = 0
        probe_order: list[str] = []
        for word in _url_tokens(url):
            if word in self._by_keyword:
                probe_order.append(word)
                hits += 1
            else:
                misses += 1
        reg.counter("filters.index.probes").inc()
        reg.counter("filters.index.bucket_hits").inc(hits)
        reg.counter("filters.index.bucket_misses").inc(misses)
        reg.counter("filters.index.candidates_yielded").inc(
            sum(len(self._by_keyword[w]) for w in probe_order)
            + len(self._fallback))
        if self._fallback:
            reg.counter("filters.index.fallback_scanned").inc(
                len(self._fallback))
        for word in probe_order:
            yield from self._by_keyword[word]
        yield from self._fallback

    def match_first(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        sitekey: str | None = None,
    ) -> RequestFilter | None:
        """First matching filter, or ``None``."""
        for flt in self.candidates(url):
            if flt.matches(url, content_type, page_host, request_host,
                           sitekey=sitekey):
                return flt
        return None

    def match_all(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        sitekey: str | None = None,
    ) -> list[RequestFilter]:
        """Every matching filter (the survey records all activations)."""
        return [
            flt
            for flt in self.candidates(url)
            if flt.matches(url, content_type, page_host, request_host,
                           sitekey=sitekey)
        ]
