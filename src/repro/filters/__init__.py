"""Adblock Plus filter engine: parsing, matching, classification.

This subpackage is a from-scratch implementation of the filter language
and blocking semantics described in Section 2 and Appendix A of the
paper.  The most useful entry points:

>>> from repro.filters import (parse_filter, AdblockEngine, ContentType,
...                            parse_filter_list)
>>> flt = parse_filter("||adzerk.net^$third-party")
>>> flt.matches("http://static.adzerk.net/ads.html",
...             ContentType.SUBDOCUMENT, "reddit.com", "static.adzerk.net")
True
"""

from repro.filters.classify import (
    ScopeClass,
    ScopeReport,
    classify_filter,
    classify_whitelist,
    explicit_domains,
)
from repro.filters.engine import (
    Activation,
    AdblockEngine,
    DocumentPrivileges,
    EngineSnapshot,
    FrozenEngineError,
    RequestDecision,
    Verdict,
)
from repro.filters.compiled import (
    CompiledArtifact,
    CompiledArtifactError,
    CompiledFilterIndex,
    KeywordAutomaton,
    parse_artifact,
    serialize_artifact,
)
from repro.filters.filterlist import FilterList, parse_filter_list
from repro.filters.hygiene import HygieneReport, audit
from repro.filters.index import FilterIndex
from repro.filters.options import (
    ContentType,
    FilterOptions,
    OptionError,
    TriState,
    parse_options,
)
from repro.filters.parser import (
    Comment,
    ElementFilter,
    Filter,
    InvalidFilter,
    ParseError,
    RequestFilter,
    parse_filter,
)
from repro.filters.pattern import CompiledPattern, PatternError, compile_pattern
from repro.filters.selectors import SelectorError, SelectorList, parse_selector

__all__ = [
    "Activation",
    "AdblockEngine",
    "Comment",
    "CompiledArtifact",
    "CompiledArtifactError",
    "CompiledFilterIndex",
    "CompiledPattern",
    "ContentType",
    "DocumentPrivileges",
    "ElementFilter",
    "EngineSnapshot",
    "FrozenEngineError",
    "Filter",
    "FilterIndex",
    "KeywordAutomaton",
    "FilterList",
    "FilterOptions",
    "HygieneReport",
    "InvalidFilter",
    "OptionError",
    "ParseError",
    "PatternError",
    "RequestDecision",
    "RequestFilter",
    "ScopeClass",
    "ScopeReport",
    "SelectorError",
    "SelectorList",
    "TriState",
    "Verdict",
    "audit",
    "classify_filter",
    "classify_whitelist",
    "compile_pattern",
    "explicit_domains",
    "parse_artifact",
    "parse_filter",
    "parse_filter_list",
    "parse_options",
    "parse_selector",
    "serialize_artifact",
]
