"""Request-pattern compilation: the ``<request-match>`` production.

A request pattern is a simplified regular expression over URLs with four
special constructs (Appendix A.1):

* ``*``    — wildcard, matches any run of characters (implicit at both
  ends of every pattern unless anchored);
* ``|``    — anchor; at the start it pins the match to the beginning of
  the URL, at the end to the end of the URL;
* ``||``   — extended anchor; matches the start of the hostname at a
  domain-label boundary, admitting any scheme and any subdomain
  (``||example.com/ad`` matches ``https://sub.example.com/ad``);
* ``^``    — separator placeholder; matches any single character that is
  not a letter, digit, or one of ``_ - . %``, and *also* matches the end
  of the URL (so ``||adzerk.net^`` matches a bare ``http://adzerk.net``).

Patterns wrapped in ``/.../`` are raw regular expressions.  Matching is
a single ``re.search``.  ``match-case`` switches the compilation to
case-sensitive (URLs are matched case-insensitively by default, as in
ABP).

Compilation is a hot path twice over: the survey parses EasyList once
per engine configuration (thousands of lines each time), and the
keyword index consults :func:`keyword_candidates` per filter.  Three
caches keep it cheap:

* :func:`compile_pattern` is memoised per ``(source, match_case)``, so
  re-parsing the same list reuses the compiled objects outright;
* the translated Python regex inside a :class:`CompiledPattern` is
  compiled *lazily*, on first match — a filter that never reaches the
  matcher (most of EasyList, for any one page) never pays
  ``re.compile``.  Raw ``/.../`` patterns still compile eagerly, because
  :class:`PatternError` for a malformed regex must surface at parse
  time (the hygiene audit counts those);
* :func:`keyword_candidates` is memoised per pattern text.

All three are registered process caches
(:mod:`repro.parallel.caches`): forked survey workers start them
empty.
"""

from __future__ import annotations

import re
from functools import lru_cache

from repro.parallel.caches import register_process_cache

__all__ = ["CompiledPattern", "compile_pattern", "PatternError",
           "extract_keyword", "keyword_candidates", "SEPARATOR_REGEX"]


class PatternError(ValueError):
    """Raised when a pattern cannot be compiled."""


#: What ``^`` expands to: any separator character, or the end of the URL.
SEPARATOR_REGEX = r"(?:[^\w\-.%]|$)"


class CompiledPattern:
    """A request pattern compiled (lazily) to a regex.

    ``source`` is the original pattern text; ``is_regex`` records whether
    it was a raw ``/.../`` pattern; ``anchored_hostname`` is set for the
    common ``||host`` shape, letting the keyword index fast-path it.

    The Python regex behind :attr:`regex` is built on first access and
    cached on the instance — raw regex patterns arrive pre-compiled
    (their syntax errors must surface at parse time), translated
    patterns defer ``re.compile`` until the filter is first matched.
    Instances are value-equal on ``(source, match_case)`` and treated as
    immutable; :func:`compile_pattern` shares them freely.
    """

    __slots__ = ("source", "is_regex", "match_case", "anchored_hostname",
                 "_regex_source", "_flags", "_regex")

    def __init__(self, *, source: str, regex_source: str, flags: int,
                 is_regex: bool, match_case: bool,
                 anchored_hostname: str | None = None,
                 regex: re.Pattern[str] | None = None) -> None:
        self.source = source
        self.is_regex = is_regex
        self.match_case = match_case
        self.anchored_hostname = anchored_hostname
        self._regex_source = regex_source
        self._flags = flags
        self._regex = regex

    @property
    def regex(self) -> re.Pattern[str]:
        """The compiled regex, built on first use."""
        regex = self._regex
        if regex is None:
            try:
                regex = re.compile(self._regex_source, self._flags)
            except re.error as exc:  # pragma: no cover - translation is safe
                raise PatternError(
                    f"failed to compile {self.source!r}: {exc}") from exc
            self._regex = regex
        return regex

    def matches(self, url: str) -> bool:
        """True when the pattern matches anywhere in ``url``."""
        return self.regex.search(url) is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledPattern):
            return NotImplemented
        return (self.source, self.match_case) == (other.source,
                                                  other.match_case)

    def __hash__(self) -> int:
        return hash((self.source, self.match_case))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CompiledPattern({self.source!r}, "
                f"match_case={self.match_case})")


@register_process_cache
@lru_cache(maxsize=16384)
def compile_pattern(source: str, match_case: bool = False) -> CompiledPattern:
    """Compile a filter pattern into a :class:`CompiledPattern`.

    Raises :class:`PatternError` for raw regex patterns that fail to
    compile.  Memoised per ``(source, match_case)``: the survey builds
    EasyList once per engine configuration, and every duplicate pattern
    across builds shares one compiled object.
    """
    flags = 0 if match_case else re.IGNORECASE

    if len(source) >= 2 and source.startswith("/") and source.endswith("/"):
        inner = source[1:-1]
        try:
            regex = re.compile(inner, flags)
        except re.error as exc:
            raise PatternError(f"bad regex pattern {source!r}: {exc}") from exc
        return CompiledPattern(source=source, regex_source=inner,
                               flags=flags, regex=regex, is_regex=True,
                               match_case=match_case)

    text = source
    parts: list[str] = []
    anchored_hostname: str | None = None

    if text.startswith("||"):
        text = text[2:]
        # Scheme, then any chain of subdomain labels, then the pattern.
        parts.append(r"^[a-z][a-z0-9+.\-]*://(?:[^/?#]*\.)?")
        host_match = re.match(r"^([a-z0-9\-]+(?:\.[a-z0-9\-]+)*)", text,
                              re.IGNORECASE)
        if host_match:
            anchored_hostname = host_match.group(1).lower()
    elif text.startswith("|"):
        text = text[1:]
        parts.append("^")

    end_anchor = False
    if text.endswith("|") and not text.endswith("\\|"):
        end_anchor = True
        text = text[:-1]

    parts.append(_translate_body(text))
    if end_anchor:
        parts.append("$")

    return CompiledPattern(source=source, regex_source="".join(parts),
                           flags=flags, is_regex=False,
                           match_case=match_case,
                           anchored_hostname=anchored_hostname)


def _translate_body(text: str) -> str:
    """Translate the pattern body: ``*`` -> ``.*``, ``^`` -> separator."""
    out: list[str] = []
    run: list[str] = []

    def flush() -> None:
        if run:
            out.append(re.escape("".join(run)))
            run.clear()

    for ch in text:
        if ch == "*":
            flush()
            # Collapse adjacent wildcards; ``.*.*`` is valid but slow.
            if not out or out[-1] != ".*":
                out.append(".*")
        elif ch == "^":
            flush()
            out.append(SEPARATOR_REGEX)
        else:
            run.append(ch)
    flush()
    return "".join(out)


# A keyword must be a full token of every matching URL, so the run has to
# be delimited in the pattern by non-token characters (and not touch a
# wildcard, whose expansion could extend the token).  This mirrors ABP's
# own candidate regex.
_KEYWORD_RE = re.compile(
    r"(?:^\|{1,2}|[^a-z0-9%*])([a-z0-9%]{3,})(?=[^a-z0-9%*]|$)",
    re.IGNORECASE,
)
_COMMON_KEYWORDS = frozenset({"http", "https", "www", "com"})


@register_process_cache
@lru_cache(maxsize=65536)
def keyword_candidates(source: str) -> tuple[str, ...]:
    """All safe index keywords for a pattern (real-ABP style).

    A keyword is a literal token guaranteed to appear, separator-
    delimited, in every URL the pattern matches; the engine buckets
    filters by one of them so each request only tests a handful of
    candidates.  Returns an empty tuple when no safe keyword exists
    (regex patterns, very short or wildcard-adjacent literals) — such
    filters go into the always-checked bucket.

    Memoised per pattern text (and therefore effectively computed once
    per filter): :meth:`repro.filters.index.FilterIndex.add` consults
    the candidates on every insertion, and the survey inserts the same
    lists into multiple engine configurations.
    """
    if len(source) >= 2 and source.startswith("/") and source.endswith("/"):
        return ()
    candidates = []
    for match in _KEYWORD_RE.finditer(source):
        word = match.group(1).lower()
        if word not in _COMMON_KEYWORDS:
            candidates.append(word)
        # A trailing end-of-pattern token is only safe when the pattern is
        # end-anchored; _KEYWORD_RE's $ alternative admits it, so filter
        # out unanchored trailing tokens here.
    if candidates and not source.endswith(("|", "^")):
        last = candidates[-1]
        if source.lower().endswith(last):
            candidates.pop()
    return tuple(candidates)


def extract_keyword(source: str) -> str:
    """The default index keyword: the longest safe candidate (or "")."""
    candidates = keyword_candidates(source)
    if not candidates:
        return ""
    return max(candidates, key=len)
