"""CSS selector subset used by element-hiding filters.

Element filters (``##`` and ``#@#``) identify page elements with CSS
selectors (Section 2.1.2).  The subset implemented here covers what occurs
in EasyList-style lists and in the paper's examples:

* type selectors (``div``), universal (``*``);
* id selectors (``#siteTable_organic``);
* class selectors (``.ButtonAd``);
* attribute selectors (``[href]``, ``[id="x"]``, ``[src^="http"]``,
  ``[class*="ad"]``, ``[href$=".gif"]``);
* compound selectors combining the above (``div.ad[data-ad]``);
* comma-separated selector lists;
* descendant (whitespace) and child (``>``) combinators.

Matching is performed against :class:`repro.web.dom.Element` trees (any
object with ``tag``, ``attributes``, ``classes``, ``parent`` works).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Protocol

__all__ = [
    "SelectorError",
    "SimpleSelector",
    "CompoundSelector",
    "ComplexSelector",
    "SelectorList",
    "parse_selector",
]


class SelectorError(ValueError):
    """Raised when a selector cannot be parsed."""


class ElementLike(Protocol):  # pragma: no cover - structural typing only
    tag: str
    parent: "ElementLike | None"

    @property
    def classes(self) -> frozenset[str]: ...

    def get(self, name: str, default: str | None = None) -> str | None: ...


@dataclass(frozen=True, slots=True)
class SimpleSelector:
    """One simple selector: tag/universal, ``#id``, ``.class`` or ``[attr]``.

    Exactly one of the kind fields is used, recorded in ``kind``:
    ``tag`` / ``id`` / ``class`` / ``attr``.  For attribute selectors,
    ``operator`` is one of ``""`` (presence), ``=``, ``^=``, ``$=``,
    ``*=``, ``~=``.
    """

    kind: str
    value: str
    operator: str = ""
    attr_value: str = ""

    def matches(self, element: ElementLike) -> bool:
        if self.kind == "tag":
            return self.value == "*" or element.tag.lower() == self.value
        if self.kind == "id":
            return element.get("id") == self.value
        if self.kind == "class":
            return self.value in element.classes
        # attribute selector
        actual = element.get(self.value)
        if actual is None:
            return False
        if not self.operator:
            return True
        expected = self.attr_value
        if self.operator == "=":
            return actual == expected
        if self.operator == "^=":
            return bool(expected) and actual.startswith(expected)
        if self.operator == "$=":
            return bool(expected) and actual.endswith(expected)
        if self.operator == "*=":
            return bool(expected) and expected in actual
        if self.operator == "~=":
            return expected in actual.split()
        raise SelectorError(f"unknown attribute operator {self.operator!r}")


@dataclass(frozen=True, slots=True)
class CompoundSelector:
    """A sequence of simple selectors that must all match one element."""

    parts: tuple[SimpleSelector, ...]

    def matches(self, element: ElementLike) -> bool:
        return all(part.matches(element) for part in self.parts)


@dataclass(frozen=True, slots=True)
class ComplexSelector:
    """Compound selectors joined by combinators, right-to-left matched.

    ``combinators[i]`` joins ``compounds[i]`` to ``compounds[i+1]`` and is
    either ``" "`` (descendant) or ``">"`` (child).
    """

    compounds: tuple[CompoundSelector, ...]
    combinators: tuple[str, ...]

    def matches(self, element: ElementLike) -> bool:
        if not self.compounds[-1].matches(element):
            return False
        return self._match_ancestors(element, len(self.compounds) - 2)

    def _match_ancestors(self, element: ElementLike, index: int) -> bool:
        if index < 0:
            return True
        combinator = self.combinators[index]
        target = self.compounds[index]
        parent = element.parent
        if combinator == ">":
            if parent is None or not target.matches(parent):
                return False
            return self._match_ancestors(parent, index - 1)
        # descendant: try every ancestor
        while parent is not None:
            if target.matches(parent) and self._match_ancestors(parent, index - 1):
                return True
            parent = parent.parent
        return False


@dataclass(frozen=True, slots=True)
class SelectorList:
    """A comma-separated list of selectors; matches if any member does."""

    selectors: tuple[ComplexSelector, ...]
    source: str = field(default="", compare=False)

    def matches(self, element: ElementLike) -> bool:
        return any(sel.matches(element) for sel in self.selectors)

    def select(self, elements: Iterable[ElementLike]) -> list[ElementLike]:
        """Filter an element iterable down to the matching members."""
        return [el for el in elements if self.matches(el)]


_IDENT = r"[A-Za-z_\-][\w\-]*"
_TOKEN_RE = re.compile(
    r"""
    (?P<tag>\*|""" + _IDENT + r""")
    | \#(?P<id>[\w\-]+)
    | \.(?P<cls>[\w\-]+)
    | \[(?P<attr>[\w\-]+)
        (?:(?P<op>[~^$*]?=)
           (?P<quote>["']?)(?P<val>[^\]"']*)(?P=quote))?\]
    """,
    re.VERBOSE,
)


def parse_selector(text: str) -> SelectorList:
    """Parse a selector list; raises :class:`SelectorError` on bad input."""
    if not text or text.isspace():
        raise SelectorError("empty selector")
    selectors = tuple(
        _parse_complex(chunk.strip())
        for chunk in text.split(",")
        if chunk.strip() or _raise_empty(text)
    )
    return SelectorList(selectors=selectors, source=text)


def _raise_empty(text: str) -> bool:
    raise SelectorError(f"empty selector in list {text!r}")


def _parse_complex(text: str) -> ComplexSelector:
    # Normalise child combinator spacing, then split on whitespace.
    text = re.sub(r"\s*>\s*", " > ", text).strip()
    tokens = text.split()
    compounds: list[CompoundSelector] = []
    combinators: list[str] = []
    expect_compound = True
    for token in tokens:
        if token == ">":
            if expect_compound or not compounds:
                raise SelectorError(f"misplaced '>' in {text!r}")
            combinators.append(">")
            expect_compound = True
            continue
        if not expect_compound:
            combinators.append(" ")
        compounds.append(_parse_compound(token))
        expect_compound = False
    if expect_compound:
        raise SelectorError(f"dangling combinator in {text!r}")
    return ComplexSelector(compounds=tuple(compounds),
                           combinators=tuple(combinators))


def _parse_compound(text: str) -> CompoundSelector:
    parts: list[SimpleSelector] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SelectorError(f"cannot parse selector at {text[pos:]!r}")
        if match.group("tag") is not None:
            if parts:
                raise SelectorError(
                    f"type selector must come first in {text!r}")
            parts.append(SimpleSelector("tag", match.group("tag").lower()))
        elif match.group("id") is not None:
            parts.append(SimpleSelector("id", match.group("id")))
        elif match.group("cls") is not None:
            parts.append(SimpleSelector("class", match.group("cls")))
        else:
            parts.append(SimpleSelector(
                "attr",
                match.group("attr"),
                operator=match.group("op") or "",
                attr_value=match.group("val") or "",
            ))
        pos = match.end()
    if not parts:
        raise SelectorError(f"empty compound selector in {text!r}")
    return CompoundSelector(parts=tuple(parts))
