"""The Adblock Plus decision engine: blacklists + the Acceptable Ads whitelist.

This module reproduces the content-blocking semantics the paper measures:

* a *blocking* filter match cancels a web request — unless *any* matching
  exception filter overrides it ("regardless of any blocking filter
  matches", Section 2.1.1);
* a ``$document`` exception matching the page's own URL (or validated via
  a sitekey signature, Section 4.2.3) disables **all** blocking on that
  page — this is the sitekey bypass of Figure 5;
* an ``$elemhide`` exception matching the page URL disables all
  element-hiding filters on that page (the ``@@||ask.com^$elemhide``
  A-filters of Section 7);
* element-hiding filters (``##``) hide DOM elements unless an element
  exception (``#@#``) with a matching selector applies on that domain.

Every filter consultation can be *recorded*: the survey of Section 5 runs
an instrumented engine that logs each activation (filter, source list,
URL, page) — including "needless" whitelist activations where the
exception fired but nothing would have been blocked, a phenomenon the
paper calls out explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.filters.filterlist import FilterList
from repro.filters.index import FilterIndex
from repro.filters.options import ContentType
from repro.filters.parser import ElementFilter, RequestFilter
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.web.dom import Element

__all__ = [
    "Verdict",
    "Activation",
    "RequestDecision",
    "DocumentPrivileges",
    "EngineSnapshot",
    "FrozenEngineError",
    "AdblockEngine",
]


class Verdict(enum.Enum):
    """Outcome of a request consultation."""

    BLOCK = "block"
    ALLOW = "allow"          # an exception filter overrode blocking
    NO_MATCH = "no_match"    # nothing matched; request proceeds


@dataclass(frozen=True, slots=True)
class Activation:
    """One recorded filter activation."""

    filter_text: str
    list_name: str
    page_host: str
    target: str              # request URL, or selector for element filters
    kind: str                # "request" | "element" | "document"
    is_exception: bool
    needless: bool = False   # exception fired with no blocking counterpart


@dataclass(frozen=True, slots=True)
class RequestDecision:
    """Full result of consulting the engine about one request."""

    verdict: Verdict
    blocking: tuple[RequestFilter, ...] = ()
    exceptions: tuple[RequestFilter, ...] = ()

    @property
    def blocked(self) -> bool:
        return self.verdict is Verdict.BLOCK


@dataclass(frozen=True, slots=True)
class DocumentPrivileges:
    """Page-level privileges granted by ``$document``/``$elemhide``.

    ``allow_all`` short-circuits every blocking decision on the page;
    ``disable_elemhide`` turns off element hiding.  ``granted_by`` names
    the filters responsible (they count as activations).
    """

    allow_all: bool = False
    disable_elemhide: bool = False
    granted_by: tuple[RequestFilter, ...] = ()


class FrozenEngineError(RuntimeError):
    """Raised when a frozen engine (or a snapshot session) is mutated."""


class EngineSnapshot:
    """The frozen, shareable compiled form of an engine's subscriptions.

    A snapshot owns everything that is expensive to build and safe to
    share: the keyword-bucketed request-filter indices, the element
    filter lists, the filter→list-name map, the subscription epoch, and
    the long-lived page-privilege memo.  It is immutable by contract —
    no method on it (or on any session over it) adds or removes filters
    — which is what makes one snapshot safely shareable between every
    request thread of a serving daemon, and buildable off-thread while
    an old snapshot keeps serving (:mod:`repro.serve`).

    Sessions are the thin mutable layer: :meth:`session` returns an
    :class:`AdblockEngine` that aliases the compiled structures but has
    its own ``recording`` flag and activation log.

    >>> from repro.filters.filterlist import parse_filter_list
    >>> snap = EngineSnapshot.build([parse_filter_list("||ads.example^",
    ...                                                name="demo")])
    >>> session = snap.session()
    >>> session.check_request("http://ads.example/x", ContentType.SCRIPT,
    ...                       "example.com", "ads.example").blocked
    True
    >>> session.subscribe(parse_filter_list("||more.example^", name="m"))
    Traceback (most recent call last):
        ...
    repro.filters.engine.FrozenEngineError: engine is frozen: build a new EngineSnapshot instead of subscribing
    """

    __slots__ = ("blocking", "exceptions", "element_hide",
                 "element_exceptions", "lists", "epoch",
                 "_list_of_filter", "_privilege_cache")

    def __init__(self, *, blocking, exceptions,
                 element_hide: list[tuple[str, ElementFilter]],
                 element_exceptions: list[tuple[str, ElementFilter]],
                 lists: tuple[FilterList, ...],
                 list_of_filter: dict[int, str],
                 epoch: int) -> None:
        self.blocking = blocking
        self.exceptions = exceptions
        self.element_hide = element_hide
        self.element_exceptions = element_exceptions
        self.lists = lists
        self.epoch = epoch
        self._list_of_filter = list_of_filter
        # Shared across every session: privilege answers are a pure
        # function of (epoch, page_url, page_host, sitekey), so one
        # session's miss is every session's hit.
        self._privilege_cache: dict[
            tuple, tuple[bool, bool, tuple[RequestFilter, ...]]] = {}

    @classmethod
    def build(cls, filter_lists: Iterable[FilterList]) -> "EngineSnapshot":
        """Compile ``filter_lists`` into a frozen snapshot.

        This is the off-thread entry point the serving daemon's
        hot-reload uses: building touches nothing shared, so it can run
        in the background while an older snapshot keeps serving.
        """
        engine = AdblockEngine()
        for filter_list in filter_lists:
            engine.subscribe(filter_list)
        return engine.freeze()

    def list_name_for(self, flt: RequestFilter | ElementFilter) -> str:
        return self._list_of_filter.get(id(flt), "?")

    @property
    def filter_count(self) -> int:
        """Total active filters compiled into this snapshot."""
        return sum(len(fl) for fl in self.lists)

    def compiled_stats(self) -> dict[str, dict[str, int]]:
        """Per-index size figures (``/healthz``, the compile-index CLI).

        Empty when the snapshot's indexes are not compiled (only
        possible for hand-assembled snapshots; :meth:`build` and
        :meth:`AdblockEngine.freeze` always compile).
        """
        stats: dict[str, dict[str, int]] = {}
        for name in ("blocking", "exceptions"):
            index = getattr(self, name)
            stats_fn = getattr(index, "stats", None)
            if callable(stats_fn):
                stats[name] = stats_fn()
        return stats

    def session(self, record: bool = False) -> "AdblockEngine":
        """A thin mutable consultation layer over this snapshot."""
        return AdblockEngine(record=record, snapshot=self)


class AdblockEngine:
    """ABP configured with blocking lists and exception (whitelist) lists.

    The default configuration the paper studies is::

        engine = AdblockEngine()
        engine.subscribe(easylist)          # blocking
        engine.subscribe(acceptable_ads)    # the whitelist

    Each list contributes its blocking filters, exception filters, and
    element filters; the engine resolves interactions between them.

    The engine is split into two layers.  The *compiled* layer —
    indices, element filters, list map, epoch, privilege memo — can be
    frozen into an :class:`EngineSnapshot` with :meth:`freeze` and
    shared between sessions; ``AdblockEngine(snapshot=snap)`` (or
    ``snap.session()``) builds a new session over an existing snapshot
    without recompiling anything.  The *session* layer is what remains
    mutable: the ``recording`` flag and the activation log.  A frozen
    engine (and every snapshot session) rejects :meth:`subscribe` with
    :class:`FrozenEngineError` — subscription changes require building
    a fresh snapshot, which is exactly the atomic-swap discipline the
    serving daemon's hot-reload relies on.
    """

    #: Upper bound on memoised page-privilege entries; the cache is
    #: cleared (not evicted) when full, which keeps the bookkeeping off
    #: the hot path.  A survey visits each domain once, so in practice
    #: the cap is never reached — but a long-lived serving daemon can
    #: reach it, so every wipe is counted under
    #: ``filters.engine.privilege_cache_clears``.
    PRIVILEGE_CACHE_MAX = 4096

    def __init__(self, record: bool = False, *,
                 snapshot: EngineSnapshot | None = None) -> None:
        if snapshot is None:
            self._blocking = FilterIndex()
            self._exceptions = FilterIndex()
            self._element_hide: list[tuple[str, ElementFilter]] = []
            self._element_exceptions: list[tuple[str, ElementFilter]] = []
            self._list_of_filter: dict[int, str] = {}
            self._lists: list[FilterList] = []
            # Memoised document_privileges match results, keyed by
            # (subscription epoch, page_url, page_host, sitekey).  The
            # epoch advances on every filter added, so stale entries can
            # never be served after a subscription change.
            self._subscription_epoch = 0
            self._privilege_cache: dict[
                tuple, tuple[bool, bool, tuple[RequestFilter, ...]]] = {}
            self._snapshot: EngineSnapshot | None = None
        else:
            # A session: alias the snapshot's compiled structures (no
            # copies — that is the point) and share its privilege memo.
            self._blocking = snapshot.blocking
            self._exceptions = snapshot.exceptions
            self._element_hide = snapshot.element_hide
            self._element_exceptions = snapshot.element_exceptions
            self._list_of_filter = snapshot._list_of_filter
            self._lists = list(snapshot.lists)
            self._subscription_epoch = snapshot.epoch
            self._privilege_cache = snapshot._privilege_cache
            self._snapshot = snapshot
        self.recording = record
        self.activations: list[Activation] = []

    # -- subscription management -------------------------------------

    @property
    def frozen(self) -> bool:
        """True once the compiled layer is sealed (snapshot exists)."""
        return self._snapshot is not None

    def freeze(self) -> EngineSnapshot:
        """Seal the compiled layer and return it as a shareable snapshot.

        Freezing is idempotent — repeated calls return the same
        snapshot.  After freezing, :meth:`subscribe` raises
        :class:`FrozenEngineError`; the engine itself keeps working as
        a session over its own snapshot.

        Freezing is also where the keyword indexes are *compiled*: the
        mutable :class:`FilterIndex` pair becomes a pair of read-only
        :class:`~repro.filters.compiled.index.CompiledFilterIndex`
        (packed keyword automaton + prebuilt candidate tuples), and the
        engine rebinds to them so its own probes take the compiled hot
        path too.  Candidate ordering is preserved byte-for-byte.
        """
        if self._snapshot is None:
            # Imported here, not at module level: the compiled package's
            # artifact module imports EngineSnapshot from this module.
            from repro.filters.compiled.index import CompiledFilterIndex
            if isinstance(self._blocking, FilterIndex):
                self._blocking = CompiledFilterIndex.compile(
                    self._blocking, name="blocking")
            if isinstance(self._exceptions, FilterIndex):
                self._exceptions = CompiledFilterIndex.compile(
                    self._exceptions, name="exceptions")
            self._snapshot = EngineSnapshot(
                blocking=self._blocking,
                exceptions=self._exceptions,
                element_hide=self._element_hide,
                element_exceptions=self._element_exceptions,
                lists=tuple(self._lists),
                list_of_filter=self._list_of_filter,
                epoch=self._subscription_epoch,
            )
            # Adopt the snapshot's memo so the engine and its sessions
            # share one long-lived cache (the engine's own memo was
            # keyed on the same epoch, but starts empty post-freeze to
            # keep ownership in one place).
            self._snapshot._privilege_cache.update(self._privilege_cache)
            self._privilege_cache = self._snapshot._privilege_cache
        return self._snapshot

    def subscribe(self, filter_list: FilterList) -> None:
        """Add every filter of ``filter_list`` to the engine."""
        if self._snapshot is not None:
            raise FrozenEngineError(
                "engine is frozen: build a new EngineSnapshot instead "
                "of subscribing")
        self._lists.append(filter_list)
        name = filter_list.name
        for flt in filter_list.filters:
            self._add_filter(flt, name)

    def _add_filter(self, flt: RequestFilter | ElementFilter,
                    list_name: str) -> None:
        self._subscription_epoch += 1
        if self._privilege_cache:
            self._privilege_cache.clear()
        self._list_of_filter[id(flt)] = list_name
        if isinstance(flt, RequestFilter):
            if flt.is_exception:
                self._exceptions.add(flt)
            else:
                self._blocking.add(flt)
        else:
            if flt.is_exception:
                self._element_exceptions.append((list_name, flt))
            else:
                self._element_hide.append((list_name, flt))

    @property
    def subscriptions(self) -> tuple[FilterList, ...]:
        return tuple(self._lists)

    @property
    def subscription_epoch(self) -> int:
        """The compiled state's version: advances on every filter added."""
        return self._subscription_epoch

    def list_name_for(self, flt: RequestFilter | ElementFilter) -> str:
        return self._list_of_filter.get(id(flt), "?")

    # -- recording -----------------------------------------------------

    def clear_activations(self) -> None:
        self.activations.clear()

    def _record(self, activation: Activation) -> None:
        if self.recording:
            self.activations.append(activation)

    # -- document-level privileges --------------------------------------

    def document_privileges(
        self, page_url: str, page_host: str, *, sitekey: str | None = None
    ) -> DocumentPrivileges:
        """Privileges the page itself gets from ``$document``/``$elemhide``.

        ``sitekey`` is the (already signature-verified) public key the
        server presented, if any; sitekey exception filters only activate
        when it matches one of their keys.

        The two exception-index scans are memoised per
        ``(subscription epoch, page_url, page_host, sitekey)`` — the
        crawler re-derives the same page's privileges for every request
        on it, and the answer cannot change unless the subscriptions
        do.  Activations are *not* cached: every call records the
        granted filters exactly as an uncached scan would.
        """
        cache_key = (self._subscription_epoch, page_url, page_host, sitekey)
        cached = self._privilege_cache.get(cache_key)
        if cached is None:
            allow_all = False
            disable_elemhide = False
            granted_list: list[RequestFilter] = []
            for flt in self._exceptions.match_all(
                page_url, ContentType.DOCUMENT, page_host, page_host,
                sitekey=sitekey,
            ):
                allow_all = True
                granted_list.append(flt)
            for flt in self._exceptions.match_all(
                page_url, ContentType.ELEMHIDE, page_host, page_host,
                sitekey=sitekey,
            ):
                disable_elemhide = True
                if flt not in granted_list:
                    granted_list.append(flt)
            granted = tuple(granted_list)
            if len(self._privilege_cache) >= self.PRIVILEGE_CACHE_MAX:
                # A full wipe (not an eviction) — cheap, but it resets
                # hit rates for *every* page, which matters once a
                # long-lived daemon shares this memo across requests.
                # Never silent: each wipe is counted.
                self._privilege_cache.clear()
                if OBS.enabled:
                    OBS.registry.counter(
                        "filters.engine.privilege_cache_clears").inc()
            self._privilege_cache[cache_key] = (allow_all, disable_elemhide,
                                                granted)
        else:
            allow_all, disable_elemhide, granted = cached
            if OBS.enabled:
                OBS.registry.counter(
                    "filters.engine.privilege_cache_hits").inc()
        for flt in granted:
            self._record(Activation(
                filter_text=flt.text,
                list_name=self.list_name_for(flt),
                page_host=page_host,
                target=page_url,
                kind="document",
                is_exception=True,
            ))
        if OBS.enabled:
            OBS.registry.counter("filters.engine.document_checks").inc()
            if granted:
                OBS.registry.counter(
                    "filters.engine.privileges_granted").inc(len(granted))
        return DocumentPrivileges(
            allow_all=allow_all,
            disable_elemhide=disable_elemhide,
            granted_by=granted,
        )

    # -- request decisions ----------------------------------------------

    def check_request(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
        *,
        privileges: DocumentPrivileges | None = None,
        sitekey: str | None = None,
    ) -> RequestDecision:
        """Decide one request; records all activations when instrumented."""
        if privileges is not None and privileges.allow_all:
            if OBS.enabled:
                OBS.registry.counter("filters.engine.verdicts",
                                     verdict="allow",
                                     via="document-privilege").inc()
            return RequestDecision(verdict=Verdict.ALLOW)

        # ``$donottrack`` filters only steer the DNT header (see
        # :meth:`should_send_dnt`); they never block or allow content.
        blocking = tuple(
            flt for flt in self._blocking.match_all(
                url, content_type, page_host, request_host)
            if not flt.options.donottrack)
        exceptions = tuple(
            flt for flt in self._exceptions.match_all(
                url, content_type, page_host, request_host,
                sitekey=sitekey)
            if not flt.options.donottrack)

        for flt in blocking:
            self._record(Activation(
                filter_text=flt.text,
                list_name=self.list_name_for(flt),
                page_host=page_host,
                target=url,
                kind="request",
                is_exception=False,
            ))
        for flt in exceptions:
            self._record(Activation(
                filter_text=flt.text,
                list_name=self.list_name_for(flt),
                page_host=page_host,
                target=url,
                kind="request",
                is_exception=True,
                needless=not blocking,
            ))

        if exceptions:
            verdict = Verdict.ALLOW
        elif blocking:
            verdict = Verdict.BLOCK
        else:
            verdict = Verdict.NO_MATCH
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("filters.engine.verdicts",
                        verdict=verdict.value, via="match").inc()
            if exceptions and not blocking:
                # The paper's "needless activations": the whitelist fired
                # with nothing to override.
                reg.counter("filters.engine.needless_activations").inc(
                    len(exceptions))
        if verdict is Verdict.NO_MATCH:
            return RequestDecision(Verdict.NO_MATCH)
        return RequestDecision(verdict, blocking, exceptions)

    # -- element hiding ---------------------------------------------------

    def hidden_elements(
        self,
        elements: Iterable["Element"],
        page_host: str,
        *,
        privileges: DocumentPrivileges | None = None,
    ) -> list["Element"]:
        """Which of ``elements`` get hidden on a page at ``page_host``.

        An element is hidden when some element-hiding filter applies on
        the domain and matches it, and no element exception (with a
        selector that also matches it) applies on the domain.
        """
        if privileges is not None and (
                privileges.allow_all or privileges.disable_elemhide):
            return []
        hidden: list["Element"] = []
        active_exceptions = [
            (name, flt) for name, flt in self._element_exceptions
            if flt.applies_on_domain(page_host)
        ]
        for element in elements:
            hider = self._find_hider(element, page_host)
            if hider is None:
                continue
            list_name, flt = hider
            excepted = False
            for exc_name, exc in active_exceptions:
                if exc.selector.matches(element):
                    excepted = True
                    self._record(Activation(
                        filter_text=exc.text,
                        list_name=exc_name,
                        page_host=page_host,
                        target=exc.selector_text,
                        kind="element",
                        is_exception=True,
                    ))
                    break
            self._record(Activation(
                filter_text=flt.text,
                list_name=list_name,
                page_host=page_host,
                target=flt.selector_text,
                kind="element",
                is_exception=False,
            ))
            if not excepted:
                hidden.append(element)
        return hidden

    def _find_hider(
        self, element: "Element", page_host: str
    ) -> tuple[str, ElementFilter] | None:
        for name, flt in self._element_hide:
            if flt.applies_on_domain(page_host) and flt.selector.matches(element):
                return name, flt
        return None

    def elemhide_stylesheet(
        self,
        page_host: str,
        *,
        privileges: DocumentPrivileges | None = None,
    ) -> str:
        """The CSS a real ABP would inject on a page at ``page_host``.

        Every element-hiding selector applicable on the domain (and not
        cancelled by an identical-selector element exception) collapses
        to ``display: none !important`` — the extension's actual hiding
        mechanism.  Pages holding ``$elemhide``/``$document`` privileges
        get an empty stylesheet.
        """
        if privileges is not None and (
                privileges.allow_all or privileges.disable_elemhide):
            return ""
        excepted = {
            flt.selector_text
            for _, flt in self._element_exceptions
            if flt.applies_on_domain(page_host)
        }
        selectors = []
        seen: set[str] = set()
        for _, flt in self._element_hide:
            if not flt.applies_on_domain(page_host):
                continue
            text = flt.selector_text
            if text in excepted or text in seen:
                continue
            seen.add(text)
            selectors.append(text)
        if not selectors:
            return ""
        return (",\n".join(selectors)
                + " { display: none !important; }")

    # -- Do-Not-Track (the $donottrack option) ---------------------------

    def should_send_dnt(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        request_host: str,
    ) -> bool:
        """Should a DNT header accompany this request?

        Appendix A.4: a matching ``$donottrack`` filter asks the browser
        to send ``DNT: 1``, "as long as there is no matching exception
        rule with a donottrack option on the same page."
        """
        requested = any(
            flt.options.donottrack
            and flt.matches(url, content_type, page_host, request_host)
            for flt in self._blocking
        )
        if not requested:
            return False
        return not any(
            flt.options.donottrack
            and flt.matches(url, content_type, page_host, request_host)
            for flt in self._exceptions
        )
