"""Whitelist scope classification — Figure 4 and the Table 2 pipeline.

The paper's central structural observation is that exception filters fall
into three scope classes:

* **restricted** — the filter explicitly enumerates the first-party
  domains it can activate on (``domain=`` option for request filters,
  prepended domains for element filters).  These are the only filters
  whose beneficiaries can be read off the list itself;
* **sitekey** — the filter activates on *any* domain presenting a valid
  signature for one of its embedded RSA public keys;
* **unrestricted** — everything else; such filters can match on any site
  (conversion-tracking pixels, whitelisted ad networks like PageFair).

This module classifies filters, extracts the explicitly whitelisted
publisher domains, and reduces them to effective second-level domains —
the exact numbers reported in Section 4.2 and Table 2.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.filters.filterlist import FilterList
from repro.filters.parser import ElementFilter, Filter, RequestFilter
from repro.web.url import registered_domain

__all__ = [
    "ScopeClass",
    "classify_filter",
    "ScopeReport",
    "classify_whitelist",
    "explicit_domains",
]


class ScopeClass(enum.Enum):
    """The three scope classes of Figure 4 (plus NOT_EXCEPTION)."""

    RESTRICTED = "restricted"
    UNRESTRICTED = "unrestricted"
    SITEKEY = "sitekey"
    NOT_EXCEPTION = "not_exception"


def classify_filter(flt: Filter) -> ScopeClass:
    """Scope class of a single filter.

    Only exception filters participate; blocking filters, comments and
    invalid entries classify as ``NOT_EXCEPTION``.  A filter that carries
    both a sitekey and a domain restriction counts as SITEKEY (the sitekey
    is what makes its effective scope unknowable from the list).
    """
    if isinstance(flt, RequestFilter) and flt.is_exception:
        if flt.options.has_sitekey:
            return ScopeClass.SITEKEY
        # Filter-level restriction: ``domain=`` *or* a ``||host``-anchored
        # pure privilege filter (the ``@@||ask.com^$elemhide`` shape).
        if flt.is_domain_restricted:
            return ScopeClass.RESTRICTED
        return ScopeClass.UNRESTRICTED
    if isinstance(flt, ElementFilter) and flt.is_exception:
        if flt.is_domain_restricted:
            return ScopeClass.RESTRICTED
        return ScopeClass.UNRESTRICTED
    return ScopeClass.NOT_EXCEPTION


def explicit_domains(filters: Iterable[Filter]) -> set[str]:
    """All first-party domains explicitly named by restricted filters."""
    domains: set[str] = set()
    for flt in filters:
        if classify_filter(flt) is ScopeClass.RESTRICTED:
            domains.update(flt.restricted_domains)  # type: ignore[union-attr]
    return domains


@dataclass
class ScopeReport:
    """Aggregate scope statistics over a whitelist (Figure 4 / Sec 4.2)."""

    total_filters: int = 0
    counts: Counter = field(default_factory=Counter)
    sitekeys: set[str] = field(default_factory=set)
    sitekey_filters: int = 0
    unrestricted_element_filters: int = 0
    fq_domains: set[str] = field(default_factory=set)

    @property
    def restricted(self) -> int:
        return self.counts[ScopeClass.RESTRICTED]

    @property
    def unrestricted(self) -> int:
        return self.counts[ScopeClass.UNRESTRICTED]

    @property
    def restricted_fraction(self) -> float:
        if not self.total_filters:
            return 0.0
        return self.restricted / self.total_filters

    @property
    def effective_second_level_domains(self) -> set[str]:
        """FQ domains reduced to e2LDs (Table 2's 1,990 from 3,545)."""
        return {registered_domain(d) for d in self.fq_domains}

    def subdomain_count(self, parent: str) -> int:
        """How many whitelisted FQDs fall under ``parent`` (e.g. about.com)."""
        from repro.web.url import is_subdomain_of

        return sum(1 for d in self.fq_domains if is_subdomain_of(d, parent))


def classify_whitelist(whitelist: FilterList) -> ScopeReport:
    """Classify every filter of ``whitelist`` and extract domain sets."""
    report = ScopeReport()
    for flt in whitelist.filters:
        scope = classify_filter(flt)
        if scope is ScopeClass.NOT_EXCEPTION:
            continue
        report.total_filters += 1
        report.counts[scope] += 1
        if scope is ScopeClass.SITEKEY:
            report.sitekey_filters += 1
            assert isinstance(flt, RequestFilter)
            report.sitekeys.update(flt.options.sitekeys)
        elif scope is ScopeClass.RESTRICTED:
            report.fq_domains.update(flt.restricted_domains)  # type: ignore[union-attr]
        elif isinstance(flt, ElementFilter):
            report.unrestricted_element_filters += 1
    return report
