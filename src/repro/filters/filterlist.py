"""Filter-list parsing and the subscription model.

A filter list is a text document: an optional ``[Adblock Plus 2.0]``
header, ``!``-prefixed metadata/comment lines (``! Title:``,
``! Version:``, ...), and one filter per line.  Users *subscribe* to
lists; Adblock Plus ships two default subscriptions — EasyList (blocking)
and the Acceptable Ads whitelist (exceptions) — which is exactly the
configuration the paper measures.

:class:`FilterList` keeps the raw line order (the whitelist's A-group
structure is positional: a ``!A7`` comment introduces the filters that
follow it, so analyses need ordering preserved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.filters.parser import (
    Comment,
    ElementFilter,
    Filter,
    InvalidFilter,
    RequestFilter,
    parse_filter,
)

__all__ = ["FilterList", "parse_filter_list", "HEADER"]

HEADER = "[Adblock Plus 2.0]"

_METADATA_KEYS = (
    "title", "version", "expires", "homepage", "licence", "license",
    "last modified", "redirect", "checksum",
)


@dataclass
class FilterList:
    """A parsed filter list.

    ``entries`` holds every line in order (comments included);
    convenience views expose the request / element / invalid subsets.
    """

    name: str = ""
    entries: list[Filter] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(1 for _ in self.filters)

    def __iter__(self) -> Iterator[Filter]:
        return iter(self.entries)

    @property
    def filters(self) -> Iterator[Filter]:
        """Active (non-comment, non-invalid) filters, in list order."""
        for entry in self.entries:
            if isinstance(entry, (RequestFilter, ElementFilter)):
                yield entry

    @property
    def request_filters(self) -> list[RequestFilter]:
        return [f for f in self.entries if isinstance(f, RequestFilter)]

    @property
    def element_filters(self) -> list[ElementFilter]:
        return [f for f in self.entries if isinstance(f, ElementFilter)]

    @property
    def comments(self) -> list[Comment]:
        return [f for f in self.entries if isinstance(f, Comment)]

    @property
    def invalid_filters(self) -> list[InvalidFilter]:
        return [f for f in self.entries if isinstance(f, InvalidFilter)]

    @property
    def exception_filters(self) -> list[Filter]:
        """All exception filters (request ``@@`` and element ``#@#``)."""
        return [
            f for f in self.filters
            if getattr(f, "is_exception", False)
        ]

    def add(self, line: str) -> Filter:
        """Parse ``line`` and append it; returns the parsed entry."""
        entry = parse_filter(line)
        self.entries.append(entry)
        return entry

    def extend(self, lines: Iterable[str]) -> None:
        for line in lines:
            self.add(line)

    def filter_texts(self) -> list[str]:
        """Raw text of every active filter, in order."""
        return [f.text for f in self.filters]

    def to_text(self) -> str:
        """Serialise back to filter-list text (header + all lines)."""
        lines = [HEADER]
        for key, value in self.metadata.items():
            lines.append(f"! {key.title()}: {value}")
        lines.extend(entry.text for entry in self.entries)
        return "\n".join(lines) + "\n"


def parse_filter_list(text: str, name: str = "") -> FilterList:
    """Parse filter-list text into a :class:`FilterList`.

    Header lines and ``! Key: value`` metadata comments populate
    ``metadata``; everything else becomes an entry.  Blank lines are
    skipped (they are formatting, not malformed filters).
    """
    flist = FilterList(name=name)
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            flist.metadata.setdefault("header", line)
            continue
        if line.startswith("!"):
            key, _, value = line[1:].partition(":")
            key_norm = key.strip().lower()
            if value and key_norm in _METADATA_KEYS:
                flist.metadata[key_norm] = value.strip()
                continue
        flist.add(line)
    return flist
