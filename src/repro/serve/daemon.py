"""The long-lived filter-match serving daemon.

A stdlib-only (``http.server``) HTTP daemon serving match / verdict /
document-privilege requests over one frozen
:class:`~repro.filters.engine.EngineSnapshot`, with the robustness
layer the ROADMAP's "millions of users" north star actually needs:

* **Admission control** — every match request passes through the
  bounded :class:`~repro.serve.admission.AdmissionController`;
  overload sheds explicitly (HTTP 429/503 + ``Retry-After``), never
  queues without bound.
* **Deadline propagation** — each request carries a budget (the
  ``X-Repro-Deadline-Ms`` header, or the configured default) that is
  honoured while queued *and* inside the match path: a batch whose
  budget expires returns its completed prefix marked ``degraded``.
* **Epoch hot-reload** — ``POST /admin/reload`` builds the next
  snapshot in a background-safe :class:`~repro.serve.reload.Reloader`
  and swaps it atomically; a candidate that fails validation is
  rejected and the old epoch keeps serving.
* **Graceful drain** — SIGTERM stops admission, finishes in-flight
  requests, flushes observability exports, then exits.

Endpoints::

    POST /v1/match       one op or {"requests": [...]} batch
    POST /admin/reload   {"lists": [{"name":..., "text":...}]}
    GET  /healthz        liveness + epoch + reload state (always 200)
    GET  /readyz         200 only when serving and not draining
    GET  /metricz        the flat serve metrics view (JSON); append
                         ``?format=prometheus`` for text exposition

Responses are canonical JSON (:func:`repro.serve.protocol.encode`), so
daemon bytes can be compared against direct engine calls — the verdict
parity contract ``tests/serve`` and ``benchmarks/bench_serve.py``
enforce.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs

from repro.obs import OBS, WallClockTicker
from repro.obs.prometheus import render_prometheus_text
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.protocol import ProtocolError
from repro.serve.reload import Reloader, SnapshotHolder

__all__ = ["ServeConfig", "ServeDaemon"]


@dataclass(slots=True)
class ServeConfig:
    """Tunables for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = pick a free port
    max_inflight: int = 8
    max_queue: int = 64
    default_deadline_ms: float = 1_000.0
    drain_timeout_s: float = 10.0
    #: Honour the ``X-Repro-Delay-Ms`` header (sleep before serving).
    #: Off by default; the drain/chaos tests and the load benchmark
    #: turn it on to create genuinely in-flight requests.
    allow_test_delay: bool = False
    #: The per-request latency SLO; requests over it burn
    #: ``serve.slo.burn{slo=latency}``.
    slo_latency_ms: float = 100.0
    #: Width of the rolling window behind ``serve.window.*`` gauges.
    window_s: float = 10.0
    #: Wall seconds between time-series samples (``--timeseries-out``).
    telemetry_interval_s: float = 1.0


class ServeDaemon:
    """One serving daemon: HTTP front, admission, reload, drain."""

    def __init__(self, holder: SnapshotHolder,
                 config: ServeConfig | None = None,
                 reloader: Reloader | None = None,
                 on_drained: Callable[[], None] | None = None) -> None:
        self.holder = holder
        self.config = config or ServeConfig()
        self.reloader = reloader or Reloader(holder)
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue)
        self.on_drained = on_drained
        self._server: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._drain_started = threading.Event()
        self._drained = threading.Event()
        self._stopped = threading.Event()
        # Rolling-window state behind the serve.window.* gauges: the
        # last window_s seconds of (finish time, latency) pairs and
        # shed timestamps, evicted lazily on each update.
        self._window_lock = threading.Lock()
        self._window_latencies: deque[tuple[float, float]] = deque()
        self._window_sheds: deque[float] = deque()
        self._ticker: WallClockTicker | None = None
        self._telemetry_flushed = False

    # -- lifecycle -----------------------------------------------------

    def _prime_metrics(self) -> None:
        """Create the serving metric families before the first request.

        A scrape of a freshly booted daemon must already expose the
        request-latency histogram, every shed-reason counter, and the
        reload-epoch gauge — dashboards and the Prometheus-format smoke
        test key on family *presence*, not just values.
        """
        if not OBS.enabled:
            return
        OBS.registry.histogram("serve.latency_ms")
        for reason in ("queue-full", "deadline-hopeless",
                       "deadline-in-queue", "draining"):
            OBS.registry.counter("serve.admission.shed", reason=reason)
        OBS.registry.gauge("serve.reload.epoch").set(
            self.holder.current().epoch)
        OBS.registry.gauge("serve.window.latency_p95_ms").set(0.0)
        OBS.registry.gauge("serve.window.qps").set(0.0)
        OBS.registry.gauge("serve.window.shed_rate").set(0.0)
        OBS.registry.counter("serve.slo.burn", slo="latency")

    def _start_telemetry(self) -> None:
        """Own a wall-clock sampling ticker when a sampler is wired in."""
        if OBS.timeseries.enabled and self._ticker is None:
            self._ticker = WallClockTicker(
                OBS.timeseries,
                interval_s=self.config.telemetry_interval_s)
            self._ticker.start()

    def _flush_telemetry(self) -> None:
        """Drain-time flush: final sample, sealed exporter, flight dump.

        Runs exactly once, so a drain raced against ``stop()`` can never
        write a torn telemetry tail — the SIGTERM chaos test asserts the
        exports verify strictly afterwards.
        """
        if self._telemetry_flushed:
            return
        self._telemetry_flushed = True
        if self._ticker is not None:
            self._ticker.stop()
            self._ticker = None
        if OBS.timeseries.enabled:
            OBS.timeseries.sample_wall()
            OBS.timeseries.close()
        OBS.flight.record("serve.drain", drained=self._drained.is_set())
        OBS.flight.dump(reason="drain")

    def _make_server(self) -> ThreadingHTTPServer:
        daemon = self

        class Handler(_ServeHandler):
            serve_daemon = daemon

        server = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler)
        server.daemon_threads = True
        return server

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        assert self._server is not None, "daemon not started"
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Bind and serve in a background thread (tests, benchmarks)."""
        self._prime_metrics()
        self._start_telemetry()
        self._server = self._make_server()
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (the CLI path)."""
        self._prime_metrics()
        self._start_telemetry()
        self._server = self._make_server()
        self._server.serve_forever()

    def wait_stopped(self, timeout_s: float | None = None) -> bool:
        """Block until :meth:`stop` completes (the CLI's park point)."""
        return self._stopped.wait(timeout_s)

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (callable from main thread)."""

        def _on_signal(signum, _frame) -> None:
            # Handlers must return promptly; the drain runs elsewhere.
            threading.Thread(target=self.drain_and_stop,
                             name="repro-serve-drain",
                             daemon=True).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def begin_drain(self) -> None:
        """Step 1 of shutdown: refuse new work, keep finishing old."""
        if self._drain_started.is_set():
            return
        self._drain_started.set()
        self.admission.begin_drain()

    def drain_and_stop(self) -> bool:
        """The full SIGTERM sequence; True when in-flight work finished.

        Stop admitting → wait (bounded) for in-flight requests → flush
        observability exports via ``on_drained`` → stop the listener.
        Every step runs even when a timeout forces an early exit, so
        the process always ends in a reportable state.
        """
        self.begin_drain()
        clean = self.admission.drained(self.config.drain_timeout_s)
        self._drained.set()
        if OBS.enabled:
            OBS.registry.counter(
                "serve.drains", clean=str(clean).lower()).inc()
        if self.on_drained is not None:
            self.on_drained()
        self._flush_telemetry()
        self.stop()
        return clean

    def stop(self) -> None:
        """Tear down the listener (idempotent)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._ticker is not None:
            # A direct stop (no drain) must still not leak the sampling
            # thread; the full flush stays on the drain path.
            self._ticker.stop()
            self._ticker = None
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)

    @property
    def draining(self) -> bool:
        return self._drain_started.is_set()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    # -- request handling (called from handler threads) ----------------

    def handle_match(self, body: bytes,
                     deadline_ms: float | None,
                     test_delay_s: float = 0.0) -> tuple[int, dict, dict]:
        """The whole match path: admission → parse → serve → outcome.

        Returns ``(status, body, headers)``; every path through here
        yields exactly one explicit outcome.  ``test_delay_s`` (the
        ``X-Repro-Delay-Ms`` header, gated on
        :attr:`ServeConfig.allow_test_delay`) stretches the in-slot
        service time so tests can create genuinely in-flight requests.
        """
        start = time.monotonic()
        budget_ms = (deadline_ms if deadline_ms is not None
                     else self.config.default_deadline_ms)
        deadline_s = start + budget_ms / 1000.0
        decision = self.admission.admit(deadline_s)
        if not decision.admitted:
            self._note_shed(time.monotonic())
            status, payload = protocol.shed(
                decision.reason or "shed",
                retry_after=decision.retry_after,
                draining=decision.draining)
            return status, payload, {
                "Retry-After": f"{max(0.05, decision.retry_after):.3f}"}
        try:
            if test_delay_s > 0.0:
                time.sleep(test_delay_s)
            try:
                requests = protocol.parse_match_payload(body)
            except ProtocolError as exc:
                self._count_outcome("error")
                return (*protocol.error(str(exc)), {})
            snapshot = self.holder.current()
            outcome, payload = protocol.serve_match(
                snapshot, requests,
                deadline_expired=lambda: time.monotonic() >= deadline_s)
            self._count_outcome(outcome)
            finished = time.monotonic()
            latency_ms = (finished - start) * 1000.0
            if OBS.enabled:
                OBS.registry.histogram("serve.latency_ms").observe(
                    latency_ms)
                if latency_ms > self.config.slo_latency_ms:
                    OBS.registry.counter("serve.slo.burn",
                                         slo="latency").inc()
            self._note_latency(finished, latency_ms)
            return 200, payload, {}
        finally:
            self.admission.release(decision,
                                   service_s=time.monotonic() - start)

    def handle_reload(self, body: bytes) -> tuple[int, dict]:
        try:
            document = json.loads(body.decode("utf-8"))
            lists = document["lists"]
            sources = [(item["name"], item["text"]) for item in lists]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return 400, {"status": "error",
                         "error": "body must be {'lists': "
                                  "[{'name':..., 'text':...}]}"}
        result = self.reloader.reload(sources)
        status = 200 if result.status == "swapped" else 409
        return status, {"status": result.status, "epoch": result.epoch,
                        "filters": result.filters, "error": result.error}

    def health(self) -> dict:
        snapshot = self.holder.current()
        return {
            "status": "ok",
            "epoch": snapshot.epoch,
            "filters": snapshot.filter_count,
            "compiled": snapshot.compiled_stats(),
            "draining": self.draining,
            "reload": self.reloader.state(),
        }

    def metrics(self) -> dict:
        if OBS.enabled:
            return dict(OBS.registry.flat())
        return {}

    @staticmethod
    def _count_outcome(outcome: str) -> None:
        if OBS.enabled:
            OBS.registry.counter("serve.outcomes", outcome=outcome).inc()

    # -- rolling-window gauges (serve.window.*) ------------------------

    def _note_latency(self, now: float, latency_ms: float) -> None:
        if not OBS.enabled:
            return
        with self._window_lock:
            self._window_latencies.append((now, latency_ms))
            self._refresh_window(now)

    def _note_shed(self, now: float) -> None:
        if not OBS.enabled:
            return
        with self._window_lock:
            self._window_sheds.append(now)
            self._refresh_window(now)

    def _refresh_window(self, now: float) -> None:
        """Evict expired samples and republish the window gauges.

        Caller holds ``_window_lock``.  The histogram in
        ``serve.latency_ms`` is cumulative-forever; these gauges answer
        the operator's *live* question — "what is p95 / qps / shed rate
        right now" — over the last :attr:`ServeConfig.window_s` seconds.
        """
        horizon = now - self.config.window_s
        latencies = self._window_latencies
        while latencies and latencies[0][0] < horizon:
            latencies.popleft()
        sheds = self._window_sheds
        while sheds and sheds[0] < horizon:
            sheds.popleft()
        served = len(latencies)
        if served:
            ordered = sorted(sample for _, sample in latencies)
            p95 = ordered[min(served - 1, int(0.95 * served))]
        else:
            p95 = 0.0
        total = served + len(sheds)
        OBS.registry.gauge("serve.window.latency_p95_ms").set(
            round(p95, 3))
        OBS.registry.gauge("serve.window.qps").set(
            round(total / self.config.window_s, 3))
        OBS.registry.gauge("serve.window.shed_rate").set(
            round(len(sheds) / total, 4) if total else 0.0)


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes HTTP traffic into the daemon (one instance per request)."""

    serve_daemon: ServeDaemon  # injected by ServeDaemon._make_server
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a serving
    # daemon under load must not.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send(self, status: int, payload: dict,
              headers: dict | None = None) -> None:
        body = protocol.encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client gave up; the outcome was still computed and
            # counted — nothing hangs, nothing is silently dropped.
            if OBS.enabled:
                OBS.registry.counter("serve.client_aborts").inc()

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length) if length else b""

    def _test_delay_s(self) -> float:
        if not self.serve_daemon.config.allow_test_delay:
            return 0.0
        delay_ms = self.headers.get("X-Repro-Delay-Ms")
        try:
            return max(0.0, float(delay_ms)) / 1000.0 if delay_ms else 0.0
        except ValueError:
            return 0.0

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            if OBS.enabled:
                OBS.registry.counter("serve.client_aborts").inc()

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        daemon = self.serve_daemon
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send(200, daemon.health())
        elif path == "/readyz":
            if daemon.draining:
                self._send(503, {"status": "draining"},
                           {"Retry-After": "1"})
            else:
                self._send(200, {"status": "ready",
                                 "epoch": daemon.holder.current().epoch})
        elif path == "/metricz":
            # JSON stays the default (existing scrapers grep it); the
            # Prometheus text exposition is opt-in per scrape.
            wanted = parse_qs(query).get("format", ["json"])[-1]
            if wanted == "prometheus":
                self._send_text(
                    200, render_prometheus_text(OBS.registry)
                    if OBS.enabled else "")
            else:
                self._send(200, daemon.metrics())
        else:
            self._send(*protocol.error(f"no such path {self.path!r}",
                                       status=404))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        daemon = self.serve_daemon
        if OBS.enabled:
            OBS.registry.counter("serve.requests",
                                 route=self.path).inc()
        if self.path == "/v1/match":
            deadline_header = self.headers.get("X-Repro-Deadline-Ms")
            deadline_ms: float | None = None
            if deadline_header:
                try:
                    deadline_ms = float(deadline_header)
                except ValueError:
                    self._send(*protocol.error(
                        "X-Repro-Deadline-Ms must be a number"))
                    return
            body = self._read_body()
            status, payload, headers = daemon.handle_match(
                body, deadline_ms, test_delay_s=self._test_delay_s())
            self._send(status, payload, headers)
        elif self.path == "/admin/reload":
            if daemon.draining:
                self._send(503, {"status": "draining"},
                           {"Retry-After": "1"})
                return
            status, payload = daemon.handle_reload(self._read_body())
            self._send(status, payload)
        else:
            self._send(*protocol.error(f"no such path {self.path!r}",
                                       status=404))
