"""The serving daemon's wire protocol: requests, outcomes, encoding.

Every request the daemon accepts ends in exactly one *explicit outcome*
— the robustness contract of :mod:`repro.serve`:

* ``served`` — the full result, computed against one engine snapshot;
* ``degraded`` — the request's deadline expired mid-computation; the
  response says how much completed (batch requests return the finished
  prefix) instead of hanging or silently truncating;
* ``shed`` — admission control refused the work *before* doing any
  (queue full, deadline already hopeless, daemon draining), mapped to
  HTTP 429/503 with a ``Retry-After`` header;
* ``error`` — the request itself was malformed (HTTP 400).

:func:`serve_match` is deliberately a pure function of ``(snapshot,
payload, deadline)``: the daemon handler, the chaos harness, the parity
benchmark, and the tests all call the same code, which is what makes
the "daemon responses are byte-identical to direct engine calls"
acceptance check meaningful.  :func:`encode` pins the byte encoding
(sorted keys, compact separators, UTF-8) so byte-level comparisons are
well-defined.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.filters.engine import (
    DocumentPrivileges,
    EngineSnapshot,
    RequestDecision,
)
from repro.filters.options import ContentType

__all__ = [
    "ProtocolError",
    "MatchRequest",
    "parse_match_request",
    "parse_match_payload",
    "serve_match",
    "decision_record",
    "privileges_record",
    "encode",
    "served",
    "degraded",
    "shed",
    "error",
]

#: Ops a match payload may carry, with the content types they need.
_OPS = ("check_request", "document_privileges", "elemhide_stylesheet")


class ProtocolError(ValueError):
    """A malformed request payload (maps to HTTP 400)."""


@dataclass(frozen=True, slots=True)
class MatchRequest:
    """One parsed, validated match operation."""

    op: str
    url: str = ""
    content_type: ContentType = ContentType.OTHER
    page_host: str = ""
    request_host: str = ""
    page_url: str = ""
    sitekey: str | None = None


def _content_type(name: object) -> ContentType:
    if not isinstance(name, str) or not name:
        raise ProtocolError(f"content_type must be a non-empty string, "
                            f"got {name!r}")
    try:
        return ContentType[name.upper().replace("-", "_")]
    except KeyError:
        raise ProtocolError(f"unknown content_type {name!r}") from None


def _require(payload: dict, key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"missing required field {key!r}")
    return value


def parse_match_request(payload: object) -> MatchRequest:
    """Validate one operation object into a :class:`MatchRequest`."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"request must be a JSON object, "
                            f"got {type(payload).__name__}")
    op = payload.get("op", "check_request")
    if op not in _OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {_OPS})")
    sitekey = payload.get("sitekey")
    if sitekey is not None and not isinstance(sitekey, str):
        raise ProtocolError("sitekey must be a string when present")
    if op == "check_request":
        return MatchRequest(
            op=op,
            url=_require(payload, "url"),
            content_type=_content_type(payload.get("content_type",
                                                   "other")),
            page_host=_require(payload, "page_host"),
            request_host=_require(payload, "request_host"),
            page_url=payload.get("page_url", ""),
            sitekey=sitekey,
        )
    if op == "document_privileges":
        return MatchRequest(
            op=op,
            page_url=_require(payload, "page_url"),
            page_host=_require(payload, "page_host"),
            sitekey=sitekey,
        )
    # elemhide_stylesheet
    return MatchRequest(op=op, page_host=_require(payload, "page_host"))


def parse_match_payload(body: bytes) -> list[MatchRequest]:
    """Parse a request body: one operation, or a ``requests`` batch."""
    try:
        document = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"body is not valid JSON: {exc}") from None
    if isinstance(document, dict) and "requests" in document:
        batch = document["requests"]
        if not isinstance(batch, list) or not batch:
            raise ProtocolError("'requests' must be a non-empty list")
        return [parse_match_request(item) for item in batch]
    return [parse_match_request(document)]


# -- result records --------------------------------------------------------

def decision_record(decision: RequestDecision,
                    snapshot: EngineSnapshot) -> dict:
    """A :class:`RequestDecision` as a JSON-ready record."""
    return {
        "verdict": decision.verdict.value,
        "blocking": [{"filter": flt.text,
                      "list": snapshot.list_name_for(flt)}
                     for flt in decision.blocking],
        "exceptions": [{"filter": flt.text,
                        "list": snapshot.list_name_for(flt)}
                       for flt in decision.exceptions],
    }


def privileges_record(privileges: DocumentPrivileges,
                      snapshot: EngineSnapshot) -> dict:
    """A :class:`DocumentPrivileges` as a JSON-ready record."""
    return {
        "allow_all": privileges.allow_all,
        "disable_elemhide": privileges.disable_elemhide,
        "granted_by": [{"filter": flt.text,
                        "list": snapshot.list_name_for(flt)}
                       for flt in privileges.granted_by],
    }


def _run_one(request: MatchRequest, snapshot: EngineSnapshot) -> dict:
    session = snapshot.session()
    if request.op == "document_privileges":
        return privileges_record(
            session.document_privileges(request.page_url,
                                        request.page_host,
                                        sitekey=request.sitekey),
            snapshot)
    if request.op == "elemhide_stylesheet":
        return {"stylesheet":
                session.elemhide_stylesheet(request.page_host)}
    privileges = None
    if request.page_url:
        privileges = session.document_privileges(
            request.page_url, request.page_host, sitekey=request.sitekey)
    decision = session.check_request(
        request.url, request.content_type, request.page_host,
        request.request_host, privileges=privileges,
        sitekey=request.sitekey)
    return decision_record(decision, snapshot)


def serve_match(snapshot: EngineSnapshot,
                requests: list[MatchRequest],
                *,
                deadline_expired: Callable[[], bool] | None = None
                ) -> tuple[str, dict]:
    """Run ``requests`` against ``snapshot`` under a deadline.

    Returns ``(outcome, body)`` where ``outcome`` is ``"served"`` or
    ``"degraded"``.  The deadline is consulted *between* operations —
    the deadline-propagation point of the match path — so a batch whose
    budget runs out mid-way returns the completed prefix, explicitly
    marked, instead of blowing the budget or dropping work silently.
    """
    results: list[dict] = []
    for request in requests:
        if deadline_expired is not None and deadline_expired():
            return "degraded", {
                "outcome": "degraded",
                "reason": "deadline-expired",
                "epoch": snapshot.epoch,
                "completed": len(results),
                "requested": len(requests),
                "results": results,
            }
        results.append(_run_one(request, snapshot))
    body = {
        "outcome": "served",
        "epoch": snapshot.epoch,
        "results": results,
    }
    return "served", body


# -- response envelopes ----------------------------------------------------

def encode(body: dict) -> bytes:
    """The canonical byte encoding every response uses.

    Sorted keys + compact separators + UTF-8: a pure function of the
    body dict, so 'byte-identical responses' is a meaningful contract.
    """
    return (json.dumps(body, sort_keys=True, separators=(",", ":"),
                       ensure_ascii=False) + "\n").encode("utf-8")


def served(body: dict) -> tuple[int, dict]:
    return 200, body


def degraded(body: dict) -> tuple[int, dict]:
    """Degraded results still return 200: the body says what completed."""
    return 200, body


def shed(reason: str, *, retry_after: float,
         draining: bool = False) -> tuple[int, dict]:
    """An admission refusal: 429 for overload, 503 for unavailability."""
    status = 503 if draining else 429
    return status, {"outcome": "shed", "reason": reason,
                    "retry_after": round(retry_after, 3)}


def error(reason: str, status: int = 400) -> tuple[int, dict]:
    return status, {"outcome": "error", "reason": reason}
