"""``repro.serve`` — the resilient filter-match serving daemon.

The study pipeline answers questions in batch; this package serves the
same verdicts online.  One frozen
:class:`~repro.filters.engine.EngineSnapshot` (compiled filters,
indices, memo caches — immutable, shareable across request threads)
backs a stdlib-only HTTP daemon with the robustness layer a long-lived
process needs:

* :mod:`repro.serve.protocol` — the wire protocol: request parsing,
  the four explicit outcomes (served / degraded / shed / error), and
  the canonical byte encoding the verdict-parity contract compares.
* :mod:`repro.serve.admission` — bounded admission queue with
  deadline-aware load shedding; overload is an explicit 429/503 with
  ``Retry-After``, never unbounded queueing.
* :mod:`repro.serve.reload` — epoch-keyed hot reload: build the
  candidate off the serving path, validate before swapping, swap
  atomically, roll back (keep the old epoch) on any failure.
* :mod:`repro.serve.daemon` — the HTTP front (``repro serve``):
  ``/v1/match``, ``/admin/reload``, ``/healthz``, ``/readyz``,
  ``/metricz``, plus graceful SIGTERM drain.
* :mod:`repro.serve.chaos` — the attack harness: seeded hostile
  clients (reusing :class:`~repro.web.faults.FaultPlan`) and reloader
  kills (reusing :class:`~repro.state.crashpoints.CrashInjector`),
  with total outcome accounting.

>>> from repro.serve import SnapshotHolder, ServeDaemon, ServeConfig
>>> holder = SnapshotHolder.from_sources([("easylist", "||ads.example^")])
>>> daemon = ServeDaemon(holder, ServeConfig(max_inflight=2))
>>> status, body, _headers = daemon.handle_match(
...     b'{"url": "http://ads.example/x.js", "content_type": "script",'
...     b' "page_host": "news.example", "request_host": "ads.example"}',
...     deadline_ms=1000.0)
>>> status, body["outcome"], body["results"][0]["verdict"]
(200, 'served', 'block')
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.chaos import (
    ChaosReport,
    kill_reloader,
    run_chaos_clients,
    wedge_reloader,
)
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.protocol import (
    MatchRequest,
    ProtocolError,
    parse_match_payload,
    serve_match,
)
from repro.serve.reload import (
    ReloadError,
    Reloader,
    ReloadResult,
    SnapshotHolder,
    build_snapshot_from_sources,
    validate_sources,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ChaosReport",
    "MatchRequest",
    "ProtocolError",
    "ReloadError",
    "ReloadResult",
    "Reloader",
    "ServeConfig",
    "ServeDaemon",
    "SnapshotHolder",
    "build_snapshot_from_sources",
    "kill_reloader",
    "parse_match_payload",
    "run_chaos_clients",
    "serve_match",
    "validate_sources",
    "wedge_reloader",
]
