"""Admission control: bounded queueing, deadline-aware load shedding.

A daemon that accepts every connection melts down by queueing: latency
grows without bound, clients time out and retry, and the retry storm
finishes the job.  The admission controller makes overload *explicit*
instead:

* at most ``max_inflight`` requests execute concurrently;
* at most ``max_queue`` more may *wait* for a slot — the queue is a
  hard bound, never a hope;
* a waiter whose deadline will expire before it can plausibly be
  served is shed immediately (deadline-aware shedding), and a waiter
  whose deadline expires while queued is shed when it wakes;
* once draining starts, nothing new is admitted.

Every refusal carries a machine-readable reason and a ``Retry-After``
estimate, so clients back off instead of hammering.  The controller is
thread-safe (the daemon's handler threads all go through one instance)
and instrumented: ``serve.admission.*`` counters and queue-depth /
inflight gauges feed the ``/metricz`` endpoint.

>>> controller = AdmissionController(max_inflight=1, max_queue=0)
>>> first = controller.admit()
>>> first.admitted
True
>>> second = controller.admit()          # no slot, no queue room
>>> second.admitted, second.reason
(False, 'queue-full')
>>> controller.release(first)
>>> controller.admit().admitted
True
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs import OBS

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """The controller's explicit answer to one admission request."""

    admitted: bool
    #: ``None`` when admitted; otherwise ``queue-full``,
    #: ``deadline-hopeless``, ``deadline-in-queue``, or ``draining``.
    reason: str | None = None
    #: Seconds a refused client should wait before retrying.
    retry_after: float = 0.0
    #: Seconds spent waiting in the queue (admitted requests only).
    queued_for: float = 0.0
    #: True when the refusal is a lifecycle state, not overload: the
    #: daemon maps it to 503 instead of 429.
    draining: bool = False


class AdmissionController:
    """Bounded concurrency + bounded queue + deadline-aware shedding."""

    def __init__(self, *, max_inflight: int = 8, max_queue: int = 32,
                 clock=time.monotonic) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._clock = clock
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self._draining = False
        #: Exponential moving average of service time, feeding the
        #: Retry-After estimate.  Seeded pessimistically at 50ms.
        self._avg_service_s = 0.05

    # -- introspection -------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def draining(self) -> bool:
        return self._draining

    def _retry_after(self) -> float:
        """How long until a queue slot plausibly frees up."""
        backlog = self._queued + max(0, self._inflight)
        return max(0.05, backlog * self._avg_service_s)

    def _shed(self, reason: str, *, draining: bool = False
              ) -> AdmissionDecision:
        if OBS.enabled:
            OBS.registry.counter("serve.admission.shed",
                                 reason=reason).inc()
        OBS.flight.record("serve.shed", reason=reason,
                          draining=draining, inflight=self._inflight,
                          queued=self._queued)
        return AdmissionDecision(admitted=False, reason=reason,
                                 retry_after=self._retry_after(),
                                 draining=draining)

    # -- the admission path --------------------------------------------

    def admit(self, deadline_s: float | None = None) -> AdmissionDecision:
        """Try to admit one request; block (bounded) for a slot.

        ``deadline_s`` is the request's absolute deadline on this
        controller's clock.  A request that cannot be served before its
        deadline is shed rather than queued — queueing doomed work just
        steals capacity from work that could still succeed.
        """
        with self._lock:
            entered = self._clock()
            if self._draining:
                return self._shed("draining", draining=True)
            while self._inflight >= self.max_inflight:
                if self._queued >= self.max_queue:
                    return self._shed("queue-full")
                if deadline_s is not None:
                    remaining = deadline_s - self._clock()
                    if remaining <= 0.0:
                        return self._shed("deadline-hopeless")
                else:
                    remaining = None
                self._queued += 1
                self._set_gauges()
                try:
                    # Bounded wait: a missing deadline still wakes up
                    # periodically so drain can flush the queue.
                    self._slot_freed.wait(
                        timeout=remaining if remaining is not None
                        else 0.1)
                finally:
                    self._queued -= 1
                if self._draining:
                    return self._shed("draining", draining=True)
                if deadline_s is not None \
                        and self._clock() >= deadline_s:
                    return self._shed("deadline-in-queue")
            self._inflight += 1
            self._set_gauges()
            if OBS.enabled:
                OBS.registry.counter("serve.admission.admitted").inc()
            return AdmissionDecision(admitted=True,
                                     queued_for=self._clock() - entered)

    def release(self, decision: AdmissionDecision,
                service_s: float | None = None) -> None:
        """Return an admitted request's slot; update the EMA."""
        if not decision.admitted:
            return
        with self._lock:
            self._inflight -= 1
            if service_s is not None:
                self._avg_service_s = (0.8 * self._avg_service_s
                                       + 0.2 * max(0.0, service_s))
            self._set_gauges()
            self._slot_freed.notify()

    def _set_gauges(self) -> None:
        if OBS.enabled:
            OBS.registry.gauge("serve.admission.inflight").set(
                self._inflight)
            OBS.registry.gauge("serve.admission.queue_depth").set(
                self._queued)

    # -- drain ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; wake every queued waiter so it sheds."""
        with self._lock:
            self._draining = True
            self._slot_freed.notify_all()

    def drained(self, timeout_s: float) -> bool:
        """Wait for in-flight work to finish; True when fully drained."""
        deadline = self._clock() + timeout_s
        with self._lock:
            while self._inflight > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._slot_freed.wait(timeout=min(remaining, 0.05))
            return True
