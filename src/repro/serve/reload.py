"""Epoch-keyed hot reload: build in the background, swap atomically.

Filter lists churn constantly — "Who Filters the Filters" measures
EasyList changing every few hours — so for a serving daemon reloads are
routine, not exceptional, and the dangerous states are the quiet ones:
serving a half-loaded list, or crashing the serving path because a
candidate list failed to parse.  The reloader makes both impossible by
construction:

* the *candidate* snapshot is compiled off the serving path (the
  daemon runs it in a background thread) against private structures;
* the candidate is **validated before the swap** — unparseable or
  empty lists are rejected and the old epoch keeps serving (rollback
  is "don't swap", which cannot half-happen);
* the swap itself is one reference assignment under a lock, so every
  request sees exactly one complete snapshot, old or new;
* a reloader that *dies* mid-build (chaos-tested with the PR-3
  :class:`~repro.state.crashpoints.CrashInjector`) leaves the holder
  untouched: the old epoch serves until someone retries.

Each successful swap persists its source lists to the epoch-keyed
:class:`~repro.state.snapshots.SnapshotStore` (when one is attached),
plus the compiled filter-index artifact
(:mod:`repro.filters.compiled.artifact`) keyed by the same epoch and
content fingerprint — so a daemon restart, or a reload back to
previously served lists, skips keyword-bucket assignment and automaton
construction and adopts the prebuilt tables instead (falling back to a
from-scratch build on any artifact problem).

>>> from repro.serve.reload import SnapshotHolder, Reloader
>>> holder = SnapshotHolder.from_sources([("easylist", "||ads.example^")])
>>> reloader = Reloader(holder)
>>> result = reloader.reload([("easylist", "||ads.example^\\n||more.example^")])
>>> result.status, holder.current().epoch
('swapped', 2)
>>> bad = reloader.reload([("easylist", "")])
>>> bad.status, holder.current().epoch      # rollback: old epoch serves
('rejected', 2)
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.filters.compiled import (
    CompiledArtifactError,
    parse_artifact,
    serialize_artifact,
)
from repro.filters.engine import EngineSnapshot
from repro.filters.filterlist import parse_filter_list
from repro.obs import OBS
from repro.state.crashpoints import crashpoint
from repro.state.snapshots import SnapshotStore, content_fingerprint

__all__ = [
    "ReloadError",
    "ReloadResult",
    "SnapshotHolder",
    "Reloader",
    "build_snapshot_from_sources",
    "persist_snapshot_artifact",
    "validate_sources",
]


class ReloadError(ValueError):
    """A candidate snapshot failed validation (reload rejected)."""


@dataclass(frozen=True, slots=True)
class ReloadResult:
    """One reload attempt's explicit outcome."""

    status: str               # "swapped" | "rejected" | "crashed"
    epoch: int                # the epoch *serving after* the attempt
    error: str | None = None
    filters: int = 0          # active filters in the swapped snapshot


def validate_sources(sources: Sequence[tuple[str, str]]) -> None:
    """Reject candidate lists that must never reach the serving path.

    Rules: at least one list; list names non-empty and unique; every
    list parses to at least one active filter (an empty or fully
    malformed list is almost always an upstream fetch gone wrong, and
    swapping it in would silently flip every verdict to NO_MATCH —
    exactly the "stale or half-loaded list" drift the longitudinal
    blocklist studies warn about).
    """
    if not sources:
        raise ReloadError("no filter lists in candidate")
    seen: set[str] = set()
    for name, text in sources:
        if not name:
            raise ReloadError("candidate list with an empty name")
        if name in seen:
            raise ReloadError(f"duplicate list name {name!r} in candidate")
        seen.add(name)
        parsed = parse_filter_list(text, name=name)
        active = len(parsed)
        if active == 0:
            raise ReloadError(
                f"candidate list {name!r} parsed to 0 active filters")


def build_snapshot_from_sources(
        sources: Sequence[tuple[str, str]],
        store: SnapshotStore | None = None) -> EngineSnapshot:
    """Validate and compile ``(name, text)`` sources into a snapshot.

    With a ``store`` attached, the compiled filter-index artifact keyed
    by the sources' content fingerprint is tried first: a hit skips
    keyword-bucket assignment and automaton construction entirely (the
    lists are still parsed and validated — the artifact carries *index
    structure*, not filter semantics).  Any artifact problem — absent,
    corrupt, stale — falls back to the from-scratch build, so the
    artifact path can only ever make a reload faster, never wronger.

    The ``serve.reload.build`` crashpoint lets the chaos harness kill
    the builder mid-compile and prove the old epoch keeps serving.
    """
    validate_sources(sources)
    crashpoint("serve.reload.build")
    lists = [parse_filter_list(text, name=name) for name, text in sources]
    if store is not None:
        snapshot = _snapshot_from_artifact(sources, lists, store)
        if snapshot is not None:
            return snapshot
    return EngineSnapshot.build(lists)


def _snapshot_from_artifact(sources, lists, store):
    """The artifact fast path; ``None`` means "build from scratch"."""
    found = store.load_blob(content_fingerprint(sources))
    if found is None:
        _count_artifact_load("miss")
        return None
    _epoch, payload = found
    try:
        snapshot = parse_artifact(payload).build_snapshot(lists)
    except CompiledArtifactError:
        # parse/attach already counted the rejection under
        # filters.index.automaton_artifact{event=rejected}.
        return None
    _count_artifact_load("hit")
    return snapshot


def _count_artifact_load(event: str) -> None:
    if OBS.enabled:
        OBS.registry.counter("filters.index.automaton_artifact",
                             event=f"load_{event}").inc()


def persist_snapshot_artifact(store: SnapshotStore,
                              snapshot: EngineSnapshot,
                              sources: Sequence[tuple[str, str]]) -> None:
    """Save a swapped snapshot's sources *and* its compiled-index blob.

    The blob shares the source snapshot's epoch + content-fingerprint
    identity, so the next boot or reload of these exact lists loads the
    prebuilt tables instead of re-deriving them.
    """
    store.save(snapshot.epoch, sources)
    fingerprint = content_fingerprint(
        [(str(name), str(text)) for name, text in sources])
    store.save_blob(snapshot.epoch, fingerprint,
                    serialize_artifact(snapshot, fingerprint=fingerprint))


class SnapshotHolder:
    """The atomically-swappable reference to the serving snapshot.

    Readers call :meth:`current` (one lock acquisition, no copies);
    the reloader calls :meth:`swap`.  ``generation`` counts successful
    swaps — distinct from the engine epoch, which is a property of the
    compiled filter set (reloading identical lists keeps the epoch).
    """

    def __init__(self, snapshot: EngineSnapshot,
                 sources: Sequence[tuple[str, str]] = ()) -> None:
        self._lock = threading.Lock()
        self._snapshot = snapshot
        self._sources = list(sources)
        self.generation = 0

    @classmethod
    def from_sources(cls, sources: Sequence[tuple[str, str]],
                     store: SnapshotStore | None = None
                     ) -> "SnapshotHolder":
        """Boot a holder, loading the compiled artifact when available."""
        return cls(build_snapshot_from_sources(sources, store), sources)

    def current(self) -> EngineSnapshot:
        with self._lock:
            return self._snapshot

    def sources(self) -> list[tuple[str, str]]:
        with self._lock:
            return list(self._sources)

    def swap(self, snapshot: EngineSnapshot,
             sources: Sequence[tuple[str, str]]) -> int:
        with self._lock:
            self._snapshot = snapshot
            self._sources = list(sources)
            self.generation += 1
            return self.generation


class Reloader:
    """Builds candidate snapshots and swaps them in atomically.

    One reload runs at a time (``busy`` refusals are explicit, like
    every other outcome in this package).  ``state()`` exposes the
    state machine — ``idle`` → ``building`` → back to ``idle`` with the
    last result recorded — which ``/healthz`` reports verbatim.
    """

    def __init__(self, holder: SnapshotHolder,
                 store: SnapshotStore | None = None) -> None:
        self.holder = holder
        self.store = store
        #: The builder, as an instance attribute so the chaos harness
        #: can wedge it (block it mid-build) without monkeypatching
        #: the module.  The store rides along so repeat reloads of
        #: already-compiled lists take the artifact fast path.
        self._build = functools.partial(build_snapshot_from_sources,
                                        store=store)
        self._build_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._state = "idle"
        self._last: ReloadResult | None = None

    def _set_state(self, state: str,
                   result: ReloadResult | None = None) -> None:
        with self._state_lock:
            self._state = state
            if result is not None:
                self._last = result

    def state(self) -> dict:
        with self._state_lock:
            status = {"state": self._state,
                      "generation": self.holder.generation}
            if self._last is not None:
                status["last_reload"] = {
                    "status": self._last.status,
                    "epoch": self._last.epoch,
                    "error": self._last.error,
                }
            return status

    def reload(self, sources: Iterable[tuple[str, str]]) -> ReloadResult:
        """One reload attempt: validate → build → swap, or roll back.

        Never raises for a bad candidate — rejection *is* the rollback
        (the holder is only touched after a fully validated build).  A
        :class:`~repro.state.crashpoints.SimulatedCrash` (chaos) is
        recorded as ``crashed`` and re-raised so the harness sees the
        death, with the holder untouched either way.
        """
        sources = [(str(name), str(text)) for name, text in sources]
        if not self._build_lock.acquire(blocking=False):
            return ReloadResult(
                status="rejected",
                epoch=self.holder.current().epoch,
                error="a reload is already in progress")
        try:
            self._set_state("building")
            try:
                candidate = self._build(sources)
            except ReloadError as exc:
                result = ReloadResult(status="rejected",
                                      epoch=self.holder.current().epoch,
                                      error=str(exc))
                self._count(result)
                self._set_state("idle", result)
                return result
            except BaseException as exc:
                # The chaos harness's simulated reloader death (or any
                # unexpected builder bug): record it, leave the old
                # snapshot serving, and let the exception propagate to
                # whoever owns the thread.
                result = ReloadResult(status="crashed",
                                      epoch=self.holder.current().epoch,
                                      error=f"{type(exc).__name__}: {exc}")
                self._count(result)
                self._set_state("idle", result)
                raise
            self.holder.swap(candidate, sources)
            if self.store is not None:
                persist_snapshot_artifact(self.store, candidate, sources)
            result = ReloadResult(status="swapped", epoch=candidate.epoch,
                                  filters=candidate.filter_count)
            self._count(result)
            self._set_state("idle", result)
            return result
        finally:
            self._build_lock.release()

    @staticmethod
    def _count(result: ReloadResult) -> None:
        if OBS.enabled:
            OBS.registry.counter("serve.reloads",
                                 result=result.status).inc()
            OBS.registry.gauge("serve.reload.epoch").set(result.epoch)
        OBS.flight.record(f"reload.{result.status}", epoch=result.epoch,
                          filters=result.filters, error=result.error)
