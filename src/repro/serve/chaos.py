"""Chaos harness: hostile clients + a dying reloader, with accounting.

The robustness acceptance for the serving daemon is an *accounting*
property: under concurrent load from slow and flaky clients, with a
reload swapping snapshots mid-flight and the reloader being killed or
wedged, **every request ends in exactly one explicit outcome** — no
hangs, no silent drops — and the daemon stays healthy throughout.

This module is the attack side of that contract.  It reuses the
repo's existing fault machinery instead of inventing new randomness:

* :class:`~repro.web.faults.FaultPlan` (PR 1) assigns each client
  request its misbehaviour deterministically — the same seeded,
  order-independent salt-and-hash draw the crawl fault layer uses —
  so a chaos run is exactly reproducible;
* :class:`~repro.state.crashpoints.CrashInjector` (PR 3) kills the
  reload build at the ``serve.reload.build`` crashpoint, simulating a
  reloader death mid-compile;
* a *wedge* blocks the build on an event the test controls, pinning
  the reloader's build lock to prove a wedged reload cannot take the
  serving path down with it.

Client misbehaviours (mapped from the fault plan's kinds):

=================  ====================================================
``slow``           dribbles the request bytes with pauses (tarpit client)
``abort``          sends the request, then closes without reading — the
                   daemon must finish and count the outcome anyway
``tiny-deadline``  sends a hopeless ``X-Repro-Deadline-Ms`` so the
                   request sheds or degrades, never hangs
``normal``         a well-behaved request
=================  ====================================================
"""

from __future__ import annotations

import json
import socket
import threading
from dataclasses import dataclass, field

from repro.serve.daemon import ServeDaemon
from repro.serve.reload import Reloader
from repro.state.crashpoints import CrashInjector, SimulatedCrash, crashing
from repro.web.faults import FaultKind, FaultPlan

__all__ = ["ChaosReport", "chaos_behaviour", "run_chaos_clients",
           "kill_reloader", "wedge_reloader"]

#: How fault-plan kinds map onto client misbehaviours.
_BEHAVIOUR_OF_KIND = {
    FaultKind.SLOW_RESPONSE: "slow",
    FaultKind.READ_TIMEOUT: "slow",
    FaultKind.FLAKY: "abort",
    FaultKind.DNS_FAILURE: "abort",
    FaultKind.CONNECT_TIMEOUT: "abort",
    FaultKind.SERVER_ERROR: "tiny-deadline",
    FaultKind.TRUNCATED_BODY: "tiny-deadline",
    FaultKind.REDIRECT_LOOP: "normal",
}


def chaos_behaviour(plan: FaultPlan, client: int, request: int) -> str:
    """The deterministic misbehaviour for one (client, request) pair."""
    fault = plan.fault_for(f"chaos.client{client}.request{request}")
    if fault is None:
        return "normal"
    return _BEHAVIOUR_OF_KIND.get(fault.kind, "normal")


@dataclass
class ChaosReport:
    """Where every chaos request ended up.  ``accounted`` must be total."""

    sent: int = 0
    served: int = 0
    degraded: int = 0
    shed_overload: int = 0      # HTTP 429
    shed_unavailable: int = 0   # HTTP 503 (draining)
    errors: int = 0             # HTTP 4xx/5xx others (incl. 400)
    aborted: int = 0            # the *client* walked away on purpose
    hung: int = 0               # socket timeout — must stay 0
    transport: int = 0          # unexpected connection loss — must stay 0
    by_status: dict[int, int] = field(default_factory=dict)

    def merge(self, other: "ChaosReport") -> None:
        self.sent += other.sent
        self.served += other.served
        self.degraded += other.degraded
        self.shed_overload += other.shed_overload
        self.shed_unavailable += other.shed_unavailable
        self.errors += other.errors
        self.aborted += other.aborted
        self.hung += other.hung
        self.transport += other.transport
        for status, count in other.by_status.items():
            self.by_status[status] = self.by_status.get(status, 0) + count

    @property
    def accounted(self) -> int:
        return (self.served + self.degraded + self.shed_overload
                + self.shed_unavailable + self.errors + self.aborted
                + self.hung + self.transport)


def _raw_request(host: str, port: int, body: bytes, *,
                 behaviour: str, timeout_s: float) -> tuple[int, bytes]:
    """One hand-rolled HTTP POST so misbehaviour is byte-controllable.

    Returns ``(status, body)``; status ``-1`` means the client aborted
    on purpose, ``-2`` a timeout (a hang), ``-3`` unexpected loss.
    """
    headers = [
        b"POST /v1/match HTTP/1.1",
        b"Host: chaos",
        b"Content-Type: application/json",
        b"Content-Length: " + str(len(body)).encode(),
        b"Connection: close",
    ]
    if behaviour == "tiny-deadline":
        headers.append(b"X-Repro-Deadline-Ms: 0.001")
    payload = b"\r\n".join(headers) + b"\r\n\r\n" + body
    try:
        with socket.create_connection((host, port),
                                      timeout=timeout_s) as sock:
            if behaviour == "slow":
                # Tarpit client: dribble the payload in small chunks.
                # Short, bounded pauses — slow enough to interleave
                # with other traffic, never slow enough to hang.
                for start in range(0, len(payload), 64):
                    sock.sendall(payload[start:start + 64])
            else:
                sock.sendall(payload)
            if behaviour == "abort":
                # Walk away before reading the answer.
                return -1, b""
            chunks: list[bytes] = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
    except (TimeoutError, socket.timeout):
        return -2, b""
    except OSError:
        return -3, b""
    raw = b"".join(chunks)
    if not raw:
        return -3, b""
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, rest


def run_chaos_clients(daemon: ServeDaemon, corpus: list[dict], *,
                      clients: int = 4, requests_per_client: int = 25,
                      fault_rate: float = 0.5, seed: int = 7,
                      timeout_s: float = 30.0) -> ChaosReport:
    """Slam ``daemon`` with seeded hostile clients; account for all."""
    host, port = daemon.address
    plan = FaultPlan.uniform(fault_rate, seed=seed)
    reports = [ChaosReport() for _ in range(clients)]

    def client_loop(index: int) -> None:
        report = reports[index]
        for number in range(requests_per_client):
            behaviour = chaos_behaviour(plan, index, number)
            request = corpus[(index + number * clients) % len(corpus)]
            body = json.dumps(request).encode("utf-8")
            report.sent += 1
            status, raw = _raw_request(host, port, body,
                                       behaviour=behaviour,
                                       timeout_s=timeout_s)
            if status == -1:
                report.aborted += 1
                continue
            if status == -2:
                report.hung += 1
                continue
            if status == -3:
                report.transport += 1
                continue
            report.by_status[status] = report.by_status.get(status, 0) + 1
            if status == 200:
                outcome = json.loads(raw.decode("utf-8"))["outcome"]
                if outcome == "served":
                    report.served += 1
                else:
                    report.degraded += 1
            elif status == 429:
                report.shed_overload += 1
            elif status == 503:
                report.shed_unavailable += 1
            else:
                report.errors += 1

    threads = [threading.Thread(target=client_loop, args=(index,),
                                name=f"chaos-client-{index}")
               for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s * requests_per_client)
    total = ChaosReport()
    for report in reports:
        total.merge(report)
    return total


def kill_reloader(reloader: Reloader,
                  sources: list[tuple[str, str]]) -> bool:
    """Kill the reload build mid-compile; True when the death landed.

    Installs a PR-3 :class:`CrashInjector` aimed at the
    ``serve.reload.build`` crashpoint, so the builder dies after
    validation but before the swap — the worst moment.  The holder
    must be untouched (callers assert the stale epoch keeps serving).
    """
    try:
        with crashing(CrashInjector(at_step=1)):
            reloader.reload(sources)
    except SimulatedCrash:
        return True
    return False


def wedge_reloader(reloader: Reloader,
                   sources: list[tuple[str, str]],
                   wedged: threading.Event,
                   release: threading.Event) -> threading.Thread:
    """Start a reload that wedges mid-build until ``release`` is set.

    The wedge holds the reloader's build lock (subsequent reloads are
    explicitly rejected as busy) but never the serving path — the test
    asserts match traffic flows while the wedge is in place.
    """
    original_build = reloader._build

    def wedging_build(src):
        wedged.set()
        release.wait(timeout=60.0)
        return original_build(src)

    reloader._build = wedging_build

    def run() -> None:
        try:
            reloader.reload(sources)
        finally:
            reloader._build = original_build

    thread = threading.Thread(target=run, name="wedged-reload",
                              daemon=True)
    thread.start()
    return thread
