"""Section 7: mining the undocumented "A-filter" groups.

The paper identifies 61 instances of Eyeo adding whitelist filters
without community vetting.  Their fingerprints:

* each group is introduced in the list by a nondescript ``!A<n>``
  comment (no description, no forum link);
* the commits adding them carry the repeated message
  "Updated whitelists." (one used "Added new whitelists.") instead of a
  forum-topic link;
* five groups were later removed; one of those (A7) was re-added under
  a different number (A28) with identical filters.

This module mines all of that from a repository: it walks every
changeset, attributes filters to A-groups positionally (a group is its
marker comment plus the filters added with it), and reports additions,
removals, re-additions, and per-group contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filters.parser import A_GROUP_RE, FORUM_LINK_RE
from repro.history.repository import Repository

__all__ = ["AGroup", "AFilterReport", "mine_a_filters"]


@dataclass(slots=True)
class AGroup:
    """One ``!A<n>`` group's lifecycle."""

    number: int
    added_rev: int
    filters: tuple[str, ...]
    commit_message: str
    removed_rev: int | None = None
    readded_as: int | None = None   # e.g. A7 -> 28

    @property
    def active(self) -> bool:
        return self.removed_rev is None

    @property
    def publicly_disclosed(self) -> bool:
        """Did the introducing commit link a forum topic?"""
        return FORUM_LINK_RE.search(self.commit_message) is not None


@dataclass(slots=True)
class AFilterReport:
    """Aggregate Section 7 findings."""

    groups: dict[int, AGroup] = field(default_factory=dict)

    @property
    def total_added(self) -> int:
        return len(self.groups)

    @property
    def removed(self) -> list[AGroup]:
        return [g for g in self.groups.values() if not g.active]

    @property
    def active(self) -> list[AGroup]:
        return [g for g in self.groups.values() if g.active]

    @property
    def readded(self) -> list[AGroup]:
        return [g for g in self.groups.values() if g.readded_as is not None]

    @property
    def undisclosed(self) -> list[AGroup]:
        return [g for g in self.groups.values() if not g.publicly_disclosed]

    def filters_in_groups(self) -> int:
        return sum(len(g.filters) for g in self.groups.values())


def mine_a_filters(repo: Repository) -> AFilterReport:
    """Mine every A-group's lifecycle from the full history."""
    report = AFilterReport()

    for changeset in repo.log():
        # Group additions: an ``!A<n>`` comment followed by the filters
        # added in the same changeset (positionally, until the next
        # comment line).
        added = list(changeset.added)
        for index, line in enumerate(added):
            match = A_GROUP_RE.match(line)
            if not match:
                continue
            number = int(match.group(1))
            filters: list[str] = []
            for follower in added[index + 1:]:
                if follower.startswith("!"):
                    break
                filters.append(follower)
            report.groups[number] = AGroup(
                number=number,
                added_rev=changeset.rev,
                filters=tuple(filters),
                commit_message=changeset.message,
            )

        # Group removals: the marker comment disappearing.
        for line in changeset.removed:
            match = A_GROUP_RE.match(line)
            if match:
                number = int(match.group(1))
                group = report.groups.get(number)
                if group is not None:
                    group.removed_rev = changeset.rev

    # Re-addition detection: a removed group whose exact filter set
    # reappears under a different number.
    by_content: dict[tuple[str, ...], list[AGroup]] = {}
    for group in report.groups.values():
        by_content.setdefault(group.filters, []).append(group)
    for twins in by_content.values():
        if len(twins) < 2:
            continue
        twins.sort(key=lambda g: g.added_rev)
        for earlier, later in zip(twins, twins[1:]):
            if (earlier.removed_rev is not None
                    and later.added_rev > earlier.removed_rev):
                earlier.readded_as = later.number

    return report
