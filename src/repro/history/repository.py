"""A Mercurial-like revision store for filter lists.

Eyeo tracks the Acceptable Ads whitelist in a public Mercurial
repository; the paper extracts all 988 revisions and mines them.  This
module is the storage layer: an append-only sequence of
:class:`Changeset` deltas (lines added / lines removed, plus date and
commit message), with snapshot reconstruction, ranged diffs, and the
integrity checks a real VCS enforces (you cannot remove a line that is
not present, nor add an exact duplicate of a tracked *unique* line —
duplicates must be added explicitly as such, mirroring how the real
whitelist ended up with 35 of them).

Revision numbering follows the paper: the first changeset is Rev 0, the
terminal one studied is Rev 988 (989 revisions in total).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from datetime import date
from typing import Iterable, Iterator

__all__ = ["Changeset", "Repository", "RepositoryError"]


class RepositoryError(ValueError):
    """Raised on inconsistent changesets (bad removals, dates, revs)."""


@dataclass(frozen=True, slots=True)
class Changeset:
    """One revision: metadata plus a line-level delta."""

    rev: int
    when: date
    message: str
    added: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()

    @property
    def churn(self) -> int:
        return len(self.added) + len(self.removed)


class Repository:
    """An append-only filter-list history.

    The working content is a *multiset* of lines with stable ordering
    (insertion order; removals delete one occurrence).  Snapshots are
    reconstructed by replaying deltas, with a periodic snapshot cache so
    ``checkout`` stays fast for any revision.
    """

    _SNAPSHOT_EVERY = 64

    def __init__(self, name: str = "exceptionrules") -> None:
        self.name = name
        self._changesets: list[Changeset] = []
        self._content: list[str] = []
        self._snapshots: dict[int, tuple[str, ...]] = {}

    # -- commit -----------------------------------------------------------

    def commit(self, when: date, message: str,
               added: Iterable[str] = (),
               removed: Iterable[str] = ()) -> Changeset:
        """Append a changeset; returns it.

        Raises :class:`RepositoryError` when a removed line is absent or
        the date precedes the previous changeset's date.
        """
        added_t = tuple(added)
        removed_t = tuple(removed)
        if self._changesets and when < self._changesets[-1].when:
            raise RepositoryError(
                f"changeset date {when} precedes tip "
                f"{self._changesets[-1].when}")
        working = list(self._content)
        for line in removed_t:
            try:
                working.remove(line)
            except ValueError:
                raise RepositoryError(
                    f"cannot remove absent line {line!r}") from None
        working.extend(added_t)
        changeset = Changeset(rev=len(self._changesets), when=when,
                              message=message, added=added_t,
                              removed=removed_t)
        self._changesets.append(changeset)
        self._content = working
        if changeset.rev % self._SNAPSHOT_EVERY == 0:
            self._snapshots[changeset.rev] = tuple(working)
        return changeset

    # -- history access ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._changesets)

    @property
    def tip(self) -> Changeset:
        if not self._changesets:
            raise RepositoryError("empty repository has no tip")
        return self._changesets[-1]

    def _check_rev(self, rev: int) -> int:
        """Validate a revision number, mirroring ``hg``'s own refusal.

        Negative and past-the-end revisions raise
        :class:`RepositoryError` naming the valid range — Python-style
        negative indexing is deliberately not supported, since a
        computed ``rev`` going negative is a caller bug that silent
        tail-indexing would turn into a wrong answer.
        """
        if not isinstance(rev, int) or isinstance(rev, bool):
            raise RepositoryError(
                f"revision must be an integer, got {rev!r}")
        if not 0 <= rev < len(self._changesets):
            if not self._changesets:
                raise RepositoryError(
                    f"no such revision {rev}: repository is empty")
            raise RepositoryError(
                f"no such revision {rev}: valid range is "
                f"0..{len(self._changesets) - 1}")
        return rev

    def __getitem__(self, rev: int) -> Changeset:
        return self._changesets[self._check_rev(rev)]

    def log(self) -> Iterator[Changeset]:
        """All changesets, oldest first."""
        return iter(self._changesets)

    def checkout(self, rev: int) -> list[str]:
        """The full list content as of revision ``rev`` (inclusive)."""
        self._check_rev(rev)
        if rev == len(self._changesets) - 1:
            return list(self._content)
        # Rev 0 always has a snapshot (0 % _SNAPSHOT_EVERY == 0), so the
        # nearest snapshot at or below ``rev`` always exists.
        base_rev = (rev // self._SNAPSHOT_EVERY) * self._SNAPSHOT_EVERY
        content = list(self._snapshots[base_rev])
        for changeset in self._changesets[base_rev + 1:rev + 1]:
            for line in changeset.removed:
                content.remove(line)
            content.extend(changeset.added)
        return content

    def diff(self, rev_a: int, rev_b: int) -> tuple[list[str], list[str]]:
        """Aggregate (added, removed) between two revisions (a < b).

        Lines both added and removed inside the range cancel out, like a
        real ``hg diff -r a -r b``.
        """
        self._check_rev(rev_a)
        self._check_rev(rev_b)
        if rev_a > rev_b:
            raise RepositoryError("diff requires rev_a <= rev_b")
        from collections import Counter

        before = Counter(self.checkout(rev_a))
        after = Counter(self.checkout(rev_b))
        added: list[str] = []
        removed: list[str] = []
        for line, count in (after - before).items():
            added.extend([line] * count)
        for line, count in (before - after).items():
            removed.extend([line] * count)
        return added, removed

    def revisions_in_year(self, year: int) -> list[Changeset]:
        return [c for c in self._changesets if c.when.year == year]

    def rev_at_date(self, when: date) -> int | None:
        """Last revision committed on or before ``when`` (None if none)."""
        dates = [c.when for c in self._changesets]
        index = bisect.bisect_right(dates, when) - 1
        return index if index >= 0 else None
