"""Synthesise the full Acceptable Ads whitelist history.

The paper mines 989 Mercurial revisions (Oct 2011 – Apr 28 2015) of the
``exceptionrules`` list.  This module regenerates an equivalent history,
calibrated so every downstream analysis reproduces the paper:

* Table 1's yearly revision / filter / domain activity — **exactly**;
* Figure 3's growth curve, including the Rev-200 Google jump (+1,262
  filters) and the late-2013 ask.com/about.com jump;
* the Section 4.2 scope composition at the tip (≈89% restricted, 156
  unrestricted filters, 25 sitekey filters over 4 active keys);
* Section 7's A-filter groups (61 added, 5 removed, A7 re-added as A28,
  A59's unrestricted AdSense filter, the "Updated whitelists." commit
  message fingerprint);
* Section 8's hygiene defects (35 duplicate lines, 8 filters truncated
  at 4,095 characters in Rev 326).

Where the paper's own numbers are internally inconsistent (Table 1's
domain arithmetic nets 3,132 FQDs while Section 4.2.1 reports 3,545),
we hit Table 1 exactly and land the final domain count in between; the
deviation is documented in EXPERIMENTS.md.

The output bundles the repository with the resolved study population
and a *publisher directory* (domain -> restricted filters), which the
site survey uses to wire whitelisted publishers' pages to their filters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, timedelta

from repro.history.repository import Repository
from repro.measurement.alexa import StudyPopulation, build_study_population
from repro.state.checkpoint import Checkpoint, restore_rng, snapshot_rng
from repro.sitekey.der import public_key_to_base64
from repro.sitekey.parking import PARKING_SERVICES, ParkingService
from repro.web.adnetworks import whitelisted_networks
from repro.web.sites import PINNED_PROFILES

__all__ = [
    "YearTargets",
    "YEARLY_TARGETS",
    "WhitelistHistory",
    "generate_history",
    "FORUM_URL",
]

FORUM_URL = "https://adblockplus.org/forum/viewtopic.php?f=12&t={topic}"

#: The Rev-326 truncation limit (Section 8).
_TRUNCATION_LENGTH = 4095


@dataclass(frozen=True, slots=True)
class YearTargets:
    """Table 1 calibration targets for one year."""

    revisions: int
    filters_added: int
    filters_removed: int
    domains_added: int
    domains_removed: int


#: Canonicalised Table 1 (the paper's printed totals are internally
#: inconsistent by 17 filter removals; we distribute the slack over
#: 2013/2014 so the terminal list lands at exactly 5,936 filters).
YEARLY_TARGETS: dict[int, YearTargets] = {
    2011: YearTargets(26, 25, 0, 5, 0),
    2012: YearTargets(47, 225, 30, 59, 5),
    2013: YearTargets(311, 5152, 1565, 2248, 73),
    2014: YearTargets(386, 2179, 782, 859, 125),
    2015: YearTargets(219, 1227, 495, 371, 207),
}

_YEAR_SPANS = {
    2011: (date(2011, 10, 3), date(2011, 12, 30)),
    2012: (date(2012, 1, 4), date(2012, 12, 29)),
    2013: (date(2013, 1, 3), date(2013, 12, 30)),
    2014: (date(2014, 1, 2), date(2014, 12, 30)),
    2015: (date(2015, 1, 2), date(2015, 4, 28)),
}


@dataclass
class WhitelistHistory:
    """The generated history plus everything keyed off it."""

    repository: Repository
    population: StudyPopulation
    #: FQD -> the restricted whitelist filters naming it (tip state).
    publisher_directory: dict[str, tuple[str, ...]]
    #: Parking service name -> base64 sitekey in the whitelist.
    sitekeys: dict[str, str]
    seed: int
    key_bits: int

    def tip_lines(self) -> list[str]:
        return self.repository.checkout(len(self.repository) - 1)

    def tip_filter_list(self):
        from repro.filters.filterlist import parse_filter_list

        return parse_filter_list("\n".join(self.tip_lines()),
                                 name="exceptionrules")


# ---------------------------------------------------------------------------
# Internal planning structures
# ---------------------------------------------------------------------------

@dataclass
class _RevPlan:
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    message: str | None = None
    mods: int = 0
    extras: int = 0


class _Plan:
    """Mutable per-revision schedule with uniqueness bookkeeping."""

    def __init__(self, total_revs: int) -> None:
        self.revs = [_RevPlan() for _ in range(total_revs)]
        self._topic = 1000

    def next_topic(self) -> int:
        self._topic += 1
        return self._topic

    def add(self, rev: int, lines: list[str], message: str,
            comment: str | None = None) -> None:
        plan = self.revs[rev]
        if comment is not None:
            plan.added.append(comment)
        plan.added.extend(lines)
        if plan.message is None:
            plan.message = message

    def remove(self, rev: int, lines: list[str], message: str) -> None:
        plan = self.revs[rev]
        plan.removed.extend(lines)
        if plan.message is None:
            plan.message = message


def _is_filter_line(line: str) -> bool:
    return bool(line) and not line.startswith("!")


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------

def generate_history(seed: int = 2015, key_bits: int = 512,
                     population: StudyPopulation | None = None,
                     checkpoint: Checkpoint | None = None
                     ) -> WhitelistHistory:
    """Generate the full 989-revision whitelist history.

    ``key_bits`` sets the parking sitekey strength (512 reproduces the
    paper; tests use smaller keys for speed).  The result is fully
    deterministic in ``(seed, key_bits)``.

    With a :class:`~repro.state.checkpoint.Checkpoint`, every committed
    revision is journaled; a resumed run re-derives the (deterministic)
    plan and replays journaled revisions instead of re-rolling them, so
    the result is identical to an uninterrupted run.  The checkpoint is
    caller-owned and pinned to ``(seed, key_bits)``.
    """
    builder = _HistoryBuilder(seed=seed, key_bits=key_bits,
                              population=population)
    return builder.build(checkpoint=checkpoint)


class _HistoryBuilder:
    def __init__(self, seed: int, key_bits: int,
                 population: StudyPopulation | None) -> None:
        self.seed = seed
        self.key_bits = key_bits
        self.rng = random.Random(seed ^ 0xACCE55)
        self.population = population or build_study_population(seed)

        self.calendar: list[date] = []
        self.year_of_rev: list[int] = []
        self.plan: _Plan | None = None

        # Generic-publisher pool (e2LDs) and allocation cursors.
        self.pool = [p.e2ld for p in self.population.generic_pool]
        self.rng.shuffle(self.pool)
        self._pool_root_cursor = 0
        self._pool_www_cursor = 0
        self._a_group_cursor = len(self.pool) - 1  # A-groups draw from the end

        self.publisher_directory: dict[str, list[str]] = {}
        self.sitekeys: dict[str, str] = {}
        self._active_texts: set[str] = set()
        self._modifiable: list[str] = []
        self._mod_counter = 0
        self._extra_counter = 0
        self._unrestricted_fillers = self._make_unrestricted_fillers()
        self._duplicates_budget = 35
        self._churn_texts: set[str] = set()
        self._dup_texts: set[str] = set()
        self._domain_cache: dict[str, tuple[str, ...]] = {}
        self._sitekey_lines: dict[str, list[str]] = {}
        #: Revisions that must stay "pure" (landmark groups): balance
        #: fills stay off them so positional group mining is exact.
        self._reserved_revs: set[int] = set()

    # -- fundamental helpers --------------------------------------------

    def _build_calendar(self) -> None:
        for year, targets in YEARLY_TARGETS.items():
            start, end = _YEAR_SPANS[year]
            span = (end - start).days
            for i in range(targets.revisions):
                offset = round(i * span / max(1, targets.revisions - 1))
                self.calendar.append(start + timedelta(days=offset))
                self.year_of_rev.append(year)

    def _year_revs(self, year: int) -> range:
        first = self.year_of_rev.index(year)
        last = len(self.year_of_rev) - 1 - self.year_of_rev[::-1].index(year)
        return range(first, last + 1)

    def _rev_for_date(self, when: date) -> int:
        for rev, rev_date in enumerate(self.calendar):
            if rev_date >= when:
                return rev
        return len(self.calendar) - 1

    def _register(self, lines: list[str]) -> None:
        for line in lines:
            if _is_filter_line(line):
                self._active_texts.add(line)

    def _unregister(self, lines: list[str]) -> None:
        for line in lines:
            self._active_texts.discard(line)

    def _record_publisher(self, filters: list[str]) -> None:
        from repro.filters.parser import parse_filter

        for text in filters:
            parsed = parse_filter(text)
            for domain in getattr(parsed, "restricted_domains", ()):
                self.publisher_directory.setdefault(domain, [])
                if text not in self.publisher_directory[domain]:
                    self.publisher_directory[domain].append(text)

    # -- content factories ------------------------------------------------

    def _a_group_domain(self) -> str:
        if self._a_group_cursor <= self._pool_root_cursor:
            raise RuntimeError("generic pool exhausted (A-groups)")
        e2ld = self.pool[self._a_group_cursor]
        self._a_group_cursor -= 1
        return e2ld

    def _generic_fqd(self) -> str:
        """Next generic publisher FQD: fresh roots first, then www
        variants of already-used e2LDs."""
        if self._pool_root_cursor < self._a_group_cursor:
            e2ld = self.pool[self._pool_root_cursor]
            self._pool_root_cursor += 1
            return e2ld
        if self._pool_www_cursor >= len(self.pool):
            raise RuntimeError("generic pool exhausted (www variants)")
        e2ld = self.pool[self._pool_www_cursor]
        self._pool_www_cursor += 1
        return f"www.{e2ld}"

    def _base_filter(self, fqd: str) -> str:
        from repro.web.url import registered_domain

        e2ld = registered_domain(fqd)
        return (f"@@||adserv.genericnet.com/slot/{e2ld}/"
                f"$script,domain={fqd}")

    def _extra_filter(self, fqd: str) -> str:
        self._extra_counter += 1
        return (f"@@||trackpix{self._extra_counter}.net/px.gif"
                f"$image,domain={fqd}")

    def _make_unrestricted_fillers(self) -> list[str]:
        """The long tail of unrestricted conversion-tracking filters.

        Catalog networks contribute their real filters; synthetic
        trackers fill the count to the paper's 156 unrestricted filters.
        """
        catalog: list[str] = []
        for net in whitelisted_networks():
            catalog.extend(net.whitelist_filters)
        # A59 contributes two further unrestricted filters beyond its
        # catalog AdSense entry, so the synthetic tail accounts for them.
        synthetic_needed = 156 - len(catalog) - 2
        synthetic = [
            f"@@||convtrack{i:03d}-metrics.com^$third-party"
            for i in range(synthetic_needed)
        ]
        return catalog + synthetic

    # -- group schedules ----------------------------------------------------

    def _schedule_structure(self) -> None:
        assert self.plan is not None
        plan = self.plan
        fillers = list(self._unrestricted_fillers)

        # Google-property exceptions scheduled with the Rev-200 jump.
        google_markers = ("stats.g.doubleclick", "gstatic",
                          "googleadservices.com^", "googlesyndication",
                          "g.doubleclick.net/pagead",
                          "google-analytics.com/conversion")
        self._google_catalog_filters = [
            f for f in fillers if any(m in f for m in google_markers)]
        for text in self._google_catalog_filters:
            fillers.remove(text)

        def take_fillers(names: list[str]) -> list[str]:
            taken = [f for f in fillers if any(n in f for n in names)]
            for f in taken:
                fillers.remove(f)
            return taken

        # ---- 2011: initial list, Sedo sitekey, early trackers --------
        reddit = list(PINNED_PROFILES["reddit.com"].whitelist_filters)
        initial_pool = [self._base_filter(self._generic_fqd())
                        for _ in range(4)]
        early = take_fillers(["convtrack000", "convtrack001"])
        plan.add(0, reddit + initial_pool + early,
                 "Initial acceptable ads whitelist "
                 + FORUM_URL.format(topic=plan.next_topic()),
                 comment="! Acceptable ads exceptions")
        self._record_publisher(reddit + initial_pool)

        sedo = next(s for s in PARKING_SERVICES if s.name == "Sedo")
        self._schedule_sitekey_group(sedo, count=7)

        # The rest of 2011's additions are small conversion trackers —
        # Google's heavyweight exceptions only arrive with Rev 200.
        more_2011 = take_fillers(
            [f"convtrack{i:03d}" for i in range(2, 11)])[:9]
        revs_2011 = list(self._year_revs(2011))
        for i, text in enumerate(more_2011):
            rev = revs_2011[2 + i * 2]
            plan.add(rev, [text],
                     "Allow conversion tracking "
                     + FORUM_URL.format(topic=plan.next_topic()))

        # ---- 2012: golem's odd filters, influads, generic growth -----
        golem_v1 = [
            "@@||google.com/ads/search/module/ads/*/search.js"
            "$domain=suche.golem.de|www.google.com",
            "www.google.com#@##adBlock",
        ]
        plan.add(67, golem_v1,
                 "Search ads for golem.de "
                 + FORUM_URL.format(topic=plan.next_topic()),
                 comment="! golem.de search ads")
        influads = take_fillers(["influads"])
        plan.add(40, influads,
                 "Whitelist Influads " + FORUM_URL.format(topic=plan.next_topic()),
                 comment="! Influads network")

        # ---- 2013: golem fix, Google jump, parking, A-groups, ask/about
        golem_v2 = [PINNED_PROFILES["golem.de"].whitelist_filters[0]]
        plan.remove(75, golem_v1, "Cleaned up golem.de filters")
        plan.add(75, golem_v2, "Cleaned up golem.de filters")
        self._record_publisher(golem_v2)

        self._schedule_google_jump(rev=200)

        for name, when, count in (("ParkingCrew", date(2013, 5, 27), 6),
                                  ("RookMedia", date(2013, 7, 31), 3),
                                  ("Uniregistry", date(2013, 9, 25), 6),
                                  ("Digimedia", date(2014, 7, 2), 6)):
            service = next(s for s in PARKING_SERVICES if s.name == name)
            self._schedule_sitekey_group(service, count=count)

        pagefair = take_fillers(["pagefair", "admarketplace"])
        plan.add(260, pagefair,
                 "Whitelist PageFair "
                 + FORUM_URL.format(topic=plan.next_topic()),
                 comment="! PageFair acceptable ads")

        self._schedule_a_groups()
        self._schedule_about_block(rev=350)
        self._schedule_truncated(rev=326)

        pinned_2013 = ["amazon.com", "bing.com", "yahoo.com", "imgur.com",
                       "ebay.com", "cracked.com", "kayak.com",
                       "utopia-game.com"]
        revs_2013 = list(self._year_revs(2013))
        for i, domain in enumerate(pinned_2013):
            filters = list(PINNED_PROFILES[domain].whitelist_filters)
            rev = revs_2013[30 + i * 7]
            plan.add(rev, filters,
                     f"Whitelist {domain} "
                     + FORUM_URL.format(topic=plan.next_topic()),
                     comment=f"! {domain}")
            self._record_publisher(filters)

        # ---- 2014: Digimedia (scheduled above), RookMedia removal,
        # pinned late publishers --------------------------------------
        rook_lines = self._sitekey_lines.get("RookMedia", [])
        plan.remove(self._rev_for_date(date(2014, 9, 16)),
                    rook_lines + ["! Text ads on RookMedia parking domains"],
                    "Removed Rook Media")

        pinned_2014 = ["viralnova.com", "isitup.org"]
        revs_2014 = list(self._year_revs(2014))
        for i, domain in enumerate(pinned_2014):
            filters = list(PINNED_PROFILES[domain].whitelist_filters)
            plan.add(revs_2014[20 + i * 9], filters,
                     f"Whitelist {domain} "
                     + FORUM_URL.format(topic=plan.next_topic()),
                     comment=f"! {domain}")
            self._record_publisher(filters)

        # ---- remaining unrestricted fillers, spread over 2012-2015 ----
        # (A59's unrestricted AdSense filter is scheduled by
        # _schedule_a_groups and excluded from the generic spread.)
        fillers = [f for f in fillers if "adsense/search/ads.js" not in f]
        spread_years = [2012] * 15 + [2013] * 65 + [2014] * 45 + [2015] * 25
        if len(spread_years) < len(fillers):
            raise RuntimeError("unrestricted filler spread too short")
        rng = self.rng
        for text, year in zip(fillers, spread_years):
            revs = self._year_revs(year)
            rev = rng.randrange(revs.start + 5, revs.stop - 2)
            while rev in self._reserved_revs:
                rev += 1
            plan.add(rev, [text],
                     "Allow conversion tracking "
                     + FORUM_URL.format(topic=plan.next_topic()))

    # sitekey groups -------------------------------------------------------

    def _schedule_sitekey_group(self, service: ParkingService,
                                count: int) -> None:
        assert self.plan is not None
        key_b64 = public_key_to_base64(
            service.keypair(bits=self.key_bits).public)
        self.sitekeys[service.name] = key_b64
        lines = [f"@@$sitekey={key_b64},document"]
        if count >= 2:
            lines.append(f"@@$sitekey={key_b64},elemhide")
        for i in range(count - len(lines)):
            lines.append(
                f"@@||parkfeed{i}.{service.name.lower()}-ads.com^"
                f"$third-party,sitekey={key_b64}")
        rev = self._rev_for_date(service.whitelisted)
        self.plan.add(
            rev, lines,
            f"Text ads on {service.name} parking domains "
            + FORUM_URL.format(topic=self.plan.next_topic()),
            comment=f"! Text ads on {service.name} parking domains")
        self._sitekey_lines[service.name] = lines

    # Google / about blocks --------------------------------------------------

    def _schedule_google_jump(self, rev: int) -> None:
        assert self.plan is not None
        cctlds = [p.e2ld for p in self.population.publishers
                  if p.kind == "google-cctld"]
        lines: list[str] = []
        for domain in cctlds:
            lines.append(
                f"@@||{domain}/ads/search/module/ads/*/search.js"
                f"$script,domain={domain}")
        google_filters = list(PINNED_PROFILES["google.com"].whitelist_filters)
        lines.extend(google_filters)
        # Google's unrestricted network exceptions — the Table 4 head —
        # were part of Google's official introduction, not the 2011
        # seed list.
        lines.extend(self._google_catalog_filters)
        pad_target = 1262 - len(lines)
        for i in range(pad_target):
            domain = cctlds[i % len(cctlds)]
            lines.append(
                f"@@||{domain}/afs/ads/v{i // len(cctlds)}/"
                f"$script,domain=www.google.com|{domain}")
        assert len(lines) == 1262
        self._reserved_revs.add(rev)
        self.plan.add(rev, lines,
                      "Google search ads "
                      + FORUM_URL.format(topic=self.plan.next_topic()),
                      comment="! Google search advertisements")
        self._record_publisher(lines)

    def _schedule_about_block(self, rev: int) -> None:
        assert self.plan is not None
        subdomains = [f"{_ABOUT_TOPICS[i % len(_ABOUT_TOPICS)]}"
                      f"{i // len(_ABOUT_TOPICS) or ''}.about.com"
                      for i in range(1044)]
        lines = list(PINNED_PROFILES["about.com"].whitelist_filters)
        for i in range(0, len(subdomains), 2):
            pair = subdomains[i:i + 2]
            lines.append(
                "@@||google.com/adsense/search/ads.js$domain="
                + "|".join(pair))
        self.plan.add(rev, lines,
                      "AdSense for search on about.com properties "
                      + FORUM_URL.format(topic=self.plan.next_topic()),
                      comment="! about.com search ads")
        self._record_publisher(lines)

    def _schedule_truncated(self, rev: int) -> None:
        """Rev 326's eight filters erroneously truncated at 4,095 chars.

        Each is a long AdSense domain-list exception cut mid-list; the
        dangling ``|`` leaves an empty domain entry, so the filters are
        genuinely malformed (they parse as invalid), exactly matching
        the Section 8 finding.
        """
        assert self.plan is not None
        lines = []
        for i in range(8):
            domains = "|".join(
                f"sub{j}.bulkpublisher{i}.com" for j in range(260))
            text = f"@@||google.com/adsense/search/ads.js$domain={domains}"
            truncated = text[:_TRUNCATION_LENGTH - 1] + "|"
            assert len(truncated) == _TRUNCATION_LENGTH
            lines.append(truncated)
        self._reserved_revs.add(rev)
        self.plan.add(rev, lines, "Updated whitelists.")

    # A-filter groups --------------------------------------------------------

    def _schedule_a_groups(self) -> None:
        assert self.plan is not None
        plan = self.plan
        rng = self.rng

        group_revs: dict[int, int] = {}
        # 2013: A1–A38 over revs 287..383; 2014: A39–A54; 2015: A55–A61.
        revs_2013 = list(range(287, 384))
        for n in range(1, 39):
            group_revs[n] = revs_2013[(n - 1) * len(revs_2013) // 38]
        revs_2014 = list(self._year_revs(2014))
        for i, n in enumerate(range(39, 55)):
            group_revs[n] = revs_2014[40 + i * 18]
        revs_2015 = list(self._year_revs(2015))
        for i, n in enumerate(range(55, 62)):
            group_revs[n] = revs_2015[10 + i * 25]
        group_revs[28] = 625   # A28 = re-added A7
        group_revs[59] = 789   # A59: the unrestricted AdSense exception
        group_revs[61] = 955

        special = {
            6: list(PINNED_PROFILES["ask.com"].whitelist_filters),
            10: list(PINNED_PROFILES["walmart.com"].whitelist_filters),
            29: list(PINNED_PROFILES["comcast.net"].whitelist_filters),
            46: ["@@||kayak.com.au^$elemhide",
                 "@@||kayak.com.br^$elemhide",
                 "@@||checkfelix.com^$elemhide"],
            50: list(PINNED_PROFILES["twcc.com"].whitelist_filters),
            # A59: AdSense for search on nearly *all* domains — the
            # filter excludes (negates) 43 domains, restricting nothing.
            59: ["@@||google.com/adsense/search/ads.js$script",
                 "@@||google.com/afs/ads?client=*$subdocument",
                 "@@||googleadservices.com/pagead/aclk?$subdocument,"
                 "domain=" + "|".join(
                     f"~not{i}.excluded-from-a59.com" for i in range(43))],
        }

        a7_content: list[str] = []
        for n in sorted(group_revs):
            rev = group_revs[n]
            if n == 28:
                filters = list(a7_content)
            elif n in special:
                filters = special[n]
            else:
                d1 = self._a_group_domain()
                d2 = self._a_group_domain()
                filters = [
                    f"@@||{d1}^$elemhide",
                    f"@@||google.com/adsense/search/ads.js"
                    f"$domain={d1}|{d2}",
                    f"@@||{d2}^$elemhide",
                ]
            message = ("Added new whitelists." if rev == 304
                       else "Updated whitelists.")
            self._reserved_revs.add(rev)
            plan.add(rev, filters, message, comment=f"!A{n}")
            self._record_publisher(filters)
            if n == 7:
                a7_content = filters

        # Five groups later removed: A7 (re-added as A28), A3, A12 in
        # 2014; A19, A33 in 2015.
        removals = {7: 600, 3: 500, 12: 700, 19: 800, 33: 850}
        for n, rev in removals.items():
            self._reserved_revs.add(rev)
            target_rev = group_revs[n]
            group_lines = [f"!A{n}"]
            # Reconstruct the group's filters from the plan itself.
            rev_plan = plan.revs[target_rev]
            marker = rev_plan.added.index(f"!A{n}")
            for line in rev_plan.added[marker + 1:]:
                if line.startswith("!"):
                    break
                group_lines.append(line)
            plan.remove(rev, group_lines, "Updated whitelists.")
            if n in (7, 3, 12, 19, 33) and n != 7:
                # Their publishers leave the directory for good.
                for line in group_lines[1:]:
                    self._drop_from_directory(line)

    def _drop_from_directory(self, filter_text: str) -> None:
        for domain, filters in list(self.publisher_directory.items()):
            if filter_text in filters:
                filters.remove(filter_text)
                if not filters:
                    del self.publisher_directory[domain]

    # -- balancing: mods, extras, churn ------------------------------------

    def _structural_counts(self, year: int) -> tuple[int, int]:
        assert self.plan is not None
        added = removed = 0
        for rev in self._year_revs(year):
            plan = self.plan.revs[rev]
            added += sum(1 for l in plan.added if _is_filter_line(l))
            removed += sum(1 for l in plan.removed if _is_filter_line(l))
        return added, removed

    def _domains_of(self, line: str) -> tuple[str, ...]:
        cached = self._domain_cache.get(line)
        if cached is None:
            from repro.filters.parser import parse_filter

            parsed = parse_filter(line)
            cached = tuple(getattr(parsed, "restricted_domains", ()))
            self._domain_cache[line] = cached
        return cached

    def _structural_domains(self, year: int) -> int:
        """First-appearance FQD count from the structural plan."""
        assert self.plan is not None
        seen: set[str] = set()
        per_year: dict[int, int] = {y: 0 for y in YEARLY_TARGETS}
        for rev, plan in enumerate(self.plan.revs):
            rev_year = self.year_of_rev[rev]
            for line in plan.added:
                if not _is_filter_line(line):
                    continue
                for domain in self._domains_of(line):
                    if domain not in seen:
                        seen.add(domain)
                        per_year[rev_year] += 1
        return per_year[year]

    def _schedule_balance(self) -> None:
        """Add churn (domain removals/re-adds), mods, and extra adds so
        every Table 1 cell is hit exactly."""
        assert self.plan is not None
        plan = self.plan

        # Churn: (pool removals re-added later, temp removals never
        # re-added) per year.
        churn = {2012: (0, 5), 2013: (69, 3), 2014: (117, 2), 2015: (203, 0)}
        readd_year = {2013: 2014, 2014: 2015, 2015: 2015}
        # 2013 also removes www.google.com via the golem fix (1 domain),
        # 2014 removes A7/A3/A12 domains (2+2+2 = 6... A7's two are
        # re-added with A28, so only A3/A12's 4 are lost), 2015 removes
        # A19/A33's 4.  Structural domain removals are therefore
        # 2013: 1, 2014: 6, 2015: 4 — churn fills the rest.
        temp_counter = 0
        for year, (pool_removals, temp_removals) in churn.items():
            revs = [r for r in self._year_revs(year)
                    if r not in self._reserved_revs]
            target = YEARLY_TARGETS[year].domains_removed
            structural = {2012: 0, 2013: 1, 2014: 6, 2015: 4}[year]
            assert pool_removals + temp_removals + structural == target, year

            # Temp domains: introduced early in the year, removed late,
            # never re-added.
            for _ in range(temp_removals):
                fqd = f"temppub{temp_counter}.com"
                temp_counter += 1
                text = self._base_filter(fqd)
                self._churn_texts.add(text)
                plan.add(revs[2], [text], "Updated whitelists.")
                plan.remove(revs[-3], [text], "Updated whitelists.")

            # Pool churn: introduce early in the year (counts toward the
            # year's domain additions), remove later the same year, and
            # re-add in the re-add year (re-adds are not new domains).
            for i in range(pool_removals):
                fqd = self._generic_fqd()
                text = self._base_filter(fqd)
                self._churn_texts.add(text)
                intro = revs[3 + (i % max(1, len(revs) // 3))]
                removal = revs[len(revs) // 2
                               + (i % max(1, len(revs) // 3))]
                plan.add(intro, [text], "Updated whitelists.")
                plan.remove(removal, [text], "Updated whitelists.")
                target_year = readd_year[year]
                readd_revs = [r for r in self._year_revs(target_year)
                              if r not in self._reserved_revs]
                lo = (len(readd_revs) * 3) // 4
                readd = readd_revs[lo + (i % max(1, len(readd_revs) - lo))]
                if readd <= removal:
                    readd = min(removal + 1, readd_revs[-1])
                plan.add(readd, [text], "Updated whitelists.")
                self._record_publisher([text])

        # 2012 churn removes 5 temp domains (all of 2012's removals).
        # Generic growth: new pool FQDs to land domains_added exactly.
        for year in YEARLY_TARGETS:
            structural = self._structural_domains(year)
            target = YEARLY_TARGETS[year].domains_added
            deficit = target - structural
            if deficit < 0:
                raise RuntimeError(
                    f"{year}: structural domains {structural} exceed "
                    f"target {target}")
            revs = [r for r in self._year_revs(year)
                    if r not in self._reserved_revs]
            for i in range(deficit):
                fqd = self._generic_fqd()
                text = self._base_filter(fqd)
                rev = revs[4 + (i % max(1, len(revs) - 8))]
                plan.add(rev, [text], "Updated whitelists.")
                self._record_publisher([text])

        # Mods and extras: bring filter add/remove counts to target.
        for year, targets in YEARLY_TARGETS.items():
            added, removed = self._structural_counts(year)
            mods = targets.filters_removed - removed
            if mods < 0:
                raise RuntimeError(
                    f"{year}: structural removals {removed} exceed "
                    f"target {targets.filters_removed}")
            extras = targets.filters_added - added - mods
            if extras < 0:
                raise RuntimeError(
                    f"{year}: structural adds {added} + mods {mods} "
                    f"exceed target {targets.filters_added}")
            revs = [r for r in self._year_revs(year)
                    if r not in self._reserved_revs]
            # Mods need existing filters to modify, so they live in the
            # second half of each year; extras can go anywhere past the
            # first few revisions.
            half = max(1, len(revs) // 2)
            for i in range(mods):
                plan.revs[revs[half + (i % (len(revs) - half))]].mods += 1
            for i in range(extras):
                plan.revs[revs[6 + (i % max(1, len(revs) - 8))]].extras += 1

    # -- committing --------------------------------------------------------

    def _commit_all(self, checkpoint: Checkpoint | None = None
                    ) -> Repository:
        assert self.plan is not None
        repo = Repository()
        rng = self.rng
        extra_targets: list[str] = []   # FQDs eligible for extra filters

        # The plan above is a pure function of the seed, so a resumed
        # run re-derives it and only the commit loop — the part that
        # consumes the rng incrementally — replays from the journal.
        done: dict[str, dict] = {}
        last_rng: list | None = None
        if checkpoint is not None:
            done = dict(checkpoint.begin_scope(
                "history", {"seed": self.seed, "key_bits": self.key_bits}))
            last_rng = snapshot_rng(rng)

        for rev, plan in enumerate(self.plan.revs):
            journaled = done.get(str(rev))
            if journaled is not None:
                last_rng = self._replay_revision(repo, journaled,
                                                 extra_targets, last_rng)
                continue
            added = list(plan.added)
            removed = list(plan.removed)
            added_this_rev = set(added)

            for _ in range(plan.mods):
                victim = self._pick_modifiable(rng, set(removed),
                                               added_this_rev)
                if victim is None:
                    raise RuntimeError(
                        f"rev {rev}: no modifiable filter available")
                removed.append(victim)
                self._modifiable.remove(victim)
                self._mod_counter += 1
                replacement = self._mutate(victim)
                added.append(replacement)
                added_this_rev.add(replacement)

            for _ in range(plan.extras):
                if (self._duplicates_budget > 0 and self._modifiable
                        and rng.random() < 0.02):
                    self._duplicates_budget -= 1
                    dup = rng.choice(self._modifiable)
                    self._dup_texts.add(dup)
                    added.append(dup)
                elif extra_targets:
                    fqd = rng.choice(extra_targets)
                    added.append(self._extra_filter(fqd))
                else:
                    self._extra_counter += 1
                    added.append(
                        f"@@||trackpix{self._extra_counter}.net/px.gif"
                        f"$image,third-party")

            message = plan.message or "Updated whitelists."
            repo.commit(self.calendar[rev], message,
                        added=added, removed=removed)

            # State updates happen *after* the commit so mods in later
            # revisions never target a line added in this one.
            self._absorb_added(added, extra_targets)

            if checkpoint is not None:
                state = {"mod_counter": self._mod_counter,
                         "extra_counter": self._extra_counter,
                         "duplicates_budget": self._duplicates_budget,
                         "dup_texts": sorted(self._dup_texts)}
                rng_state = snapshot_rng(rng)
                if rng_state != last_rng:
                    state["rng"] = rng_state
                    last_rng = rng_state
                checkpoint.record("history", str(rev),
                                  {"when": self.calendar[rev].isoformat(),
                                   "message": message,
                                   "added": added, "removed": removed,
                                   "state": state})
        if checkpoint is not None:
            checkpoint.sync()
        return repo

    def _absorb_added(self, added: list[str],
                      extra_targets: list[str]) -> None:
        """Post-commit bookkeeping: which new lines future mods/extras
        may target.  Shared verbatim by the live and replay paths so a
        resumed run's candidate lists match the uninterrupted run's."""
        for line in added:
            if not _is_filter_line(line):
                continue
            if (line.startswith("@@||adserv.genericnet.com/")
                    and line not in self._churn_texts):
                self._modifiable.append(line)
                for domain in self._domains_of(line):
                    extra_targets.append(domain)

    def _replay_revision(self, repo: Repository, journaled: dict,
                         extra_targets: list[str],
                         last_rng: list | None) -> list | None:
        """Re-apply one journaled revision without consuming the rng.

        The committed delta comes straight from the journal; the
        builder's incremental state (mod/extra counters, duplicate
        budget, rng when it advanced, and the modifiable-filter pool)
        is restored so the first *live* revision after the replayed
        prefix rolls exactly what the uninterrupted run rolled.
        """
        added = journaled["added"]
        removed = journaled["removed"]
        repo.commit(date.fromisoformat(journaled["when"]),
                    journaled["message"], added=added, removed=removed)
        # Mod victims are exactly the removed lines present in the
        # modifiable pool (planned removals never enter it).
        for line in removed:
            if line in self._modifiable:
                self._modifiable.remove(line)
        self._absorb_added(added, extra_targets)
        state = journaled["state"]
        self._mod_counter = state["mod_counter"]
        self._extra_counter = state["extra_counter"]
        self._duplicates_budget = state["duplicates_budget"]
        self._dup_texts = set(state["dup_texts"])
        if "rng" in state:
            restore_rng(self.rng, state["rng"])
            return state["rng"]
        return last_rng

    def _pick_modifiable(self, rng: random.Random,
                         already_removed: set[str],
                         added_this_rev: set[str]) -> str | None:
        for _ in range(30):
            if not self._modifiable:
                return None
            candidate = rng.choice(self._modifiable)
            if (candidate not in already_removed
                    and candidate not in added_this_rev
                    and candidate not in self._dup_texts):
                return candidate
        return None

    def _mutate(self, text: str) -> str:
        """Produce a modified version of a generic base filter.

        Any previous modification marker is replaced, so repeatedly
        modified filters stay short (real modifications rewrite the
        pattern, they do not accrete)."""
        import re as _re

        marker = f"/m{self._mod_counter}/"
        head, sep, tail = text.partition("$")
        head = _re.sub(r"/m\d+/$", "/", head.rstrip("/") + "/")
        return f"{head.rstrip('/')}{marker}{sep}{tail}"

    # -- orchestration -------------------------------------------------------

    def build(self, checkpoint: Checkpoint | None = None
              ) -> WhitelistHistory:
        self._build_calendar()
        self.plan = _Plan(len(self.calendar))
        self._schedule_structure()
        self._schedule_balance()
        repo = self._commit_all(checkpoint)
        directory = {
            domain: tuple(filters)
            for domain, filters in self.publisher_directory.items()
        }
        return WhitelistHistory(
            repository=repo,
            population=self.population,
            publisher_directory=directory,
            sitekeys=dict(self.sitekeys),
            seed=self.seed,
            key_bits=self.key_bits,
        )


_ABOUT_TOPICS = (
    "cars", "food", "travel", "health", "money", "style", "tech", "home",
    "garden", "sports", "movies", "music", "books", "history", "science",
    "pets", "crafts", "golf", "tennis", "soccer", "baseball", "yoga",
    "fitness", "beauty", "parenting", "dating", "careers", "education",
    "law", "taxes", "realestate", "insurance", "investing", "retirement",
    "weather", "news", "politics", "religion", "art", "photo", "video",
    "games", "puzzles", "comics", "humor", "quotes", "poetry", "spanish",
    "french", "german", "italian", "japanese", "chinese", "biology",
    "chemistry", "physics", "math", "geology", "astronomy", "archery",
)
