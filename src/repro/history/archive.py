"""Persist and reload whitelist histories.

Generating the 989-revision history takes seconds; real deployments of
these analyses would run against an archived history repeatedly.  This
module serialises a :class:`~repro.history.repository.Repository` to a
single JSON-lines file (one changeset per line — append-friendly, like
the VCS it models) and reloads it with full integrity checking.

The format is stable and self-describing::

    {"format": "repro-history", "version": 1, "name": "exceptionrules"}
    {"rev": 0, "when": "2011-10-03", "message": "...",
     "added": [...], "removed": [...]}
    ...
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path
from typing import IO

from repro.history.repository import Repository, RepositoryError

__all__ = ["ArchiveError", "save_repository", "load_repository",
           "dump_repository", "read_repository"]

_FORMAT = "repro-history"
_VERSION = 1


class ArchiveError(ValueError):
    """Raised for unreadable or inconsistent archives."""


def dump_repository(repo: Repository, stream: IO[str]) -> None:
    """Write ``repo`` to ``stream`` as JSON lines."""
    header = {"format": _FORMAT, "version": _VERSION, "name": repo.name}
    stream.write(json.dumps(header) + "\n")
    for changeset in repo.log():
        stream.write(json.dumps({
            "rev": changeset.rev,
            "when": changeset.when.isoformat(),
            "message": changeset.message,
            "added": list(changeset.added),
            "removed": list(changeset.removed),
        }) + "\n")


def read_repository(stream: IO[str]) -> Repository:
    """Read a repository from a JSON-lines stream.

    Replays every changeset through :meth:`Repository.commit`, so a
    corrupted archive (bad removal, out-of-order dates) fails loudly
    with :class:`ArchiveError` rather than producing silent garbage.
    """
    header_line = stream.readline()
    if not header_line.strip():
        raise ArchiveError("empty archive")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise ArchiveError(f"bad archive header: {exc}") from exc
    if header.get("format") != _FORMAT:
        raise ArchiveError("not a repro-history archive")
    if header.get("version") != _VERSION:
        raise ArchiveError(
            f"unsupported archive version {header.get('version')!r}")

    repo = Repository(name=header.get("name", "exceptionrules"))
    for line_no, line in enumerate(stream, start=2):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            when = date.fromisoformat(entry["when"])
            changeset = repo.commit(
                when, entry["message"],
                added=entry.get("added", ()),
                removed=entry.get("removed", ()),
            )
        except (json.JSONDecodeError, KeyError, ValueError,
                RepositoryError) as exc:
            raise ArchiveError(
                f"archive line {line_no}: {exc}") from exc
        if changeset.rev != entry.get("rev", changeset.rev):
            raise ArchiveError(
                f"archive line {line_no}: revision number mismatch "
                f"({entry.get('rev')} recorded, {changeset.rev} replayed)")
    return repo


def save_repository(repo: Repository, path: str | Path) -> Path:
    """Save ``repo`` to ``path``; returns the path written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        dump_repository(repo, stream)
    return path


def load_repository(path: str | Path) -> Repository:
    """Load a repository archive from disk."""
    path = Path(path)
    if not path.exists():
        raise ArchiveError(f"no archive at {path}")
    with path.open("r", encoding="utf-8") as stream:
        return read_repository(stream)
