"""Whitelist history substrate: revision store, generator, analyses."""

from repro.history.afilters import AFilterReport, AGroup, mine_a_filters
from repro.history.archive import (
    ArchiveError,
    load_repository,
    save_repository,
)
from repro.history.analysis import (
    Cadence,
    GrowthPoint,
    YearActivity,
    growth_series,
    monthly_activity,
    update_cadence,
    yearly_activity,
)
from repro.history.generator import (
    FORUM_URL,
    WhitelistHistory,
    YEARLY_TARGETS,
    YearTargets,
    generate_history,
)
from repro.history.repository import Changeset, Repository, RepositoryError

__all__ = [
    "AFilterReport",
    "ArchiveError",
    "load_repository",
    "monthly_activity",
    "save_repository",
    "AGroup",
    "Cadence",
    "Changeset",
    "FORUM_URL",
    "GrowthPoint",
    "Repository",
    "RepositoryError",
    "WhitelistHistory",
    "YEARLY_TARGETS",
    "YearActivity",
    "YearTargets",
    "generate_history",
    "growth_series",
    "mine_a_filters",
    "update_cadence",
    "yearly_activity",
]
