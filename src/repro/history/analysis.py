"""Whitelist-history analyses: Table 1 and Figure 3.

These functions consume a :class:`repro.history.repository.Repository`
through the same interface a real ``hg`` checkout would offer, so they
work identically on the synthetic history and (in principle) a parsed
dump of the real one.

Definitions, matching the paper:

* *filters added/removed* per year count non-comment line changes;
  a modification (remove old text, add new text) counts on both sides —
  "modifications are counted as new filters" (Table 1 caption);
* *domains added* counts the **first appearance** of each fully
  qualified first-party domain named by a restricted filter;
  re-additions after a removal are not counted again;
* *domains removed* counts domains whose last referencing filter
  disappears (reference counting over the working copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.history.repository import Repository

__all__ = [
    "YearActivity",
    "yearly_activity",
    "monthly_activity",
    "GrowthPoint",
    "growth_series",
    "update_cadence",
]


@dataclass(slots=True)
class YearActivity:
    """One row of Table 1."""

    year: int
    revisions: int = 0
    filters_added: int = 0
    filters_removed: int = 0
    domains_added: int = 0
    domains_removed: int = 0


def _is_filter_line(line: str) -> bool:
    return bool(line) and not line.startswith("!")


def _domains_of(line: str, cache: dict[str, tuple[str, ...]]
                ) -> tuple[str, ...]:
    cached = cache.get(line)
    if cached is None:
        from repro.filters.parser import parse_filter

        parsed = parse_filter(line)
        cached = tuple(getattr(parsed, "restricted_domains", ()))
        cache[line] = cached
    return cached


def yearly_activity(repo: Repository) -> list[YearActivity]:
    """Compute Table 1 from a repository."""
    rows: dict[int, YearActivity] = {}
    seen_domains: set[str] = set()
    refcount: dict[str, int] = {}
    cache: dict[str, tuple[str, ...]] = {}

    for changeset in repo.log():
        year = changeset.when.year
        row = rows.setdefault(year, YearActivity(year=year))
        row.revisions += 1

        added_filters = [l for l in changeset.added if _is_filter_line(l)]
        removed_filters = [l for l in changeset.removed if _is_filter_line(l)]
        row.filters_added += len(added_filters)
        row.filters_removed += len(removed_filters)

        # Adds first: a same-revision modification keeps the domain's
        # reference count positive throughout.
        for line in added_filters:
            for domain in _domains_of(line, cache):
                refcount[domain] = refcount.get(domain, 0) + 1
                if domain not in seen_domains:
                    seen_domains.add(domain)
                    row.domains_added += 1
        for line in removed_filters:
            for domain in _domains_of(line, cache):
                refcount[domain] -= 1
                if refcount[domain] == 0:
                    row.domains_removed += 1

    return [rows[year] for year in sorted(rows)]


@dataclass(slots=True)
class MonthActivity:
    """Finer-grained activity: one month of whitelist changes."""

    year: int
    month: int
    revisions: int = 0
    filters_added: int = 0
    filters_removed: int = 0

    @property
    def net_change(self) -> int:
        return self.filters_added - self.filters_removed


def monthly_activity(repo: Repository) -> list[MonthActivity]:
    """Per-month revision and filter-change counts.

    A finer slicing of Table 1, useful for locating the Figure 3 jumps
    in calendar time (Google lands in mid-2013, ask/about late 2013).
    Months without revisions are omitted.
    """
    rows: dict[tuple[int, int], MonthActivity] = {}
    for changeset in repo.log():
        key = (changeset.when.year, changeset.when.month)
        row = rows.setdefault(key, MonthActivity(year=key[0],
                                                 month=key[1]))
        row.revisions += 1
        row.filters_added += sum(
            1 for l in changeset.added if _is_filter_line(l))
        row.filters_removed += sum(
            1 for l in changeset.removed if _is_filter_line(l))
    return [rows[key] for key in sorted(rows)]


@dataclass(frozen=True, slots=True)
class GrowthPoint:
    """One point of Figure 3's growth curve."""

    rev: int
    when: date
    filters: int


def growth_series(repo: Repository) -> list[GrowthPoint]:
    """Figure 3: active (non-comment) filter count after each revision."""
    points: list[GrowthPoint] = []
    count = 0
    for changeset in repo.log():
        count += sum(1 for l in changeset.added if _is_filter_line(l))
        count -= sum(1 for l in changeset.removed if _is_filter_line(l))
        points.append(GrowthPoint(rev=changeset.rev, when=changeset.when,
                                  filters=count))
    return points


@dataclass(frozen=True, slots=True)
class Cadence:
    """Update-rate summary: 'every 1.5 days, 11.4 filters per update'."""

    days_per_update: float
    changes_per_update: float
    updates: int


def update_cadence(repo: Repository, *, since: date | None = None) -> Cadence:
    """Average update interval and per-update filter churn.

    ``since`` restricts to changesets on/after a date (the paper's
    headline averages are over the whole history).
    """
    changesets = [c for c in repo.log()
                  if since is None or c.when >= since]
    if len(changesets) < 2:
        raise ValueError("need at least two changesets for a cadence")
    span_days = (changesets[-1].when - changesets[0].when).days
    updates = len(changesets) - 1
    total_changes = sum(
        sum(1 for l in c.added if _is_filter_line(l))
        + sum(1 for l in c.removed if _is_filter_line(l))
        for c in changesets
    )
    return Cadence(
        days_per_update=span_days / updates,
        changes_per_update=total_changes / len(changesets),
        updates=updates,
    )
