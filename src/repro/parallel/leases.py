"""Bounded work leases for the supervised work-stealing scheduler.

The round-robin pool (:mod:`repro.parallel.pool`) pre-deals the whole
unit list before any worker starts, so a straggler — or a dead worker —
owns a fixed 1/N of the run forever.  The work-stealing scheduler
(:mod:`repro.parallel.scheduler`) instead hands out **leases**: small
batches of globally-indexed units granted to one worker at a time.  A
lease is the unit of both load balancing (a slow worker simply claims
fewer leases) and failure recovery (a dead worker forfeits exactly its
outstanding lease, nothing more).

Two pieces live here:

* :func:`generate_leases` — the pure batching function, shared by the
  scheduler's inline fallback and its deterministic makespan model;
* :class:`LeaseLedger` — the dispatcher's bookkeeping of which lease is
  where, which of its units have reported results, and what a
  revocation must therefore requeue.

Both are deliberately free of process machinery so they can be tested
(and reasoned about) without forking anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Lease", "generate_leases", "LeaseLedger"]


@dataclass(frozen=True, slots=True)
class Lease:
    """A bounded batch of globally-indexed units granted to one worker."""

    lease_id: int
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def generate_leases(indices: Sequence[int],
                    lease_size: int) -> list[Lease]:
    """Chunk ``indices`` into consecutive leases of ``lease_size``.

    Leases preserve the input order — the scheduler always feeds the
    lowest pending indices first, so grants stay close to the in-order
    flush frontier and the reorder buffer stays small.  Zero items mean
    zero leases (mirroring ``shard_round_robin``'s empty-input
    contract):

    >>> [lease.indices for lease in generate_leases([0, 1, 2, 3, 4], 2)]
    [(0, 1), (2, 3), (4,)]
    >>> generate_leases([], 3)
    []
    >>> generate_leases([], 0)
    []
    """
    if not indices:
        return []
    if lease_size < 1:
        raise ValueError(f"lease_size must be >= 1, got {lease_size}")
    return [Lease(lease_id, tuple(indices[start:start + lease_size]))
            for lease_id, start in enumerate(
                range(0, len(indices), lease_size))]


@dataclass(slots=True)
class _OpenLease:
    """Dispatcher-side state of one granted, not-yet-finished lease."""

    lease: Lease
    worker: int
    done: set[int] = field(default_factory=set)

    @property
    def incomplete(self) -> tuple[int, ...]:
        return tuple(index for index in self.lease.indices
                     if index not in self.done)


class LeaseLedger:
    """Tracks granted leases, their per-unit progress, and revocations.

    The ledger is the scheduler's single source of truth for "which
    units are in flight where".  It never touches processes or pipes:
    the scheduler reports events (grant, unit result, lease finished,
    worker death) and the ledger answers the recovery question — what
    must be requeued, and which unit is the prime suspect for having
    killed the worker.

    >>> ledger = LeaseLedger()
    >>> lease = ledger.grant(worker=0, indices=(4, 5, 6))
    >>> ledger.complete(lease.lease_id, 4)
    >>> ledger.revoke(lease.lease_id)
    (5, 6)
    >>> ledger.outstanding
    0
    """

    def __init__(self) -> None:
        self._next_id = 0
        self._open: dict[int, _OpenLease] = {}

    @property
    def outstanding(self) -> int:
        """Number of granted leases that have not finished or been
        revoked."""
        return len(self._open)

    @property
    def in_flight(self) -> int:
        """Total units granted but not yet reported back."""
        return sum(len(entry.incomplete) for entry in self._open.values())

    def grant(self, worker: int, indices: Iterable[int]) -> Lease:
        """Open a new lease of ``indices`` for ``worker``."""
        lease = Lease(self._next_id, tuple(indices))
        if not lease.indices:
            raise ValueError("cannot grant an empty lease")
        self._next_id += 1
        self._open[lease.lease_id] = _OpenLease(lease, worker)
        return lease

    def complete(self, lease_id: int, index: int) -> None:
        """Record one unit result for an open lease.

        Results from unknown leases are ignored: a lease revoked after
        a heartbeat timeout may, in principle, race one last buffered
        message home — the scheduler has already requeued the unit, and
        the deterministic re-crawl produces the identical payload.
        """
        entry = self._open.get(lease_id)
        if entry is not None:
            entry.done.add(index)

    def finish(self, lease_id: int) -> None:
        """Close a lease the worker reports fully done."""
        entry = self._open.pop(lease_id, None)
        if entry is not None and entry.incomplete:
            raise ValueError(
                f"lease {lease_id} finished with incomplete units "
                f"{entry.incomplete}")

    def revoke(self, lease_id: int) -> tuple[int, ...]:
        """Withdraw a lease from a dead worker; return its unfinished
        units, lowest global index first (the first one is the unit the
        worker died on — the quarantine suspect)."""
        entry = self._open.pop(lease_id, None)
        return entry.incomplete if entry is not None else ()

    def leases_of(self, worker: int) -> tuple[int, ...]:
        """IDs of the open leases currently held by ``worker``."""
        return tuple(lease_id
                     for lease_id, entry in self._open.items()
                     if entry.worker == worker)
