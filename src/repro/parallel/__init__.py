"""repro.parallel — deterministic shared-nothing parallel execution.

The survey crawl is embarrassingly parallel per target, but naive
parallelism would destroy the repo's core guarantee: byte-identical
results for a given seed.  This subpackage provides parallelism that
*keeps* the guarantee:

* :mod:`repro.parallel.pool` — :class:`~repro.parallel.pool.WorkPool`,
  a fork-based per-shard worker pool with an inline sequential
  fallback, plus round-robin sharding;
* :mod:`repro.parallel.rng` — pure per-unit RNG derivation, so no unit's
  randomness depends on execution order;
* :mod:`repro.parallel.caches` — a registry of process-local
  ``lru_cache`` tables cleared across ``fork`` (bounded per-worker
  memory, per-worker cache statistics);
* :mod:`repro.parallel.survey` — the sharded survey executor: shard
  journals that merge into the standard checkpoint format, ordered
  metric-snapshot merging, resume across worker-count changes;
* :mod:`repro.parallel.leases` — bounded work leases and the
  dispatcher-side :class:`~repro.parallel.leases.LeaseLedger`;
* :mod:`repro.parallel.supervisor` — worker lifecycle: spawn, heartbeat
  deadlines, exit reaping, restart budget, deterministic
  :class:`~repro.parallel.supervisor.WorkerCrashInjector`;
* :mod:`repro.parallel.scheduler` — the supervised work-stealing
  executor (``--scheduler steal``): lease recovery from dead/wedged
  workers, poison-unit quarantine, streaming in-order flush with
  backpressure.

Import note: this ``__init__`` re-exports only the dependency-free core
(pool, rng, caches, leases, supervisor).  :mod:`repro.parallel.survey`
and :mod:`repro.parallel.scheduler` import the web and state layers —
and those layers import :mod:`repro.parallel.caches` — so the executors
are imported explicitly (``from repro.parallel.scheduler import
run_stealing_survey``) to keep the import graph acyclic.
"""

from repro.parallel.caches import (
    process_cache_stats,
    register_process_cache,
    registered_caches,
    reset_process_caches,
)
from repro.parallel.leases import Lease, LeaseLedger, generate_leases
from repro.parallel.pool import WorkerError, WorkPool, shard_round_robin
from repro.parallel.rng import derive_rng, derive_seed
from repro.parallel.supervisor import (
    POISON_EXIT_CODE,
    Supervisor,
    WorkerCrashInjector,
    WorkerHandle,
)

__all__ = [
    "WorkPool",
    "WorkerError",
    "shard_round_robin",
    "derive_seed",
    "derive_rng",
    "register_process_cache",
    "reset_process_caches",
    "registered_caches",
    "process_cache_stats",
    "Lease",
    "LeaseLedger",
    "generate_leases",
    "Supervisor",
    "WorkerHandle",
    "WorkerCrashInjector",
    "POISON_EXIT_CODE",
]
