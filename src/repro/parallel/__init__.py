"""repro.parallel — deterministic shared-nothing parallel execution.

The survey crawl is embarrassingly parallel per target, but naive
parallelism would destroy the repo's core guarantee: byte-identical
results for a given seed.  This subpackage provides parallelism that
*keeps* the guarantee:

* :mod:`repro.parallel.pool` — :class:`~repro.parallel.pool.WorkPool`,
  a fork-based per-shard worker pool with an inline sequential
  fallback, plus round-robin sharding;
* :mod:`repro.parallel.rng` — pure per-unit RNG derivation, so no unit's
  randomness depends on execution order;
* :mod:`repro.parallel.caches` — a registry of process-local
  ``lru_cache`` tables cleared across ``fork`` (bounded per-worker
  memory, per-worker cache statistics);
* :mod:`repro.parallel.survey` — the sharded survey executor: shard
  journals that merge into the standard checkpoint format, ordered
  metric-snapshot merging, resume across worker-count changes.

Import note: this ``__init__`` re-exports only the dependency-free core
(pool, rng, caches).  :mod:`repro.parallel.survey` imports the web and
state layers — and those layers import :mod:`repro.parallel.caches` —
so the executor is imported explicitly (``from repro.parallel.survey
import run_sharded_survey``) to keep the import graph acyclic.
"""

from repro.parallel.caches import (
    process_cache_stats,
    register_process_cache,
    registered_caches,
    reset_process_caches,
)
from repro.parallel.pool import WorkerError, WorkPool, shard_round_robin
from repro.parallel.rng import derive_rng, derive_seed

__all__ = [
    "WorkPool",
    "WorkerError",
    "shard_round_robin",
    "derive_seed",
    "derive_rng",
    "register_process_cache",
    "reset_process_caches",
    "registered_caches",
    "process_cache_stats",
]
