"""Deterministic per-unit RNG derivation for shared-nothing execution.

The serial crawl pipeline threads one ``random.Random`` through every
target in sequence, so each target's backoff jitter depends on how much
entropy every *earlier* target consumed.  That coupling is exactly what
parallel execution cannot reproduce: two workers interleave their
entropy draws nondeterministically.

The shared-nothing executor breaks the coupling by deriving an
independent RNG for every unit of work from a root seed plus the unit's
identity (domain, rank, purpose label).  Derivation is a pure function
— SHA-256 over a canonical encoding of the parts — so any worker, in
any process, at any time, reconstructs the identical stream for a given
unit.  Results are therefore byte-identical regardless of worker count
or scheduling order.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "derive_rng"]

#: Separates encoded parts so ("ab", "c") and ("a", "bc") derive
#: different seeds.
_SEPARATOR = b"\x1f"


def derive_seed(root: int, *parts: object) -> int:
    """Derive a 128-bit integer seed from a root seed and identity parts.

    Pure and stable across processes and Python invocations (no reliance
    on ``hash()``, which is salted per-process).

    >>> derive_seed(7, "example.org", 12) == derive_seed(7, "example.org", 12)
    True
    >>> derive_seed(7, "example.org", 12) == derive_seed(7, "example.org", 13)
    False
    """
    digest = hashlib.sha256(
        _SEPARATOR.join(str(part).encode("utf-8") for part in (root, *parts))
    ).digest()
    return int.from_bytes(digest[:16], "big")


def derive_rng(root: int, *parts: object) -> random.Random:
    """A fresh ``random.Random`` seeded from :func:`derive_seed`.

    >>> a = derive_rng(7, "jitter", "example.org")
    >>> b = derive_rng(7, "jitter", "example.org")
    >>> [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
    True
    """
    return random.Random(derive_seed(root, *parts))
