"""Process-wide cache registry with a fork guard.

The hot paths memoize aggressively — ``repro.web.url`` caches
public-suffix reductions, ``repro.filters.pattern`` caches compiled
patterns and keyword candidates.  (URL tokenisation used to be cached
here too; the compiled filter index —
:mod:`repro.filters.compiled` — tokenises with C-level byte primitives
and needs no memo, so that cache is gone.)  The survivors are
process-local ``functools.lru_cache`` tables, which interact badly
with ``fork``-based parallelism in two ways:

* a forked worker inherits the parent's cache *contents* (copy-on-write
  pages that become private the moment the worker touches them, so a
  big warm cache multiplies across the pool), and
* it inherits the parent's ``cache_info()`` *statistics*, so per-worker
  hit rates read as continuations of the parent's instead of starting
  from zero.

Every cache that should stay per-process registers here via
:func:`register_process_cache`.  Registration installs (once) an
``os.register_at_fork`` handler that clears all registered caches in
the child, so workers start cold, bounded, and with honest statistics.
:func:`reset_process_caches` is the explicit equivalent the worker
bootstrap also calls, belt-and-braces, for exotic spawn paths where the
at-fork hook does not run.

The module deliberately imports nothing from the rest of the package:
any subsystem (web, filters, state) can register its caches without
creating an import cycle.
"""

from __future__ import annotations

import os
from typing import Callable, TypeVar

__all__ = [
    "register_process_cache",
    "reset_process_caches",
    "registered_caches",
    "process_cache_stats",
]

_CacheT = TypeVar("_CacheT")

#: Registered cache objects; anything with a ``cache_clear()`` method
#: (``lru_cache`` wrappers foremost).
_CACHES: list = []

_fork_guard_installed = False


def _install_fork_guard() -> None:
    global _fork_guard_installed
    if _fork_guard_installed:
        return
    # Runs in every forked child (multiprocessing's fork start method
    # included) before the child executes any user code.
    os.register_at_fork(after_in_child=reset_process_caches)
    _fork_guard_installed = True


def register_process_cache(cache: _CacheT) -> _CacheT:
    """Register a cache for per-process invalidation; usable as a decorator.

    ``cache`` must expose ``cache_clear()`` (every ``functools.lru_cache``
    wrapper does); ``cache_info()`` is optional and, when present, feeds
    :func:`process_cache_stats`.

    >>> from functools import lru_cache
    >>> @register_process_cache
    ... @lru_cache(maxsize=4)
    ... def double(x):
    ...     return 2 * x
    >>> double(21)
    42
    >>> reset_process_caches()
    >>> double.cache_info().currsize
    0
    """
    if not callable(getattr(cache, "cache_clear", None)):
        raise TypeError(
            f"process cache {cache!r} has no cache_clear() method")
    _CACHES.append(cache)
    _install_fork_guard()
    return cache


def reset_process_caches() -> None:
    """Clear every registered cache (called automatically after fork)."""
    for cache in _CACHES:
        cache.cache_clear()


def registered_caches() -> tuple:
    """The registered cache objects, in registration order."""
    return tuple(_CACHES)


def process_cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache ``hits``/``misses``/``currsize``/``maxsize`` for this
    process.

    Because registered caches are cleared at fork, a worker's stats
    describe only its own shard of the work — not a continuation of
    the parent's counters.
    """
    stats: dict[str, dict[str, int]] = {}
    for cache in _CACHES:
        info_fn = getattr(cache, "cache_info", None)
        if info_fn is None:
            continue
        info = info_fn()
        name = f"{getattr(cache, '__module__', '?')}." \
               f"{getattr(cache, '__qualname__', repr(cache))}"
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
            "maxsize": info.maxsize if info.maxsize is not None else -1,
        }
    return stats
