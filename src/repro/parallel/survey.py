"""Shared-nothing sharded execution of the Section 5 survey crawl.

:func:`run_sharded_survey` is the parallel counterpart of
:func:`repro.web.crawlstate.journaled_survey`.  It flattens a survey's
sample groups into one globally ordered unit list, deals the pending
units round-robin into shards, and crawls each shard on a
:class:`~repro.parallel.pool.WorkPool` worker.  Results are
byte-identical to a one-worker run — for *any* worker count and any
scheduling order — because every unit is executed shared-nothing:

* its backoff jitter comes from an RNG derived purely from
  ``(fault_seed, "crawl-jitter", domain, rank)`` (see
  :mod:`repro.parallel.rng`), not from a stream shared with earlier
  targets;
* it gets a fresh circuit breaker (survey domains are distinct, so the
  serial pipeline never accumulates cross-target breaker state to
  lose);
* its simulated clock is rewound to zero, so each unit's latency is an
  exact float sum from ``t=0`` rather than a difference between two
  large accumulated clock positions;
* outcomes round-trip through the checkpoint snapshot codec before
  merging, so a live result and a journal-restored one are the same
  object shape down to the byte.

**Engine sharing.**  The parent's engine is frozen before the pool
forks, so each worker inherits the compiled filter indexes
(:mod:`repro.filters.compiled`: packed automaton arrays, prebuilt
candidate tuples) as read-only copy-on-write pages.  Workers never
write them — there is no per-worker tokeniser cache left to warm, so
the pages stay physically shared for the lifetime of the pool.

**Durability.**  When a checkpoint is given, each worker appends its
completed units to a private *shard journal*
(``<checkpoint>.shardNNN``, same checksummed format as the main
journal, each record tagged with the unit's global index).  After the
pool drains, the parent folds every unit into the main checkpoint in
global order and deletes the shard files — so a finished checkpoint is
indistinguishable from a serial one.  On resume, leftover shard
journals from a crashed run are *adopted* into the checkpoint first;
since sharding is derived from the pending set, resuming with a
different ``--workers`` count Just Works.

**Metrics.**  Each unit is crawled under a private
:class:`~repro.obs.metrics.MetricsRegistry` (when observability is on)
whose snapshot travels home with the outcome; the parent merges the
snapshots in global unit order via
:meth:`~repro.obs.metrics.MetricsRegistry.merge`, so ``--metrics-out``
totals — including float histogram sums — are reassembled identically
for every worker count.

**Traces.**  Each unit likewise runs under a private
:class:`~repro.obs.trace.Tracer` rooted at the parent's enclosing span
(deterministic span IDs namespaced by global unit index — see
:mod:`repro.obs.ids`) and timed on the unit's *simulated* clock, which
rewinds to zero per unit.  The unit's span records travel home tagged
with the worker that ran them; the parent strips the worker tag —
execution placement is not a result — and adopts the shards into its
own trace in global unit order, exactly mirroring the metric-snapshot
merge.  A pooled ``--trace`` export is therefore one coherent,
parent-linked trace, byte-identical for every ``--workers`` count.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    OBS,
    MetricsRegistry,
    ProgressTracker,
    Tracer,
)
from repro.parallel.pool import WorkPool, shard_round_robin
from repro.parallel.rng import derive_rng
from repro.state.checkpoint import Checkpoint
from repro.state.journal import JournalError, RunJournal, replay_journal
from repro.web.crawler import Crawler, CrawlOutcome, CrawlTarget
from repro.web.crawlstate import restore_outcome, snapshot_outcome, unit_key
from repro.web.resilience import CircuitBreaker

__all__ = [
    "run_sharded_survey",
    "adopt_shard_journals",
    "shard_journal_path",
    "list_shard_journals",
]

#: Purpose label mixed into every derived per-unit rng seed.
_JITTER_LABEL = "crawl-jitter"

_SHARD_SUFFIX = ".shard"


# -- shard journals --------------------------------------------------------

def shard_journal_path(checkpoint_path: str, shard_index: int) -> str:
    """Where shard ``shard_index`` journals its completed units."""
    return f"{checkpoint_path}{_SHARD_SUFFIX}{shard_index:03d}"


def list_shard_journals(checkpoint_path: str) -> list[str]:
    """Existing shard journal files next to ``checkpoint_path``, sorted."""
    directory = os.path.dirname(checkpoint_path) or "."
    prefix = os.path.basename(checkpoint_path) + _SHARD_SUFFIX
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        os.path.join(directory, name) for name in names
        if name.startswith(prefix) and name[len(prefix):].isdigit())


def adopt_shard_journals(checkpoint: Checkpoint, scope: str) -> int:
    """Fold leftover shard journals from a crashed run into ``checkpoint``.

    Units are adopted in global-index order so the main journal reads
    exactly as if the crashed run had merged them itself; units the
    checkpoint already has (the crash hit mid-merge) are skipped.  A
    shard file is deleted once it holds nothing belonging to another
    scope; an unreadable (corrupt) shard is discarded — its units are
    simply re-crawled, deterministically.

    Returns the number of units adopted.
    """
    adopted = 0
    for path in list_shard_journals(checkpoint.path):
        try:
            records, _truncated = replay_journal(path)
        except JournalError:
            records = []
        units = [record for record in records
                 if record.get("kind") == "unit"]
        mine = sorted((unit for unit in units if unit["scope"] == scope),
                      key=lambda unit: unit["index"])
        for unit in mine:
            if not checkpoint.is_done(scope, unit["key"]):
                checkpoint.record(scope, unit["key"], unit["payload"])
                adopted += 1
        if all(unit["scope"] == scope for unit in units):
            os.remove(path)
    if adopted:
        checkpoint.sync()
    return adopted


# -- per-unit shared-nothing execution -------------------------------------

def _crawl_units(crawler: Crawler,
                 units: Sequence[tuple[int, str, CrawlTarget]],
                 *, jitter_seed: int, collect_metrics: bool,
                 collect_spans: bool, trace_context: tuple[str, int],
                 record_unit: Callable[[int, str, dict], None]) -> list:
    """Crawl ``units`` shared-nothing; return mergeable result tuples.

    Each returned tuple is ``(index, key, payload, metrics, spans)``
    where ``payload`` is the checkpoint unit payload, ``metrics`` is
    the unit's registry snapshot (``None`` with metrics off), and
    ``spans`` is the unit's span-record shard (``None`` with tracing
    off).  The payload's ``state`` is empty by design: shared-nothing
    units have no cross-visit crawler state for a resume to rewind.

    ``trace_context`` is ``(parent_span_id, depth)`` of the parent
    process's enclosing span: each unit's private tracer is rooted
    there, with the unit's global index as its root ordinal namespace,
    so its span IDs come out identical no matter which worker runs it.
    """
    from repro.obs.export import span_records

    trace_parent, trace_depth = trace_context
    results = []
    for index, group_name, target in units:
        rng = derive_rng(jitter_seed, _JITTER_LABEL, target.domain,
                         target.rank)
        breaker = CircuitBreaker()
        # Latencies are clock *deltas*; rewinding to zero per unit makes
        # them exact sums from t=0, independent of what earlier units on
        # this worker consumed (float addition is not associative).
        crawler.clock.rewind()
        metrics = None
        spans = None
        if OBS.enabled:
            previous = (OBS.registry, OBS.tracer, OBS.enabled)
            registry = MetricsRegistry() if collect_metrics else NULL_REGISTRY
            # The unit tracer runs on the unit's simulated clock: its
            # readings (and so the exported spans) are deterministic,
            # unlike wall time, which is what byte-identity across
            # worker counts requires.
            tracer = (Tracer(clock=crawler.clock.now,
                             root_parent_id=trace_parent,
                             root_depth=trace_depth,
                             root_ordinal_ns=f"{index}:")
                      if collect_spans else NULL_TRACER)
            OBS.registry = registry
            OBS.tracer = tracer
            OBS.enabled = registry.enabled or tracer.enabled
            try:
                outcome = crawler.visit_target(target, rng=rng,
                                               breaker=breaker,
                                               unit=index)
            finally:
                OBS.registry, OBS.tracer, OBS.enabled = previous
            if collect_metrics:
                metrics = registry.snapshot()
            if collect_spans:
                spans = span_records(tracer)
        else:
            outcome = crawler.visit_target(target, rng=rng, breaker=breaker)
        key = unit_key(group_name, target)
        payload = {"group": group_name,
                   "outcome": snapshot_outcome(outcome),
                   "state": {}}
        record_unit(index, key, payload)
        results.append((index, key, payload, metrics, spans))
    return results


# -- the sharded survey ----------------------------------------------------

def run_sharded_survey(groups, *, crawler_factory: Callable[[], Crawler],
                       workers: int, jitter_seed: int = 0,
                       checkpoint: Checkpoint | None = None,
                       scope: str = "survey",
                       scope_config: dict | None = None
                       ) -> dict[str, list[CrawlOutcome]]:
    """Crawl ``groups`` across ``workers`` shared-nothing workers.

    ``crawler_factory`` must build an equivalent crawler on every call
    (each worker constructs its own); ``jitter_seed`` roots the
    per-unit rng derivation and should be the survey's ``fault_seed``.
    With a ``checkpoint``, completed units are restored instead of
    re-crawled and new ones are journaled crash-safely (see module
    docstring).  Returns outcomes per group, in target order —
    byte-identical for any ``workers`` value.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    units: list[tuple[int, str, CrawlTarget]] = [
        (index, group.name, target)
        for index, (group, target) in enumerate(
            (group, target) for group in groups for target in group.targets)]
    outcomes: dict[int, CrawlOutcome] = {}

    checkpoint_path = None
    if checkpoint is not None:
        checkpoint_path = checkpoint.path
        checkpoint.begin_scope(scope, scope_config)
        adopt_shard_journals(checkpoint, scope)
        index_by_key = {unit_key(group_name, target): index
                        for index, group_name, target in units}
        for key, payload in checkpoint.completed(scope):
            index = index_by_key.get(key)
            if index is not None:
                outcomes[index] = restore_outcome(payload["outcome"])

    pending = [unit for unit in units if unit[0] not in outcomes]
    shards = shard_round_robin(pending, max(1, min(workers, len(pending))))
    collect_metrics = OBS.registry.enabled
    collect_spans = OBS.tracer.enabled
    parent_span = OBS.tracer.current() if collect_spans else None
    trace_context = ((parent_span.span_id, parent_span.depth + 1)
                     if parent_span is not None else ("", 0))

    def crawl_shard(shard_index: int, shard_units) -> list:
        crawler = crawler_factory()
        journal = None
        if checkpoint_path is not None:
            journal = RunJournal.create(
                shard_journal_path(checkpoint_path, shard_index),
                {"shard": shard_index, "scope": scope})
        completed = 0

        def record_unit(index: int, key: str, payload: dict) -> None:
            nonlocal completed
            if journal is not None:
                journal.append({"kind": "unit", "scope": scope,
                                "key": key, "index": index,
                                "payload": payload})
            completed += 1

        try:
            results = _crawl_units(crawler, shard_units,
                                   jitter_seed=jitter_seed,
                                   collect_metrics=collect_metrics,
                                   collect_spans=collect_spans,
                                   trace_context=trace_context,
                                   record_unit=record_unit)
        except BaseException as exc:
            # Let WorkerError report how much of the shard was done
            # (journaled) before the failure.
            try:
                exc.completed_units = completed
            except (AttributeError, TypeError):
                pass
            raise
        finally:
            if journal is not None:
                journal.close()
        # Tag the shard's span records with the worker that produced
        # them — crash forensics read the raw shards; the parent strips
        # the tag at adoption because placement is not a result.
        for _index, _key, _payload, _metrics, spans in results:
            if spans:
                for record in spans:
                    record["worker"] = shard_index
        return results

    shard_results = (WorkPool(workers).map_shards(shards, crawl_shard)
                     if pending else [])

    merged = sorted((result for shard in shard_results for result in shard),
                    key=lambda result: result[0])
    # Progress gauges + simulated-clock ticks advance in global unit
    # order — the same order as the metric merge — so they match the
    # steal scheduler's and any other worker count's byte for byte.
    progress = (ProgressTracker(scope, len(units), done=len(outcomes))
                if OBS.registry.enabled or OBS.timeseries.enabled
                else None)
    for index, key, payload, metrics, spans in merged:
        if checkpoint is not None:
            checkpoint.record(scope, key, payload)
        if collect_metrics and metrics is not None:
            OBS.registry.merge(metrics)
        if collect_spans and spans:
            OBS.tracer.adopt(spans)
        outcomes[index] = restore_outcome(payload["outcome"])
        if progress is not None:
            progress.step(outcomes[index].latency_ms)
    if checkpoint is not None:
        checkpoint.sync()
        for shard_index in range(len(shards)):
            path = shard_journal_path(checkpoint.path, shard_index)
            if os.path.exists(path):
                os.remove(path)

    outcomes_by_group: dict[str, list[CrawlOutcome]] = {
        group.name: [] for group in groups}
    for index, group_name, _target in units:
        outcomes_by_group[group_name].append(outcomes[index])
    return outcomes_by_group
