"""A shared-nothing work pool over ``multiprocessing`` fork workers.

``WorkPool`` runs one callable per *shard* (a pre-partitioned list of
work units) and collects each shard's result.  The design is
deliberately minimal and deterministic:

* **Fork, not spawn.**  Workers inherit the parent's state (filter
  engines, site profiles) by copy-on-write instead of pickling it
  through a pipe; the shard callable may be a closure.  Registered
  process caches are cleared in the child (see
  :mod:`repro.parallel.caches`), and the worker bootstrap clears them
  again explicitly as a belt-and-braces measure.
* **Shared nothing.**  Workers never exchange state; each returns one
  picklable result over a private pipe.  Merging is the caller's job,
  which is what makes results independent of scheduling order.
* **Sequential fallback.**  With one worker, a single shard, or no
  usable ``fork`` start method (e.g. some non-POSIX platforms), shards
  run inline in the calling process — same callable, same merge path,
  same results.
* **Fail loudly.**  A worker exception is captured with its traceback
  and re-raised in the parent as :class:`WorkerError`; a worker that
  dies without reporting (OOM-kill, hard crash) raises too, with its
  exit code.

The pool knows nothing about crawling or surveys; the survey-specific
executor lives in :mod:`repro.parallel.survey`.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Callable, Sequence, TypeVar

from repro.parallel.caches import reset_process_caches

__all__ = ["WorkPool", "WorkerError", "shard_round_robin"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class WorkerError(RuntimeError):
    """A pool worker failed; carries the shard index and worker detail.

    ``exit_code``/``signal`` record how the worker process ended (at
    most one is set: a negative ``Process.exitcode`` means death by
    signal) and ``completed_units`` how many of its shard's units it
    finished first — the operator-facing answer to "how much work did
    the failure cost?".  All three are ``None`` when unknown (e.g. the
    inline fallback has no process to inspect).
    """

    def __init__(self, shard_index: int, detail: str, *,
                 exit_code: int | None = None,
                 signal: int | None = None,
                 completed_units: int | None = None):
        context = []
        if signal is not None:
            context.append(f"killed by signal {signal}")
        elif exit_code is not None:
            context.append(f"exit code {exit_code}")
        if completed_units is not None:
            context.append(f"{completed_units} unit(s) completed")
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(
            f"worker for shard {shard_index} failed{suffix}:\n{detail}")
        self.shard_index = shard_index
        self.detail = detail
        self.exit_code = exit_code
        self.signal = signal
        self.completed_units = completed_units


def shard_round_robin(items: Sequence[_ItemT],
                      shards: int) -> list[list[_ItemT]]:
    """Deal ``items`` into ``shards`` lists, round-robin.

    Round-robin keeps shard loads balanced without knowing per-item
    cost, and the assignment is a pure function of (item position,
    shard count) — no randomness, so a resumed run with the same
    pending set re-creates the same shards.

    Zero items mean zero shards — for *any* ``shards`` value — so
    callers iterating the result never see (or clean up after)
    phantom empty shards.  :func:`repro.parallel.leases.generate_leases`
    pins the same empty-input contract for lease generation.

    >>> shard_round_robin(["a", "b", "c", "d", "e"], 2)
    [['a', 'c', 'e'], ['b', 'd']]
    >>> shard_round_robin([], 3)
    []
    >>> shard_round_robin([], 0)
    []
    """
    if not items:
        return []
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    dealt: list[list[_ItemT]] = [[] for _ in range(shards)]
    for position, item in enumerate(items):
        dealt[position % shards].append(item)
    return dealt


def _worker_main(fn: Callable, shard_index: int, shard: Sequence,
                 conn) -> None:
    """Forked worker entry point: run one shard, report, exit hard."""
    reset_process_caches()
    try:
        result = fn(shard_index, shard)
    except BaseException as exc:
        try:
            conn.send(("error", {
                "detail": traceback.format_exc(),
                "completed_units": getattr(exc, "completed_units", None)}))
        finally:
            conn.close()
        # _exit skips atexit handlers and buffered-stream flushing that
        # belong to the forked-from parent, not this worker.
        os._exit(1)
    conn.send(("ok", result))
    conn.close()
    os._exit(0)


class WorkPool:
    """Run per-shard callables across fork workers (or inline).

    ``fn`` is called as ``fn(shard_index, shard_items)`` and must return
    a picklable value.  ``map_shards`` preserves shard order in its
    result list regardless of completion order.
    """

    def __init__(self, workers: int, *, start_method: str = "fork"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._start_method = (
            start_method
            if start_method in multiprocessing.get_all_start_methods()
            else None)

    @property
    def forks(self) -> bool:
        """Whether this pool can actually fork worker processes."""
        return self.workers > 1 and self._start_method is not None

    def map_shards(self, shards: Sequence[Sequence],
                   fn: Callable) -> list:
        """Run ``fn`` over every shard; return results in shard order."""
        if len(shards) > max(self.workers, 1):
            raise ValueError(
                f"{len(shards)} shards exceed pool size {self.workers}")
        if not shards:
            return []
        if not self.forks or len(shards) == 1:
            # Same failure contract as the forked path: a shard failure
            # always surfaces as WorkerError, whichever executor ran it.
            results = []
            for index, shard in enumerate(shards):
                try:
                    results.append(fn(index, shard))
                except Exception as exc:
                    raise WorkerError(
                        index, traceback.format_exc(),
                        completed_units=getattr(
                            exc, "completed_units", None)) from exc
            return results
        return self._map_forked(shards, fn)

    def _map_forked(self, shards: Sequence[Sequence], fn: Callable) -> list:
        context = multiprocessing.get_context(self._start_method)
        procs = []
        for index, shard in enumerate(shards):
            receiver, sender = context.Pipe(duplex=False)
            proc = context.Process(
                target=_worker_main, args=(fn, index, shard, sender),
                daemon=True)
            proc.start()
            sender.close()  # parent keeps only the read end
            procs.append((index, proc, receiver))

        results: list = [None] * len(shards)
        failure: tuple[int, str, int | None,
                       multiprocessing.process.BaseProcess] | None = None
        for index, proc, receiver in procs:
            if failure is not None:
                # First failure is fatal for the whole pool: don't sit
                # waiting for the survivors' results, take them down.
                proc.terminate()
                continue
            try:
                status, payload = receiver.recv()
            except EOFError:
                # Died without reporting (OOM-kill, hard crash, _exit).
                failure = (index, "worker exited without reporting",
                           None, proc)
                continue
            if status == "ok":
                results[index] = payload
            else:
                failure = (index, payload["detail"],
                           payload.get("completed_units"), proc)
        # Reap every child before raising — no zombies on failure paths.
        for _, proc, receiver in procs:
            receiver.close()
            proc.join()
        if failure is not None:
            index, detail, completed_units, proc = failure
            exitcode = proc.exitcode
            raise WorkerError(
                index, detail,
                exit_code=exitcode if (exitcode or 0) >= 0 else None,
                signal=-exitcode if (exitcode or 0) < 0 else None,
                completed_units=completed_units)
        return results
