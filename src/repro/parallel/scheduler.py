"""The supervised work-stealing survey scheduler.

:func:`run_stealing_survey` is the fault-tolerant counterpart of
:func:`repro.parallel.survey.run_sharded_survey`.  Instead of
pre-dealing the unit list round-robin (one fixed shard per worker, any
failure fatal), the parent *dispatches*: it grants bounded *leases*
(:mod:`repro.parallel.leases`) of the lowest pending unit indices to
whichever worker is idle; a :class:`~repro.parallel.supervisor.Supervisor`
watches every worker's wall-clock heartbeat and exit status; and a dead
or wedged worker forfeits exactly its outstanding lease — the lost
units are requeued and *stolen* by the survivors while a replacement is
forked, up to a restart budget.

**Determinism.**  Results stay byte-identical to the round-robin pool —
and therefore to a one-worker run — for any worker count *and any kill
schedule*, because every unit executes under the PR-4 shared-nothing
invariants (derived per-unit rng, fresh breaker, rewound simulated
clock; see :func:`repro.parallel.survey._crawl_units`) and the parent
folds results in global unit order.  A unit that dies with its worker
is simply re-crawled elsewhere: same derivation, same bytes.

**Quarantine.**  A unit whose execution kills ``poison_threshold``
workers (default two) is not retried forever: it is *quarantined* as an
explicit failed outcome with ``error_class="worker-poison"`` —
mirroring the PR-1 rule that every target yields an outcome, never an
exception.  Strikes survive parent crashes via the lease log
(:mod:`repro.state.leaselog`), a supervision side-journal that never
touches the main checkpoint.

**Streaming + backpressure.**  Workers journal each completed unit to a
per-incarnation shard journal (the crash-safe PR-3/PR-4 format, adopted
on resume) and stream it home over the pipe; the parent flushes results
into the main checkpoint *in global index order* as the frontier
completes, holding only out-of-order completions in a reorder buffer.
When the buffer reaches ``max_backlog``, new leases are deferred —
except the lease containing the flush frontier, so the drain can never
deadlock.  That bound is what keeps a million-unit run in constant
parent memory.

**Telemetry.**  Lease grants, steals, deaths, timeouts, and quarantines
describe execution placement, not results, so they never enter the
result registry or trace: they land in :class:`StealStats` and, when
observability is on, the :data:`repro.obs.OBS.diagnostics` registry — a
channel exporters exclude by default precisely so metric exports stay
byte-identical across kill schedules.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable, Sequence

from repro.obs import NULL_TRACER, OBS, ProgressTracker, Tracer
from repro.parallel.leases import LeaseLedger, generate_leases
from repro.parallel.supervisor import Supervisor, WorkerCrashInjector
from repro.parallel.survey import (
    _crawl_units,
    adopt_shard_journals,
    shard_journal_path,
)
from repro.state.checkpoint import Checkpoint
from repro.state.journal import RunJournal
from repro.state.leaselog import (LeaseLog, discard_lease_log,
                                  read_lease_strikes)
from repro.web.crawler import Crawler, CrawlOutcome, CrawlStatus, CrawlTarget
from repro.web.crawlstate import restore_outcome, snapshot_outcome, unit_key

__all__ = [
    "run_stealing_survey",
    "StealStats",
    "SchedulerError",
    "POISONED_ERROR_CLASS",
    "simulate_steal_makespan",
]

#: ``CrawlOutcome.error_class`` of a quarantined (poisoned) unit.
POISONED_ERROR_CLASS = "worker-poison"

#: Wall seconds of lease-holding silence before a worker is declared
#: wedged.  Generous — real units complete in milliseconds; tests that
#: inject wedges dial it way down.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


class SchedulerError(RuntimeError):
    """The scheduler cannot make progress (all workers dead, restart
    budget spent, units still pending)."""


@dataclass(slots=True)
class StealStats:
    """Supervision telemetry for one scheduling pass — not a result.

    Everything here may vary with worker count, host timing, and kill
    schedule, which is exactly why it lives outside the result
    registry and trace.  ``supervisor_trace`` collects wall-clock
    supervision spans (dispatch, per-death recovery) when diagnostics
    are enabled.
    """

    workers: int = 0
    lease_size: int = 0
    units_total: int = 0
    units_restored: int = 0
    units_crawled: int = 0
    leases_granted: int = 0
    units_reassigned: int = 0
    worker_deaths: int = 0
    heartbeat_timeouts: int = 0
    worker_restarts: int = 0
    backpressure_stalls: int = 0
    max_heartbeat_lag_s: float = 0.0
    quarantined: list[int] = field(default_factory=list)
    supervisor_trace: Tracer = NULL_TRACER

    def publish(self) -> None:
        """Mirror the counters into ``OBS.diagnostics`` (if enabled)."""
        registry = OBS.diagnostics
        if not registry.enabled:
            return
        for name, value in (
                ("leases_granted", self.leases_granted),
                ("units_crawled", self.units_crawled),
                ("units_reassigned", self.units_reassigned),
                ("worker_deaths", self.worker_deaths),
                ("heartbeat_timeouts", self.heartbeat_timeouts),
                ("worker_restarts", self.worker_restarts),
                ("backpressure_stalls", self.backpressure_stalls),
                ("quarantined_units", len(self.quarantined))):
            if value:
                registry.counter(f"parallel.steal.{name}").inc(value)
        if self.max_heartbeat_lag_s:
            registry.gauge("parallel.steal.max_heartbeat_lag_ms").set(
                round(self.max_heartbeat_lag_s * 1000.0, 3))


# -- the deterministic makespan model --------------------------------------

def simulate_steal_makespan(latencies: Sequence[float], workers: int,
                            lease_size: int, *,
                            kill: tuple[int, float] | None = None
                            ) -> float:
    """Model the steal scheduler's wall-clock on ``workers`` free cores.

    A pure event simulation: leases of consecutive units go to the
    earliest-free worker, so the result is what real wall-clock
    converges to on an unloaded machine — the deterministic number the
    benchmark asserts on (CI wall-clock is weather; this is climate).

    ``kill=(slot, at_time)`` removes one worker at a simulated instant:
    units of its in-flight lease unfinished by then requeue for the
    survivors, exactly like a revoked lease, and no replacement is
    forked (the pessimistic case — a respawn only improves on it).

    >>> simulate_steal_makespan([1.0] * 8, workers=4, lease_size=1)
    2.0
    >>> simulate_steal_makespan([], workers=4, lease_size=1)
    0.0
    >>> simulate_steal_makespan([1.0] * 8, workers=4, lease_size=1,
    ...                         kill=(0, 0.5))
    3.0
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not latencies:
        return 0.0
    queue = deque(generate_leases(range(len(latencies)), lease_size))
    free_at = [0.0] * workers
    alive = [True] * workers
    kill_slot, kill_time = kill if kill is not None else (None, 0.0)
    makespan = 0.0
    while queue:
        lease = queue.popleft()
        slots = [slot for slot in range(workers) if alive[slot]]
        if not slots:
            raise SchedulerError("makespan model: every worker is dead")
        slot = min(slots, key=lambda s: (free_at[s], s))
        if slot == kill_slot and free_at[slot] >= kill_time:
            alive[slot] = False  # died while idle; re-pick a worker
            queue.appendleft(lease)
            continue
        elapsed = free_at[slot]
        requeued: tuple[int, ...] = ()
        for position, index in enumerate(lease.indices):
            finish = elapsed + latencies[index]
            if slot == kill_slot and elapsed <= kill_time < finish:
                requeued = lease.indices[position:]
                alive[slot] = False
                elapsed = kill_time
                break
            elapsed = finish
        free_at[slot] = elapsed
        makespan = max(makespan, elapsed)
        for chunk in reversed(generate_leases(requeued, lease_size)):
            queue.appendleft(chunk)
    return makespan


# -- the scheduler ---------------------------------------------------------

def _poisoned_payload(group_name: str, target: CrawlTarget, *,
                      threshold: int) -> tuple[str, dict]:
    """The deterministic checkpoint entry of a quarantined unit."""
    outcome = CrawlOutcome(target=target, status=CrawlStatus.FAILED,
                           record=None,
                           error_class=POISONED_ERROR_CLASS,
                           attempts=threshold, latency_ms=0.0)
    return unit_key(group_name, target), {
        "group": group_name,
        "outcome": snapshot_outcome(outcome),
        "state": {}}


def run_stealing_survey(groups, *, crawler_factory: Callable[[], Crawler],
                        workers: int, jitter_seed: int = 0,
                        checkpoint: Checkpoint | None = None,
                        scope: str = "survey",
                        scope_config: dict | None = None,
                        lease_size: int = 4,
                        max_worker_restarts: int = 4,
                        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                        poison_threshold: int = 2,
                        max_backlog: int | None = None,
                        crash_injector: WorkerCrashInjector | None = None,
                        stats: StealStats | None = None,
                        ) -> dict[str, list[CrawlOutcome]]:
    """Crawl ``groups`` under the supervised work-stealing scheduler.

    Same contract as
    :func:`~repro.parallel.survey.run_sharded_survey` — byte-identical
    outcomes for every ``workers`` value, checkpoint resume across
    worker counts *and across schedulers* — plus fault tolerance: a
    worker death or wedge costs only time, and a unit that kills
    ``poison_threshold`` workers is retired as an explicit ``failed``
    outcome instead of retried forever.

    ``crash_injector`` deterministically kills or wedges workers (the
    test/benchmark harness); it only acts on the forked path.
    ``stats``, when given, is filled with supervision telemetry.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if poison_threshold < 1:
        raise ValueError(
            f"poison_threshold must be >= 1, got {poison_threshold}")
    if stats is None:
        stats = StealStats()
    stats.workers = workers
    stats.lease_size = lease_size
    if OBS.diagnostics.enabled:
        stats.supervisor_trace = Tracer()
    trace = stats.supervisor_trace

    units: list[tuple[int, str, CrawlTarget]] = [
        (index, group.name, target)
        for index, (group, target) in enumerate(
            (group, target) for group in groups for target in group.targets)]
    unit_by_index = {unit[0]: unit for unit in units}
    outcomes: dict[int, CrawlOutcome] = {}
    stats.units_total = len(units)

    checkpoint_path = None
    seeded_strikes: dict[int, int] = {}
    seeded_quarantine: set[int] = set()
    if checkpoint is not None:
        checkpoint_path = checkpoint.path
        checkpoint.begin_scope(scope, scope_config)
        if checkpoint.resumed:
            # Read the crashed run's suspicions BEFORE LeaseLog.start
            # truncates the file below.
            seeded_strikes, seeded_quarantine = read_lease_strikes(
                checkpoint_path, scope)
        adopt_shard_journals(checkpoint, scope)
        index_by_key = {unit_key(group_name, target): index
                        for index, group_name, target in units}
        for key, payload in checkpoint.completed(scope):
            index = index_by_key.get(key)
            if index is not None:
                outcomes[index] = restore_outcome(payload["outcome"])
    stats.units_restored = len(outcomes)

    pending = sorted(unit[0] for unit in units if unit[0] not in outcomes)
    collect_metrics = OBS.registry.enabled
    collect_spans = OBS.tracer.enabled
    parent_span = OBS.tracer.current() if collect_spans else None
    trace_context = ((parent_span.span_id, parent_span.depth + 1)
                     if parent_span is not None else ("", 0))

    # -- in-order flush machinery (shared by inline and forked paths) -----
    # ``buffer`` holds completed-but-unflushed results keyed by global
    # index; ``cursor`` walks ``pending`` and flushes each index the
    # moment it (and everything before it) is present.  The checkpoint
    # journal, metric merges, and trace adoption therefore happen in
    # exactly the order a one-worker run would produce them.
    buffer: dict[int, tuple[str, dict, object, object]] = {}
    cursor = 0
    strikes = dict(seeded_strikes)

    # Progress gauges + simulated-clock ticks happen at *flush* time —
    # global unit order — so they are a pure function of the workload,
    # identical at any worker count and under any kill schedule.
    progress = (ProgressTracker(scope, len(units), done=len(outcomes))
                if OBS.registry.enabled or OBS.timeseries.enabled
                else None)

    def flush() -> None:
        nonlocal cursor
        while cursor < len(pending) and pending[cursor] in buffer:
            index = pending[cursor]
            cursor += 1
            key, payload, metrics, spans = buffer.pop(index)
            if checkpoint is not None:
                checkpoint.record(scope, key, payload)
            if collect_metrics and metrics is not None:
                OBS.registry.merge(metrics)
            if collect_spans and spans:
                OBS.tracer.adopt(spans)
            outcomes[index] = restore_outcome(payload["outcome"])
            if progress is not None:
                progress.step(outcomes[index].latency_ms)

    def flush_complete() -> bool:
        return cursor >= len(pending)

    def frontier() -> int | None:
        """The lowest not-yet-flushed global index."""
        return pending[cursor] if cursor < len(pending) else None

    lease_log: LeaseLog | None = None
    if checkpoint_path is not None:
        if pending:
            lease_log = LeaseLog.start(checkpoint_path, scope)
        else:
            # Everything restored: nothing to supervise, but a crashed
            # predecessor may have left its (now pointless) lease log.
            discard_lease_log(checkpoint_path, scope)

    def quarantine(index: int) -> None:
        _, group_name, target = unit_by_index[index]
        key, payload = _poisoned_payload(group_name, target,
                                         threshold=poison_threshold)
        buffer[index] = (key, payload, None, None)
        stats.quarantined.append(index)
        OBS.flight.record("unit.quarantine", unit=index,
                          strikes=strikes.get(index, 0))
        if lease_log is not None:
            lease_log.quarantine(index)

    # Units the crashed run already condemned start condemned: strikes
    # live in the synced lease log, so a poison unit never gets to kill
    # two fresh workers per resume.
    pre_quarantined = sorted(
        index for index in pending
        if index in seeded_quarantine
        or strikes.get(index, 0) >= poison_threshold)
    for index in pre_quarantined:
        quarantine(index)

    grantable = [index for index in pending
                 if index not in set(pre_quarantined)]
    fork_usable = "fork" in multiprocessing.get_all_start_methods()

    # -- inline fallback ---------------------------------------------------
    def run_inline() -> None:
        """One worker (or no fork support): leases run in-process.

        Same flush path as the forked scheduler, so the checkpoint
        journal, metric merge order, and adopted trace — and therefore
        every export — are byte-identical at every worker count
        including 1.
        """
        crawler = crawler_factory()
        for lease in generate_leases(grantable, lease_size):
            stats.leases_granted += 1
            results = _crawl_units(
                crawler,
                [unit_by_index[index] for index in lease.indices],
                jitter_seed=jitter_seed, collect_metrics=collect_metrics,
                collect_spans=collect_spans, trace_context=trace_context,
                record_unit=lambda *_args: None)
            for index, key, payload, metrics, spans in results:
                buffer[index] = (key, payload, metrics, spans)
                stats.units_crawled += 1
            flush()
            if checkpoint is not None:
                checkpoint.sync()  # durability barrier once per lease

    # -- forked worker entry (inherited by fork, never pickled) -----------
    def worker_entry(slot: int, incarnation: int, conn) -> None:
        from repro.parallel.caches import reset_process_caches
        from repro.state.crashpoints import CRASH

        reset_process_caches()
        # Parent-death injection (repro.state.crashpoints) must not fire
        # in workers: worker death has its own deterministic injector.
        CRASH.injector = None
        crawler = crawler_factory()
        journal = None
        if checkpoint_path is not None:
            journal = RunJournal.create(
                shard_journal_path(checkpoint_path, incarnation),
                {"shard": incarnation, "scope": scope, "slot": slot})

        def record_unit(index: int, key: str, payload: dict) -> None:
            if journal is not None:
                journal.append({"kind": "unit", "scope": scope,
                                "key": key, "index": index,
                                "payload": payload})

        units_done = 0
        try:
            while True:
                message = conn.recv()
                if message[0] == "stop":
                    break
                _kind, lease_id, indices = message
                for index in indices:
                    if crash_injector is not None:
                        crash_injector.execute(crash_injector.verdict(
                            slot, incarnation, units_done, index))
                    result, = _crawl_units(
                        crawler, [unit_by_index[index]],
                        jitter_seed=jitter_seed,
                        collect_metrics=collect_metrics,
                        collect_spans=collect_spans,
                        trace_context=trace_context,
                        record_unit=record_unit)
                    _index, key, payload, metrics, spans = result
                    if spans:
                        # Transport tag for crash forensics; the parent
                        # strips it at adoption (placement is not a
                        # result).
                        for span_record in spans:
                            span_record["worker"] = slot
                    # Every message carries a monotonic send stamp as
                    # its final element; fork children share the
                    # parent's CLOCK_MONOTONIC epoch, so the parent
                    # turns receive-minus-send into heartbeat *lag*.
                    conn.send(("unit", lease_id, index, key, payload,
                               metrics, spans, time.monotonic()))
                    units_done += 1
                if journal is not None:
                    journal.sync()  # batched fsync, once per lease
                conn.send(("lease_done", lease_id, time.monotonic()))
        except (EOFError, KeyboardInterrupt):
            pass  # parent gone; nothing left to report to
        finally:
            if journal is not None:
                journal.close()
        conn.close()
        os._exit(0)

    # -- the forked dispatcher --------------------------------------------
    def run_forked() -> Supervisor:
        backlog_cap = (max_backlog if max_backlog is not None
                       else max(64, 8 * lease_size * workers))
        poll_interval = min(0.05, max(0.01, heartbeat_timeout / 5.0))
        supervisor = Supervisor(worker_entry, workers=workers,
                                heartbeat_timeout=heartbeat_timeout,
                                max_restarts=max_worker_restarts)
        ledger = LeaseLedger()
        heap = list(grantable)
        heapq.heapify(heap)

        def on_message(handle, message) -> None:
            kind = message[0]
            if kind == "unit":
                _, lease_id, index, key, payload, metrics, spans = message
                ledger.complete(lease_id, index)
                if index not in buffer and index not in outcomes:
                    buffer[index] = (key, payload, metrics, spans)
                    stats.units_crawled += 1
                strikes.pop(index, None)  # it ran fine; absolve it
            elif kind == "lease_done":
                ledger.finish(message[1])
                if (handle.lease is not None
                        and handle.lease.lease_id == message[1]):
                    handle.lease = None

        def drain(handle) -> None:
            try:
                while handle.conn.poll():
                    message = handle.conn.recv()
                    # Strip the trailing monotonic send stamp and turn
                    # it into heartbeat lag before dispatching.
                    lag = supervisor.note_heartbeat(handle, message[-1])
                    if OBS.diagnostics.enabled:
                        OBS.diagnostics.gauge(
                            "parallel.steal.heartbeat_lag_ms",
                            slot=handle.slot).set(round(lag * 1000.0, 3))
                    on_message(handle, message[:-1])
            except (EOFError, OSError):
                pass  # worker died mid-message; the reap handles it

        def handle_death(handle, reason: str) -> None:
            with trace.span("steal.recover_worker", slot=handle.slot,
                            incarnation=handle.incarnation, reason=reason):
                stats.worker_deaths += 1
                if reason == "timeout":
                    stats.heartbeat_timeouts += 1
                drain(handle)  # salvage results already in the pipe
                if handle.lease is not None:
                    lease_id = handle.lease.lease_id
                    incomplete = ledger.revoke(lease_id)
                    suspect = incomplete[0] if incomplete else None
                    OBS.flight.record("lease.revoke", lease=lease_id,
                                      slot=handle.slot, reason=reason,
                                      suspect=suspect)
                    if suspect is None:
                        if lease_log is not None:
                            lease_log.revoke(lease_id, reason=reason,
                                             suspect=None, strikes=0)
                    else:
                        strikes[suspect] = strikes.get(suspect, 0) + 1
                        if lease_log is not None:
                            lease_log.revoke(lease_id, reason=reason,
                                             suspect=suspect,
                                             strikes=strikes[suspect])
                        requeue = list(incomplete)
                        if strikes[suspect] >= poison_threshold:
                            quarantine(suspect)
                            requeue.remove(suspect)
                        for index in requeue:
                            heapq.heappush(heap, index)
                        stats.units_reassigned += len(requeue)
                    handle.lease = None
                try:
                    handle.conn.close()
                except OSError:
                    pass
                if heap or ledger.outstanding:
                    supervisor.respawn(handle.slot)

        def try_grant() -> None:
            for handle in list(supervisor.handles.values()):
                if not heap:
                    return
                if not handle.idle:
                    continue
                if len(buffer) >= backlog_cap and heap[0] != frontier():
                    # Backpressure: defer every lease except the one
                    # that unblocks the in-order flush frontier.
                    stats.backpressure_stalls += 1
                    return
                indices = [heapq.heappop(heap)
                           for _ in range(min(lease_size, len(heap)))]
                lease = ledger.grant(handle.slot, indices)
                handle.lease = lease
                supervisor.note_activity(handle)  # deadline from grant
                stats.leases_granted += 1
                OBS.flight.record("lease.grant", lease=lease.lease_id,
                                  slot=handle.slot,
                                  incarnation=handle.incarnation,
                                  units=len(indices))
                if lease_log is not None:
                    lease_log.grant(lease.lease_id, handle.slot,
                                    handle.incarnation, indices)
                try:
                    handle.conn.send(("lease", lease.lease_id, indices))
                except (BrokenPipeError, OSError):
                    pass  # found dead on the next poll; revoked there

        def sample_liveness() -> None:
            """Per-heartbeat placement gauges → diagnostics sidecar.

            Everything here varies with timing and kill schedule, so it
            goes to ``OBS.diagnostics`` (excluded from result exports)
            and the wall-clock-rate-limited ``.diag`` time-series
            sidecar, never the deterministic main stream.
            """
            if OBS.diagnostics.enabled:
                registry = OBS.diagnostics
                registry.gauge("parallel.steal.workers_live").set(
                    len(supervisor.handles))
                registry.gauge("parallel.steal.backlog").set(len(buffer))
                registry.gauge("parallel.steal.lease_queue").set(
                    len(heap) + ledger.in_flight)
                registry.gauge("parallel.steal.units_flushed").set(
                    cursor)
                registry.gauge(
                    "parallel.steal.max_heartbeat_lag_ms").set(
                    round(supervisor.max_lag_s * 1000.0, 3))
                for handle in supervisor.handles.values():
                    registry.gauge("parallel.steal.worker_idle",
                                   slot=handle.slot).set(
                        1 if handle.idle else 0)
            OBS.timeseries.sample_diagnostics()

        with trace.span("steal.dispatch", workers=workers,
                        lease_size=lease_size, units=len(grantable)):
            supervisor.spawn_initial()
            try:
                while True:
                    flush()
                    if flush_complete():
                        break
                    try_grant()
                    if not supervisor.handles:
                        raise SchedulerError(
                            f"no workers left: {stats.worker_deaths} "
                            f"died ({stats.heartbeat_timeouts} wedged), "
                            f"restart budget {max_worker_restarts} "
                            f"spent, {len(heap) + ledger.in_flight} "
                            f"unit(s) unfinished")
                    by_conn = {handle.conn: handle
                               for handle in supervisor.handles.values()}
                    for ready in connection.wait(list(by_conn),
                                                 timeout=poll_interval):
                        drain(by_conn[ready])
                    for handle, reason in supervisor.dead_workers():
                        handle_death(handle, reason)
                    sample_liveness()
            finally:
                supervisor.shutdown()  # no zombies, on any path
        stats.worker_restarts = supervisor.restarts_used
        stats.max_heartbeat_lag_s = supervisor.max_lag_s
        return supervisor

    try:
        if not grantable:
            flush()  # restored and pre-quarantined units only
        elif workers == 1 or len(grantable) == 1 or not fork_usable:
            run_inline()
            flush()
        else:
            supervisor = run_forked()
            # A clean finish leaves no supervision residue: every unit
            # in the per-incarnation shard journals was flushed into
            # the checkpoint, exactly like the round-robin pool's.
            if checkpoint_path is not None:
                for incarnation in range(supervisor.incarnations_spawned):
                    path = shard_journal_path(checkpoint_path, incarnation)
                    if os.path.exists(path):
                        os.remove(path)
    except BaseException:
        # Crash path: keep the lease log and every shard journal — the
        # resumed run adopts them.  (Workers are already reaped; the
        # supervisor's shutdown runs on every exit path.)
        if lease_log is not None:
            lease_log.close()
        raise

    if checkpoint is not None:
        checkpoint.sync()
    if lease_log is not None:
        lease_log.remove()
    stats.publish()

    outcomes_by_group: dict[str, list[CrawlOutcome]] = {
        group.name: [] for group in groups}
    for index, group_name, _target in units:
        outcomes_by_group[group_name].append(outcomes[index])
    return outcomes_by_group
