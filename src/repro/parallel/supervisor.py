"""Worker supervision for the work-stealing scheduler: spawn, watch, reap.

The scheduler's parent process must answer one question continuously:
*is every worker that holds a lease still making progress?*  This
module owns that answer.  A :class:`Supervisor` spawns fork workers,
tracks a wall-clock heartbeat deadline per worker (``time.monotonic``
— deliberately independent of the survey's *simulated* clock, which a
wedged worker stops advancing), reaps exited processes, and respawns
replacements up to a restart budget.

Death is detected two ways:

* **exit reap** — the worker process is no longer alive
  (``Process.is_alive()`` false); its exit code/signal is recorded;
* **heartbeat deadline** — the worker is alive but has sent nothing
  for longer than ``heartbeat_timeout`` while holding a lease (the
  wedge signature: an infinite loop, a deadlocked pipe, a stuck
  syscall).  The supervisor SIGTERMs it and treats it as dead.

Deterministic failure injection lives here too:
:class:`WorkerCrashInjector` extends the crash-injection idiom of
:mod:`repro.state.crashpoints` from *parent* death to *worker* death —
kill worker slot K after N units, wedge instead of exiting, or poison
global unit M so it kills whichever worker touches it, every time.
The injector is consulted inside the worker process; it is immutable,
so every forked incarnation sees the same schedule and a given kill
plan replays identically.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.parallel.leases import Lease

__all__ = [
    "WorkerCrashInjector",
    "WorkerHandle",
    "Supervisor",
    "POISON_EXIT_CODE",
]

#: Exit code injected worker deaths use; distinguishable from crashes.
POISON_EXIT_CODE = 76


@dataclass(frozen=True)
class WorkerCrashInjector:
    """A deterministic worker-death schedule (test/benchmark harness).

    ``kill_after`` maps a worker *slot* to the number of units its
    first incarnation completes before dying; the replacement (a later
    incarnation on the same slot) survives, so a kill schedule models a
    transient worker loss.  The supervisor numbers incarnations
    globally and deals the initial round in slot order, so slot ``k``'s
    first incarnation is exactly incarnation ``k`` — that is the gate.
    Slots listed in ``wedge_slots`` wedge — spin without reporting, to
    be caught by the heartbeat deadline — instead of exiting.
    ``poison_units`` are global unit indices that kill *any* worker
    attempting them, every time: the quarantine trigger.

    >>> injector = WorkerCrashInjector(kill_after={1: 2})
    >>> injector.verdict(slot=1, incarnation=1, units_done=2, index=9)
    'exit'
    >>> injector.verdict(slot=1, incarnation=3, units_done=2, index=9)
    >>> injector.verdict(slot=0, incarnation=0, units_done=2, index=9)
    """

    kill_after: Mapping[int, int] = field(default_factory=dict)
    wedge_slots: frozenset = frozenset()
    poison_units: frozenset = frozenset()
    exit_code: int = POISON_EXIT_CODE

    def verdict(self, slot: int, incarnation: int, units_done: int,
                index: int) -> str | None:
        """``'exit'``, ``'wedge'``, or ``None`` for unit ``index`` about
        to run as the worker's ``units_done``-th completed-so-far."""
        if index in self.poison_units:
            return "wedge" if slot in self.wedge_slots else "exit"
        if self.kill_after.get(slot) == units_done and incarnation == slot:
            return "wedge" if slot in self.wedge_slots else "exit"
        return None

    def execute(self, verdict: str | None) -> None:
        """Carry out a verdict inside the worker process."""
        if verdict == "exit":
            os._exit(self.exit_code)
        if verdict == "wedge":
            while True:  # caught by the supervisor's heartbeat deadline
                time.sleep(0.05)


@dataclass(slots=True)
class WorkerHandle:
    """Parent-side state of one live worker incarnation.

    ``last_lag_s`` is the most recent *heartbeat lag* — how long the
    worker's last message sat in the pipe before the parent drained it
    (receive time minus the worker's monotonic send stamp).  Liveness
    says "the worker spoke recently"; lag says "and the parent is
    keeping up".
    """

    slot: int
    incarnation: int
    proc: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection
    last_seen: float
    lease: Lease | None = None
    exit_code: int | None = None
    last_lag_s: float = 0.0

    @property
    def idle(self) -> bool:
        return self.lease is None


class Supervisor:
    """Spawns, watches, reaps, and respawns the scheduler's workers.

    ``spawn_worker(slot, incarnation, child_conn)`` is the worker entry
    point (a closure over the unit list — workers inherit it by fork);
    the supervisor owns process lifecycle only, never lease logic.
    ``max_restarts`` bounds replacement spawns across the whole run
    (the initial ``workers`` spawns are free).
    """

    def __init__(self, worker_entry: Callable, *, workers: int,
                 heartbeat_timeout: float, max_restarts: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._entry = worker_entry
        self.workers = workers
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max_restarts
        self._clock = clock
        self._context = multiprocessing.get_context("fork")
        self._next_incarnation = 0
        self.handles: dict[int, WorkerHandle] = {}  # slot -> live handle
        self.restarts_used = 0
        self.deaths = 0
        self.timeouts = 0
        self.max_lag_s = 0.0

    # -- spawning --------------------------------------------------------

    def _spawn(self, slot: int) -> WorkerHandle:
        incarnation = self._next_incarnation
        self._next_incarnation += 1
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        proc = self._context.Process(
            target=self._entry, args=(slot, incarnation, child_conn),
            daemon=True)
        proc.start()
        child_conn.close()  # parent keeps only its end
        handle = WorkerHandle(slot=slot, incarnation=incarnation,
                              proc=proc, conn=parent_conn,
                              last_seen=self._clock())
        self.handles[slot] = handle
        from repro.obs import OBS
        OBS.flight.record("worker.spawn", slot=slot,
                          incarnation=incarnation)
        return handle

    def spawn_initial(self) -> list[WorkerHandle]:
        """Fork the first incarnation for every slot."""
        return [self._spawn(slot) for slot in range(self.workers)]

    def respawn(self, slot: int) -> WorkerHandle | None:
        """Fork a replacement for a dead slot, if budget remains."""
        if self.restarts_used >= self.max_restarts:
            return None
        self.restarts_used += 1
        return self._spawn(slot)

    @property
    def incarnations_spawned(self) -> int:
        """Total worker processes forked so far (shard-journal count)."""
        return self._next_incarnation

    # -- watching --------------------------------------------------------

    def note_activity(self, handle: WorkerHandle) -> None:
        handle.last_seen = self._clock()

    def note_heartbeat(self, handle: WorkerHandle,
                       sent_s: float) -> float:
        """Record a stamped heartbeat; returns the observed lag.

        ``sent_s`` is the worker's ``time.monotonic()`` at send time —
        fork children share the parent's CLOCK_MONOTONIC epoch on
        Linux, so receive-minus-send is a real pipe+poll latency.  The
        lag is clamped at zero (a torn or skewed stamp must never
        *extend* a heartbeat deadline).
        """
        now = self._clock()
        handle.last_seen = now
        lag = max(0.0, now - sent_s)
        handle.last_lag_s = lag
        if lag > self.max_lag_s:
            self.max_lag_s = lag
        return lag

    def dead_workers(self) -> list[tuple[WorkerHandle, str]]:
        """Detect (and remove from the live set) every dead worker.

        Returns ``(handle, reason)`` pairs, ``reason`` one of ``"exit"``
        (the process is gone; ``handle.exit_code`` records how) or
        ``"timeout"`` (alive but silent past the heartbeat deadline
        while holding a lease — SIGTERMed here).  Idle workers are
        never timed out: with no lease there is nothing they owe us.

        The handle's pipe is left open: results the worker managed to
        send before dying may still sit in the OS buffer, and the
        scheduler salvages them before closing the connection itself.
        """
        now = self._clock()
        dead: list[tuple[WorkerHandle, str]] = []
        for slot, handle in list(self.handles.items()):
            if not handle.proc.is_alive():
                handle.proc.join()
                handle.exit_code = handle.proc.exitcode
                dead.append((handle, "exit"))
            elif (handle.lease is not None
                  and now - handle.last_seen > self.heartbeat_timeout):
                handle.proc.terminate()
                handle.proc.join()
                handle.exit_code = handle.proc.exitcode
                dead.append((handle, "timeout"))
                self.timeouts += 1
            else:
                continue
            del self.handles[slot]
            self.deaths += 1
        if dead:
            from repro.obs import OBS
            for handle, reason in dead:
                OBS.flight.record(f"worker.{reason}", slot=handle.slot,
                                  incarnation=handle.incarnation,
                                  exit_code=handle.exit_code)
        return dead

    # -- shutdown --------------------------------------------------------

    def shutdown(self, *, stop_message=("stop",)) -> None:
        """Stop every live worker: polite message first, then the axe.

        Always leaves zero children behind — the no-zombie guarantee
        holds on success and failure paths alike.
        """
        for handle in self.handles.values():
            try:
                handle.conn.send(stop_message)
            except (BrokenPipeError, OSError):
                pass  # already dead; reaped below
        for handle in self.handles.values():
            handle.proc.join(timeout=5.0)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join()
            handle.conn.close()
        self.handles.clear()
