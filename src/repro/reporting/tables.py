"""ASCII table rendering for benchmark output.

Every benchmark prints the paper's rows next to the measured ones;
this renderer keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_comparison"]


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_comparison(title: str,
                      rows: Iterable[tuple[str, object, object]]) -> str:
    """Render (metric, paper value, measured value) comparison rows."""
    table_rows = [(name, paper, measured, _verdict(paper, measured))
                  for name, paper, measured in rows]
    return render_table(("metric", "paper", "measured", "match"),
                        table_rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.0f}"
    if isinstance(value, int):
        # No thousands separators below 10,000 — years print as years.
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)


def _verdict(paper: object, measured: object,
             tolerance: float = 0.15) -> str:
    """A rough shape check: within ``tolerance`` relative error."""
    try:
        p = float(paper)   # type: ignore[arg-type]
        m = float(measured)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return ""
    if p == 0:
        return "=" if m == 0 else "~"
    rel = abs(m - p) / abs(p)
    if rel <= 0.02:
        return "=="
    if rel <= tolerance:
        return "~"
    return "!"
