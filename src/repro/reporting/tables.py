"""ASCII table rendering for benchmark output.

Every benchmark prints the paper's rows next to the measured ones;
this renderer keeps that output aligned and diff-friendly.  It is also
the human-readable exporter for :mod:`repro.obs`:
:func:`render_metrics_summary` turns a metrics registry and a span
trace into the "where did the time go" report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.web.crawler import CrawlHealth

__all__ = ["render_table", "render_comparison", "render_crawl_health",
           "render_metrics_summary", "render_summary_records"]


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_comparison(title: str,
                      rows: Iterable[tuple[str, object, object]]) -> str:
    """Render (metric, paper value, measured value) comparison rows."""
    table_rows = [(name, paper, measured, _verdict(paper, measured))
                  for name, paper, measured in rows]
    return render_table(("metric", "paper", "measured", "match"),
                        table_rows, title=title)


def render_crawl_health(health: "CrawlHealth",
                        title: str = "Crawl health") -> str:
    """Render a :class:`~repro.web.crawler.CrawlHealth` summary.

    One row per outcome status, then one per error class — failures
    (tombstones) and the classes degraded visits recovered from — so a
    survey's denominator and its loss profile read off one table.
    """
    total = health.total or 1
    rows: list[tuple[object, object, object]] = [
        ("visited", health.total, ""),
        ("success", health.succeeded, f"{health.succeeded / total:.1%}"),
        ("degraded", health.degraded, f"{health.degraded / total:.1%}"),
        ("failed", health.failed, f"{health.failed / total:.1%}"),
        ("retried", health.retried, f"{health.retried / total:.1%}"),
        ("breaker skips", health.breaker_skips, ""),
        ("attempts total", health.total_attempts, ""),
        ("mean latency (ms)", round(health.mean_latency_ms, 1), ""),
    ]
    for label, count in sorted(health.failure_counts.items()):
        rows.append((f"failed: {label}", count, f"{count / total:.1%}"))
    for label, count in sorted(health.recovered_counts.items()):
        rows.append((f"recovered: {label}", count,
                     f"{count / total:.1%}"))
    # When the crawl ran under an enabled observability registry, the
    # health snapshot carries pipeline metrics — append them so the one
    # table answers both "what did we lose" and "where did matches go".
    for name, value in health.metrics.items():
        rows.append((name, value, ""))
    return render_table(("metric", "count", "share"), rows, title=title)


def render_metrics_summary(registry: "MetricsRegistry | None" = None,
                           tracer: "Tracer | None" = None,
                           title: str = "Observability summary",
                           run_id: str | None = None) -> str:
    """Render the one-screen observability report.

    Three stacked tables: a span rollup (count, total/mean duration,
    and share of top-level traced time) when ``tracer`` has finished
    spans, a distributions table (count, mean, and estimated
    p50/p95/p99 per histogram), then one row per counter/gauge from
    ``registry``.  ``run_id``, when known, heads the report so two
    renderings of the same run are trivially correlatable.  Either
    input may be ``None`` or empty — an empty report still renders
    (headers plus an explicit "(none recorded)" row) so callers can
    print it unconditionally.

    The renderer works from *export records* internally (see
    :func:`render_summary_records`), so re-rendering a run from its
    JSONL artifact reproduces the live report byte for byte.
    """
    from repro.obs.export import span_records

    spans = span_records(tracer) if tracer is not None else []
    metrics = registry.snapshot() if registry is not None else []
    return _render_summary(metrics, spans, title=title, run_id=run_id)


def render_summary_records(records: "Iterable[dict]",
                           title: str = "Observability summary") -> str:
    """:func:`render_metrics_summary` over exported artifact records.

    ``records`` is any mix of run/metric/span records (the
    concatenation of one run's ``--metrics-out`` and ``--trace`` files,
    say); the run-ledger header, when present, supplies the run ID.
    """
    metrics: list[dict] = []
    spans: list[dict] = []
    run_id = None
    for record in records:
        kind = record.get("type")
        if kind == "span":
            spans.append(record)
        elif kind == "run":
            run_id = record.get("run_id")
        elif kind in ("counter", "gauge", "histogram"):
            metrics.append(record)
    return _render_summary(metrics, spans, title=title, run_id=run_id)


def _render_summary(metrics: list[dict], spans: list[dict],
                    title: str, run_id: str | None) -> str:
    from repro.obs.analyze import percentile_from_buckets
    from repro.obs.metrics import MetricsRegistry

    header = title if run_id is None else f"{title} — run {run_id}"
    blocks: list[str] = [header]

    if spans:
        rollup: dict[str, list[float]] = {}
        order: list[str] = []
        for span in spans:
            stats = rollup.get(span["name"])
            if stats is None:
                stats = rollup[span["name"]] = [0.0, 0.0]
                order.append(span["name"])
            stats[0] += 1
            stats[1] += span["duration_ms"]
        # Share is relative to top-level traced time: nested spans count
        # inside their parents, so only depth-0 spans form the 100%.
        top_level_ms = sum(s["duration_ms"] for s in spans
                           if s["depth"] == 0)
        denominator = top_level_ms or sum(s[1] for s in rollup.values())
        span_rows = [
            (name, int(rollup[name][0]),
             f"{rollup[name][1]:.1f}",
             f"{rollup[name][1] / rollup[name][0]:.2f}",
             f"{rollup[name][1] / denominator:.1%}" if denominator else "")
            for name in order
        ]
        blocks.append(render_table(
            ("span", "count", "total ms", "mean ms", "share"),
            span_rows, title="Where the time went"))

    registry = MetricsRegistry()
    registry.merge(metrics)
    histogram_rows: list[tuple[object, ...]] = []
    metric_rows: list[tuple[object, object]] = []
    for record in registry.snapshot():
        label = record["name"]
        if record["labels"]:
            inner = ",".join(f"{k}={v}"
                             for k, v in record["labels"].items())
            label = f"{label}{{{inner}}}"
        if record["type"] == "histogram":
            count = record["count"]
            mean = record["sum"] / count if count else 0.0
            histogram_rows.append(
                (label, count, round(mean, 3),
                 *(round(percentile_from_buckets(record["buckets"], q), 3)
                   for q in (50, 95, 99))))
        else:
            metric_rows.append((label, record["value"]))
    if histogram_rows:
        blocks.append(render_table(
            ("histogram", "count", "mean", "p50", "p95", "p99"),
            histogram_rows, title="Distributions"))
    if not metric_rows:
        metric_rows = [("(none recorded)", "")]
    blocks.append(render_table(("metric", "value"), metric_rows,
                               title="Metrics"))
    return "\n\n".join(blocks)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.0f}"
    if isinstance(value, int):
        # No thousands separators below 10,000 — years print as years.
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)


def _verdict(paper: object, measured: object,
             tolerance: float = 0.15) -> str:
    """A rough shape check: within ``tolerance`` relative error."""
    try:
        p = float(paper)   # type: ignore[arg-type]
        m = float(measured)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return ""
    if p == 0:
        return "=" if m == 0 else "~"
    rel = abs(m - p) / abs(p)
    if rel <= 0.02:
        return "=="
    if rel <= tolerance:
        return "~"
    return "!"
