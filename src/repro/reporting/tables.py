"""ASCII table rendering for benchmark output.

Every benchmark prints the paper's rows next to the measured ones;
this renderer keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.web.crawler import CrawlHealth

__all__ = ["render_table", "render_comparison", "render_crawl_health"]


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_comparison(title: str,
                      rows: Iterable[tuple[str, object, object]]) -> str:
    """Render (metric, paper value, measured value) comparison rows."""
    table_rows = [(name, paper, measured, _verdict(paper, measured))
                  for name, paper, measured in rows]
    return render_table(("metric", "paper", "measured", "match"),
                        table_rows, title=title)


def render_crawl_health(health: "CrawlHealth",
                        title: str = "Crawl health") -> str:
    """Render a :class:`~repro.web.crawler.CrawlHealth` summary.

    One row per outcome status, then one per error class — failures
    (tombstones) and the classes degraded visits recovered from — so a
    survey's denominator and its loss profile read off one table.
    """
    total = health.total or 1
    rows: list[tuple[object, object, object]] = [
        ("visited", health.total, ""),
        ("success", health.succeeded, f"{health.succeeded / total:.1%}"),
        ("degraded", health.degraded, f"{health.degraded / total:.1%}"),
        ("failed", health.failed, f"{health.failed / total:.1%}"),
        ("retried", health.retried, f"{health.retried / total:.1%}"),
        ("breaker skips", health.breaker_skips, ""),
        ("attempts total", health.total_attempts, ""),
        ("mean latency (ms)", round(health.mean_latency_ms, 1), ""),
    ]
    for label, count in sorted(health.failure_counts.items()):
        rows.append((f"failed: {label}", count, f"{count / total:.1%}"))
    for label, count in sorted(health.recovered_counts.items()):
        rows.append((f"recovered: {label}", count,
                     f"{count / total:.1%}"))
    return render_table(("metric", "count", "share"), rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.0f}"
    if isinstance(value, int):
        # No thousands separators below 10,000 — years print as years.
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)


def _verdict(paper: object, measured: object,
             tolerance: float = 0.15) -> str:
    """A rough shape check: within ``tolerance`` relative error."""
    try:
        p = float(paper)   # type: ignore[arg-type]
        m = float(measured)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return ""
    if p == 0:
        return "=" if m == 0 else "~"
    rel = abs(m - p) / abs(p)
    if rel <= 0.02:
        return "=="
    if rel <= tolerance:
        return "~"
    return "!"
