"""Dependency-free SVG rendering for the paper's figures.

The benchmark harness prints figures as data; this module draws them.
Three chart types cover every figure in the paper:

* :func:`line_chart` — Figure 3 (growth) and Figure 7 (ECDFs);
* :func:`grouped_bars` — Figure 6 (per-site matches, two configs);
* :func:`stacked_bars` — Figure 9(a–c) (Likert distributions).

Output is a self-contained SVG string (write it to a ``.svg`` file and
open it in any browser).  No third-party plotting library is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence
from xml.sax.saxutils import escape

__all__ = ["SvgCanvas", "line_chart", "grouped_bars", "stacked_bars"]

_PALETTE = ("#4878a8", "#e08214", "#5aae61", "#c51b7d", "#8073ac",
            "#b35806")


@dataclass
class SvgCanvas:
    """A minimal SVG document builder."""

    width: int
    height: int

    def __post_init__(self) -> None:
        self._parts: list[str] = []

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str, opacity: float = 1.0) -> None:
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}" opacity="{opacity}"/>')

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#888", width: float = 1.0) -> None:
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{stroke}" '
            f'stroke-width="{width}"/>')

    def polyline(self, points: Sequence[tuple[float, float]],
                 stroke: str, width: float = 1.6) -> None:
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke="{stroke}" stroke-width="{width}"/>')

    def text(self, x: float, y: float, content: str, *,
             size: int = 11, anchor: str = "start",
             rotate: float | None = None, fill: str = "#222") -> None:
        transform = (f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
                     if rotate is not None else "")
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{escape(content)}</text>')

    def to_svg(self) -> str:
        body = "\n".join(self._parts)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'<rect width="100%" height="100%" fill="white"/>\n'
                f"{body}\n</svg>\n")


_MARGIN = 56


def _scale(values: Sequence[float]) -> tuple[float, float]:
    low = min(values)
    high = max(values)
    if low == high:
        high = low + 1.0
    return low, high


def line_chart(series: dict[str, tuple[Sequence[float], Sequence[float]]],
               *, title: str, x_label: str = "", y_label: str = "",
               width: int = 720, height: int = 400) -> str:
    """Render one or more (x, y) series as a line chart."""
    if not series:
        raise ValueError("line_chart needs at least one series")
    canvas = SvgCanvas(width, height)
    plot_w = width - 2 * _MARGIN
    plot_h = height - 2 * _MARGIN

    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = _scale(all_x)
    y_lo, y_hi = _scale(all_y)

    def px(x: float) -> float:
        return _MARGIN + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return height - _MARGIN - (y - y_lo) / (y_hi - y_lo) * plot_h

    canvas.text(width / 2, 22, title, size=14, anchor="middle")
    canvas.line(_MARGIN, height - _MARGIN, width - _MARGIN,
                height - _MARGIN, stroke="#222")
    canvas.line(_MARGIN, _MARGIN, _MARGIN, height - _MARGIN,
                stroke="#222")
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y_val = y_lo + frac * (y_hi - y_lo)
        canvas.line(_MARGIN, py(y_val), width - _MARGIN, py(y_val),
                    stroke="#ddd")
        canvas.text(_MARGIN - 6, py(y_val) + 4, f"{y_val:,.0f}"
                    if y_hi > 10 else f"{y_val:.2f}",
                    size=10, anchor="end")
        x_val = x_lo + frac * (x_hi - x_lo)
        canvas.text(px(x_val), height - _MARGIN + 16,
                    f"{x_val:,.0f}", size=10, anchor="middle")
    if x_label:
        canvas.text(width / 2, height - 12, x_label, anchor="middle")
    if y_label:
        canvas.text(16, height / 2, y_label, anchor="middle",
                    rotate=-90)

    for index, (label, (xs, ys)) in enumerate(series.items()):
        color = _PALETTE[index % len(_PALETTE)]
        canvas.polyline([(px(x), py(y)) for x, y in zip(xs, ys)],
                        stroke=color)
        canvas.text(width - _MARGIN - 4,
                    _MARGIN + 16 + 16 * index, label,
                    anchor="end", fill=color)
    return canvas.to_svg()


def grouped_bars(labels: Sequence[str],
                 groups: dict[str, Sequence[float]],
                 *, title: str, width: int = 960,
                 height: int = 420,
                 bold: Sequence[bool] | None = None) -> str:
    """Render per-label grouped bars (Figure 6's paired bars)."""
    if not groups:
        raise ValueError("grouped_bars needs at least one group")
    for name, values in groups.items():
        if len(values) != len(labels):
            raise ValueError(f"group {name!r} length mismatch")
    canvas = SvgCanvas(width, height)
    plot_w = width - 2 * _MARGIN
    plot_h = height - 2 * _MARGIN - 40
    y_hi = max(max(values) for values in groups.values()) or 1.0

    slot = plot_w / max(1, len(labels))
    bar_w = slot / (len(groups) + 0.7)

    canvas.text(width / 2, 22, title, size=14, anchor="middle")
    canvas.line(_MARGIN, height - _MARGIN - 40, width - _MARGIN,
                height - _MARGIN - 40, stroke="#222")

    for g_index, (name, values) in enumerate(groups.items()):
        color = _PALETTE[g_index % len(_PALETTE)]
        canvas.text(_MARGIN + 120 * g_index, 40, name, fill=color)
        for i, value in enumerate(values):
            h = value / y_hi * plot_h
            x = _MARGIN + i * slot + g_index * bar_w
            canvas.rect(x, height - _MARGIN - 40 - h, bar_w * 0.92, h,
                        fill=color)

    for i, label in enumerate(labels):
        weight = bold[i] if bold is not None else False
        canvas.text(_MARGIN + i * slot + slot / 2,
                    height - _MARGIN - 26, label, size=9,
                    anchor="end", rotate=-45,
                    fill="#000" if weight else "#666")
    return canvas.to_svg()


def stacked_bars(labels: Sequence[str],
                 segments: dict[str, Sequence[float]],
                 *, title: str, width: int = 720,
                 height: int = 360) -> str:
    """Render 100%-stacked horizontal bars (Figure 9's Likert rows)."""
    for name, values in segments.items():
        if len(values) != len(labels):
            raise ValueError(f"segment {name!r} length mismatch")
    canvas = SvgCanvas(width, height)
    plot_w = width - 2 * _MARGIN - 80
    row_h = (height - 2 * _MARGIN) / max(1, len(labels))

    canvas.text(width / 2, 22, title, size=14, anchor="middle")
    for s_index, name in enumerate(segments):
        color = _PALETTE[s_index % len(_PALETTE)]
        canvas.text(_MARGIN + 120 * s_index, 38, name, size=10,
                    fill=color)

    for i, label in enumerate(labels):
        total = sum(values[i] for values in segments.values()) or 1.0
        x = _MARGIN + 80.0
        y = _MARGIN + i * row_h + row_h * 0.15
        canvas.text(_MARGIN + 74, y + row_h * 0.5, label, size=10,
                    anchor="end")
        for s_index, values in enumerate(segments.values()):
            w = values[i] / total * plot_w
            canvas.rect(x, y, w, row_h * 0.7,
                        fill=_PALETTE[s_index % len(_PALETTE)])
            x += w
    return canvas.to_svg()
