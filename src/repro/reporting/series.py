"""Figure-data containers: time series and sparkline rendering.

Benchmarks regenerate the paper's *figures* as data series; a terminal
has no plot surface, so each series can render itself as a compact
sparkline plus the salient landmarks (jumps, quantiles, crossings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "sparkline", "find_jumps"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Render values as a unicode sparkline resampled to ``width``."""
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    low = min(sampled)
    high = max(sampled)
    span = (high - low) or 1.0
    return "".join(
        _BLOCKS[1 + int((v - low) / span * (len(_BLOCKS) - 2))]
        for v in sampled
    )


def find_jumps(values: Sequence[float], top: int = 3
               ) -> list[tuple[int, float]]:
    """The ``top`` largest single-step increases: (index, delta)."""
    deltas = [(i, values[i] - values[i - 1])
              for i in range(1, len(values))]
    deltas.sort(key=lambda pair: -pair[1])
    return deltas[:top]


@dataclass(frozen=True)
class Series:
    """A labelled (x, y) series with sparkline rendering."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y lengths differ")

    def render(self, width: int = 64) -> str:
        if not self.y:
            return f"{self.label}: (empty)"
        return (f"{self.label}: {sparkline(self.y, width)} "
                f"[{self.y[0]:g} .. {self.y[-1]:g}]")

    def at_x(self, x_value: float) -> float:
        """The y of the last point with x <= x_value."""
        best = None
        for xi, yi in zip(self.x, self.y):
            if xi <= x_value:
                best = yi
            else:
                break
        if best is None:
            raise ValueError(f"no point at or before x={x_value}")
        return best
