"""Rendering helpers for benchmark output: tables and figure series."""

from repro.reporting.series import Series, find_jumps, sparkline
from repro.reporting.svg import SvgCanvas, grouped_bars, line_chart, stacked_bars
from repro.reporting.tables import (
    render_comparison,
    render_crawl_health,
    render_metrics_summary,
    render_table,
)

__all__ = [
    "Series",
    "SvgCanvas",
    "grouped_bars",
    "line_chart",
    "stacked_bars",
    "find_jumps",
    "render_comparison",
    "render_crawl_health",
    "render_metrics_summary",
    "render_table",
    "sparkline",
]
