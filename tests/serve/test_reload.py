"""Hot reload: validate-before-swap, rollback, crash, persistence."""

import threading

import pytest

from repro.obs import observe
from repro.serve.reload import (
    ReloadError,
    Reloader,
    SnapshotHolder,
    build_snapshot_from_sources,
    validate_sources,
)
from repro.state.crashpoints import CrashInjector, SimulatedCrash, crashing
from repro.state.snapshots import SnapshotStore

GOOD = [("easylist", "||ads.example^\n||track.example^")]
BETTER = [("easylist", "||ads.example^\n||track.example^\n||new.example^")]


class TestValidation:
    def test_accepts_good_sources(self):
        validate_sources(GOOD)

    def test_rejects_empty_candidate(self):
        with pytest.raises(ReloadError, match="no filter lists"):
            validate_sources([])

    def test_rejects_empty_name(self):
        with pytest.raises(ReloadError, match="empty name"):
            validate_sources([("", "||a.example^")])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ReloadError, match="duplicate"):
            validate_sources([("x", "||a.example^"), ("x", "||b.example^")])

    def test_rejects_list_with_no_active_filters(self):
        with pytest.raises(ReloadError, match="0 active filters"):
            validate_sources([("x", "! only a comment\n")])


class TestSwap:
    def test_swap_advances_epoch_and_generation(self):
        holder = SnapshotHolder.from_sources(GOOD)
        old_epoch = holder.current().epoch
        result = Reloader(holder).reload(BETTER)
        assert result.status == "swapped"
        assert holder.current().epoch > old_epoch
        assert holder.generation == 1
        assert holder.sources() == BETTER

    def test_rejected_reload_keeps_old_snapshot(self):
        holder = SnapshotHolder.from_sources(GOOD)
        before = holder.current()
        result = Reloader(holder).reload([("easylist", "")])
        assert result.status == "rejected"
        assert "0 active filters" in result.error
        assert holder.current() is before
        assert holder.generation == 0

    def test_reload_of_identical_sources_swaps_same_epoch(self):
        """Reloading the same lists is a no-op *in content*: the new

        snapshot compiles to the same subscription epoch, so clients
        comparing epochs see no spurious change.
        """
        holder = SnapshotHolder.from_sources(GOOD)
        epoch = holder.current().epoch
        result = Reloader(holder).reload(GOOD)
        assert result.status == "swapped"
        assert holder.current().epoch == epoch

    def test_concurrent_reload_rejected_as_busy(self):
        holder = SnapshotHolder.from_sources(GOOD)
        reloader = Reloader(holder)
        entered = threading.Event()
        release = threading.Event()
        original = reloader._build

        def slow_build(sources):
            entered.set()
            release.wait(timeout=10.0)
            return original(sources)

        reloader._build = slow_build
        thread = threading.Thread(target=reloader.reload, args=(BETTER,))
        thread.start()
        assert entered.wait(timeout=5.0)
        busy = reloader.reload(GOOD)
        assert busy.status == "rejected"
        assert "already in progress" in busy.error
        release.set()
        thread.join(timeout=10.0)
        assert holder.current().epoch == \
            build_snapshot_from_sources(BETTER).epoch


class TestCrash:
    def test_crashed_build_leaves_holder_untouched_and_reraises(self):
        holder = SnapshotHolder.from_sources(GOOD)
        before = holder.current()
        reloader = Reloader(holder)
        with pytest.raises(SimulatedCrash):
            with crashing(CrashInjector(at_step=1)):
                reloader.reload(BETTER)
        assert holder.current() is before
        state = reloader.state()
        assert state["state"] == "idle"
        assert state["last_reload"]["status"] == "crashed"

    def test_reload_succeeds_after_a_crash(self):
        holder = SnapshotHolder.from_sources(GOOD)
        reloader = Reloader(holder)
        with pytest.raises(SimulatedCrash):
            with crashing(CrashInjector(at_step=1)):
                reloader.reload(BETTER)
        assert reloader.reload(BETTER).status == "swapped"


class TestPersistence:
    def test_swapped_reload_persists_epoch(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        holder = SnapshotHolder.from_sources(GOOD)
        result = Reloader(holder, store=store).reload(BETTER)
        assert store.latest_epoch() == result.epoch
        assert store.load(result.epoch) == BETTER

    def test_rejected_reload_persists_nothing(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        holder = SnapshotHolder.from_sources(GOOD)
        Reloader(holder, store=store).reload([("easylist", "")])
        assert store.epochs() == []

    def test_restart_resumes_last_served_not_highest_epoch(self, tmp_path):
        """A reload to a *smaller* list lowers the epoch counter; the

        store must still resume the smaller (last-served) snapshot, not
        the earlier one that happened to carry more filters.
        """
        store = SnapshotStore(str(tmp_path))
        holder = SnapshotHolder.from_sources(BETTER)
        store.save(holder.current().epoch, BETTER)   # the CLI boot save
        reloader = Reloader(holder, store=store)
        result = reloader.reload(GOOD)
        assert result.status == "swapped"
        assert result.epoch < max(store.epochs())
        epoch, sources = store.load_latest()
        assert epoch == result.epoch
        assert sources == GOOD


class TestMetrics:
    def test_reload_outcomes_counted(self):
        with observe() as (registry, _):
            holder = SnapshotHolder.from_sources(GOOD)
            reloader = Reloader(holder)
            reloader.reload(BETTER)
            reloader.reload([("easylist", "")])
            flat = registry.flat()
        assert flat["serve.reloads{result=swapped}"] == 1
        assert flat["serve.reloads{result=rejected}"] == 1
