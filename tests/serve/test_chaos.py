"""Chaos: hostile clients + dying reloaders, with total accounting.

The acceptance criterion under test: every request accepted by the
daemon completes with an explicit outcome (response, shed, or error) —
no hangs, no silent drops — while slow/flaky clients misbehave and the
reloader is killed or wedged mid-build.
"""

import json
import threading

import pytest

from repro.obs import (
    FlightRecorder,
    RotatingJsonlExporter,
    TimeSeriesSampler,
    observe,
)
from repro.obs.analyze import load_flight, load_timeseries
from repro.serve import (
    Reloader,
    ServeConfig,
    ServeDaemon,
    SnapshotHolder,
)
from repro.serve.chaos import (
    chaos_behaviour,
    kill_reloader,
    run_chaos_clients,
    wedge_reloader,
)
from repro.web.faults import FaultPlan

from tests.serve.test_daemon import MATCH, SOURCES, request

CORPUS = [
    MATCH,
    {"url": "http://clean.example/p.png", "content_type": "image",
     "page_host": "news.example", "request_host": "clean.example"},
    {"requests": [MATCH, {"op": "elemhide_stylesheet",
                          "page_host": "news.example"}]},
    {"op": "document_privileges", "page_url": "http://friendly.example/",
     "page_host": "friendly.example"},
]


@pytest.fixture
def daemon():
    holder = SnapshotHolder.from_sources(SOURCES)
    instance = ServeDaemon(
        holder,
        ServeConfig(port=0, max_inflight=2, max_queue=4,
                    default_deadline_ms=5_000.0, drain_timeout_s=10.0,
                    allow_test_delay=True),
        reloader=Reloader(holder))
    instance.start()
    yield instance
    instance.stop()


class TestBehaviourPlan:
    def test_deterministic_across_runs(self):
        first = FaultPlan.uniform(0.5, seed=7)
        second = FaultPlan.uniform(0.5, seed=7)
        sequence = [(c, r) for c in range(4) for r in range(25)]
        assert [chaos_behaviour(first, c, r) for c, r in sequence] == \
            [chaos_behaviour(second, c, r) for c, r in sequence]

    def test_rate_half_actually_misbehaves(self):
        plan = FaultPlan.uniform(0.5, seed=7)
        behaviours = {chaos_behaviour(plan, c, r)
                      for c in range(4) for r in range(25)}
        assert "normal" in behaviours
        assert len(behaviours) >= 3        # slow/abort/tiny-deadline mix


class TestHostileClients:
    def test_every_request_is_accounted(self, daemon):
        report = run_chaos_clients(daemon, CORPUS, clients=4,
                                   requests_per_client=15,
                                   fault_rate=0.5, seed=7)
        assert report.sent == 4 * 15
        assert report.accounted == report.sent
        assert report.hung == 0
        assert report.transport == 0
        assert report.served > 0
        assert report.aborted > 0           # chaos actually happened

    def test_accounting_holds_with_reloads_mid_flight(self, daemon):
        stop = threading.Event()
        reload_results = []

        def churn():
            flip = 0
            while not stop.is_set():
                flip += 1
                lists = ([{"name": "easylist",
                           "text": "||ads.example^\n||extra.example^"}]
                         if flip % 2 else
                         [{"name": n, "text": t} for n, t in SOURCES])
                status, raw, _ = request(daemon, "POST", "/admin/reload",
                                         {"lists": lists})
                reload_results.append((status, json.loads(raw)["status"]))
                stop.wait(0.05)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            report = run_chaos_clients(daemon, CORPUS, clients=4,
                                       requests_per_client=10,
                                       fault_rate=0.5, seed=11)
        finally:
            stop.set()
            churner.join(timeout=30.0)
        assert report.accounted == report.sent
        assert report.hung == 0
        assert report.transport == 0
        # Reloads really interleaved with traffic, and every one ended
        # in an explicit state.
        assert any(status == 200 for status, _ in reload_results)
        assert all(outcome in ("swapped", "rejected")
                   for _, outcome in reload_results)


class TestTelemetryUnderChaos:
    def test_drain_after_chaos_leaves_no_torn_telemetry(self, tmp_path):
        """Hostile clients + live telemetry, then the SIGTERM sequence:
        every time-series segment must verify strictly (no torn tail)
        and the flight dump must be a complete, checksummed artifact."""
        ts_path = str(tmp_path / "ts.jsonl")
        flight_path = str(tmp_path / "flight.jsonl")
        sampler = TimeSeriesSampler(
            RotatingJsonlExporter(ts_path, run_id="chaos"),
            interval_s=0.05)
        flight = FlightRecorder(path=flight_path, run_id="chaos")
        holder = SnapshotHolder.from_sources(SOURCES)
        with observe(timeseries=sampler, flight=flight):
            instance = ServeDaemon(
                holder,
                ServeConfig(port=0, max_inflight=2, max_queue=4,
                            default_deadline_ms=5_000.0,
                            drain_timeout_s=10.0, allow_test_delay=True,
                            telemetry_interval_s=0.05),
                reloader=Reloader(holder))
            instance.start()
            try:
                report = run_chaos_clients(instance, CORPUS, clients=4,
                                           requests_per_client=10,
                                           fault_rate=0.5, seed=7)
            finally:
                instance.drain_and_stop()
        assert report.accounted == report.sent
        series = load_timeseries(ts_path, strict=True)
        assert series.complete
        dump = load_flight(flight_path)
        assert dump.reason == "drain"
        kinds = [event["kind"] for event in dump.events]
        assert "serve.drain" in kinds
        # Chaos produced sheds, and each shed left a flight event.
        if report.shed_overload or report.shed_unavailable:
            assert "serve.shed" in kinds


class TestReloaderDeath:
    def test_killed_reloader_leaves_old_epoch_serving(self, daemon):
        before = daemon.holder.current()
        died = kill_reloader(daemon.reloader,
                             [("easylist", "||ads.example^\n||x.example^")])
        assert died
        assert daemon.holder.current() is before
        state = daemon.reloader.state()
        assert state["last_reload"]["status"] == "crashed"
        # The serving path never noticed.
        status, raw, _ = request(daemon, "POST", "/v1/match", MATCH)
        assert status == 200
        assert json.loads(raw)["epoch"] == before.epoch

    def test_retry_after_death_succeeds(self, daemon):
        sources = [("easylist", "||ads.example^\n||x.example^")]
        assert kill_reloader(daemon.reloader, sources)
        result = daemon.reloader.reload(sources)
        assert result.status == "swapped"
        assert daemon.holder.current().epoch == result.epoch

    def test_wedged_reloader_does_not_block_serving(self, daemon):
        before_epoch = daemon.holder.current().epoch
        wedged = threading.Event()
        release = threading.Event()
        thread = wedge_reloader(
            daemon.reloader,
            [("easylist", "||ads.example^\n||wedge.example^")],
            wedged, release)
        assert wedged.wait(timeout=10.0)
        try:
            # Wedged mid-build: match traffic still flows on the old
            # epoch, health stays up, and a second reload is refused
            # explicitly instead of piling up behind the wedge.
            status, raw, _ = request(daemon, "POST", "/v1/match", MATCH)
            assert status == 200
            assert json.loads(raw)["epoch"] == before_epoch
            assert request(daemon, "GET", "/healthz")[0] == 200
            busy = daemon.reloader.reload(SOURCES)
            assert busy.status == "rejected"
            assert "already in progress" in busy.error
        finally:
            release.set()
            thread.join(timeout=30.0)
        assert daemon.holder.current().epoch != before_epoch
