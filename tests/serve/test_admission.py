"""Admission control: bounded queue, deadline shedding, drain."""

import threading
import time

import pytest

from repro.obs import OBS, observe
from repro.serve.admission import AdmissionController


class TestBounds:
    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=1, max_queue=-1)

    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(max_inflight=3, max_queue=0)
        decisions = [controller.admit() for _ in range(3)]
        assert all(d.admitted for d in decisions)
        assert controller.inflight == 3

    def test_sheds_queue_full_beyond_bound(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        first = controller.admit()
        refused = controller.admit()
        assert first.admitted and not refused.admitted
        assert refused.reason == "queue-full"
        assert refused.retry_after > 0.0
        assert not refused.draining

    def test_release_frees_the_slot(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        first = controller.admit()
        controller.release(first)
        assert controller.admit().admitted

    def test_release_of_refusal_is_a_no_op(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        held = controller.admit()
        refused = controller.admit()
        controller.release(refused)
        assert controller.inflight == 1
        controller.release(held)
        assert controller.inflight == 0


class TestDeadlines:
    def test_hopeless_deadline_is_shed_not_queued(self):
        controller = AdmissionController(max_inflight=1, max_queue=8)
        held = controller.admit()
        doomed = controller.admit(deadline_s=time.monotonic() - 1.0)
        assert not doomed.admitted
        assert doomed.reason == "deadline-hopeless"
        controller.release(held)

    def test_deadline_expiring_in_queue_is_shed(self):
        controller = AdmissionController(max_inflight=1, max_queue=8)
        held = controller.admit()
        start = time.monotonic()
        waited = controller.admit(deadline_s=start + 0.08)
        assert not waited.admitted
        assert waited.reason == "deadline-in-queue"
        assert time.monotonic() - start >= 0.05
        controller.release(held)

    def test_queued_request_admitted_when_slot_frees(self):
        controller = AdmissionController(max_inflight=1, max_queue=8)
        held = controller.admit()
        result: list = []

        def waiter():
            result.append(controller.admit(
                deadline_s=time.monotonic() + 5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        controller.release(held)
        thread.join(timeout=5.0)
        assert result and result[0].admitted
        assert result[0].queued_for > 0.0


class TestRetryAfter:
    def test_ema_tracks_service_time(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        for _ in range(20):
            decision = controller.admit()
            controller.release(decision, service_s=1.0)
        held = controller.admit()
        refused = controller.admit()
        # After twenty 1s services the EMA sits near 1s and the refusal
        # reflects the one in-flight request still holding the slot.
        assert refused.retry_after == pytest.approx(1.0, rel=0.2)
        controller.release(held)


class TestDrain:
    def test_draining_sheds_new_work_as_503_class(self):
        controller = AdmissionController(max_inflight=2, max_queue=4)
        controller.begin_drain()
        refused = controller.admit()
        assert not refused.admitted
        assert refused.reason == "draining"
        assert refused.draining

    def test_drain_wakes_queued_waiters(self):
        controller = AdmissionController(max_inflight=1, max_queue=4)
        held = controller.admit()
        result: list = []

        def waiter():
            result.append(controller.admit(
                deadline_s=time.monotonic() + 30.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        controller.begin_drain()
        thread.join(timeout=5.0)
        assert result and result[0].reason == "draining"
        controller.release(held)

    def test_drained_waits_for_inflight(self):
        controller = AdmissionController(max_inflight=2, max_queue=0)
        held = controller.admit()
        controller.begin_drain()
        assert controller.drained(timeout_s=0.05) is False

        def finish():
            time.sleep(0.1)
            controller.release(held)

        threading.Thread(target=finish).start()
        assert controller.drained(timeout_s=5.0) is True

    def test_drained_immediately_true_when_idle(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.begin_drain()
        assert controller.drained(timeout_s=0.01) is True


class TestMetrics:
    def test_shed_and_admit_counters(self):
        with observe() as (registry, _):
            controller = AdmissionController(max_inflight=1, max_queue=0)
            held = controller.admit()
            controller.admit()
            controller.release(held)
            flat = registry.flat()
        assert flat["serve.admission.admitted"] == 1
        assert flat["serve.admission.shed{reason=queue-full}"] == 1
        assert flat["serve.admission.inflight"] == 0
        assert OBS.enabled is False
